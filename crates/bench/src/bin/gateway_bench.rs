//! HTTP edge benchmark: N concurrent clients hammer a live multi-daemon
//! cluster through the `moara-gateway` and the harness records req/s and
//! the latency distribution.
//!
//! This is the first workload that measures the system the way its
//! eventual users see it — end to end through HTTP, the daemon event
//! loop, the query planner, and the aggregation trees — rather than
//! through the in-process harness. The daemons are real [`Daemon`]s on
//! the TCP transport (one per thread, like `moarad` processes sharing a
//! host); the clients are raw keep-alive sockets speaking HTTP/1.1.
//!
//! ```text
//! cargo run --release -p moara-bench --bin gateway_bench                         # full scale
//! cargo run --release -p moara-bench --bin gateway_bench -- --smoke              # CI gate
//! cargo run --release -p moara-bench --bin gateway_bench -- --profile read-heavy # cache on/off
//! cargo run --release -p moara-bench --bin gateway_bench -- --profile conn-sweep # 10k conns
//! ```
//!
//! The default profile measures the raw tree-walk path (result cache
//! off, so numbers stay comparable across runs of this bench). The
//! `read-heavy` profile measures a high repeat-rate query mix twice —
//! once with the result cache disabled, once with it enabled and warmed
//! — and records both, plus their ratio; with `--smoke` it *gates*:
//! cached throughput must beat uncached by ≥5× with zero coherence
//! errors (responses are validated against the known-correct answer on
//! every request, cached or not). The `conn-sweep` profile measures the
//! reactor's reason to exist: one real `moarad` process holds thousands
//! of idle keep-alive connections (10k at full scale, 2k in smoke)
//! while 16 active clients run the query mix; it gates on zero errors,
//! the gateway staying responsive after every connection wave, and the
//! parked connections still serving at the end.
//!
//! Writes `BENCH_gateway.json` (p50/p95/p99 latency, req/s, error
//! count). `--smoke` additionally *gates*: every request must succeed
//! and the latency/throughput floor must hold, else the process exits
//! nonzero and CI fails.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use moara_attributes::Value;
use moara_bench::BenchReport;
use moara_daemon::{ctrl_roundtrip, CtrlReply, CtrlRequest, Daemon, DaemonOpts};
use moara_gateway::CacheConfig;

struct Scale {
    label: &'static str,
    daemons: usize,
    clients: usize,
    requests_per_client: usize,
    /// Smoke-gate floors (None = record only, never gate).
    gate: Option<Gate>,
}

struct Gate {
    min_req_per_s: f64,
    max_p99_ms: f64,
}

fn free_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

/// Boots one daemon on its own thread; returns (ctrl addr, http addr).
/// The thread serves until `stop` flips, then shuts the daemon down —
/// so a finished cluster's event loops don't keep stealing CPU from
/// the next measured pass.
fn boot_daemon(
    join: Option<String>,
    service_x: bool,
    cache: Option<CacheConfig>,
    stop: Arc<AtomicBool>,
) -> (SocketAddr, SocketAddr) {
    let listen = free_port();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut d = Daemon::start(DaemonOpts {
            join,
            attrs: vec![
                ("ServiceX".to_owned(), Value::Bool(service_x)),
                (
                    "CPU-Util".to_owned(),
                    Value::Int(if service_x { 30 } else { 80 }),
                ),
            ],
            http: Some("127.0.0.1:0".parse().expect("literal addr")),
            query_cache: cache,
            ..DaemonOpts::new(listen)
        })
        .expect("daemon boots");
        tx.send((d.ctrl_addr(), d.http_addr().expect("gateway enabled")))
            .expect("report addrs");
        while !stop.load(Ordering::Relaxed) {
            d.step(Duration::from_millis(2));
        }
        d.shutdown();
    });
    rx.recv_timeout(Duration::from_secs(30)).expect("daemon up")
}

fn wait_members(ctrl: SocketAddr, want: u32) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(CtrlReply::Status { members, .. }) = ctrl_roundtrip(
            &ctrl.to_string(),
            &CtrlRequest::Status,
            Duration::from_secs(5),
        ) {
            if members == want {
                return;
            }
        }
        assert!(Instant::now() < deadline, "cluster never converged");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// One HTTP request on a persistent connection; returns (status, body,
/// `X-Moara-Cache` header if present).
fn http_roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &str,
) -> Result<(u16, String, Option<String>), String> {
    writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    let mut cache = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("hdr: {e}"))?;
        if line == "\r\n" {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|e| format!("len: {e}"))?;
        }
        if let Some(v) = lower.strip_prefix("x-moara-cache:") {
            cache = Some(v.trim().to_owned());
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok((status, String::from_utf8_lossy(&body).into_owned(), cache))
}

/// Ceil-based nearest-rank percentile over a sorted slice, in ms. With
/// `.round()` the p-th percentile could resolve *below* the p-th of the
/// observations at small N (100 samples → "p99" at rank 98), making
/// smoke gates looser than advertised; ceil is the standard
/// nearest-rank definition: the smallest value with at least p% of the
/// sample at or below it.
fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let n = sorted_us.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted_us[rank.clamp(1, n) - 1] as f64 / 1000.0
}

/// What one measured pass produced.
struct Pass {
    /// Sorted request latencies, µs (successful requests only).
    latencies_us: Vec<u64>,
    /// Transport-/status-level failures.
    errors: u64,
    /// 200s whose body did not match the known-correct answer — on the
    /// read-heavy profile these are *coherence* failures (a cache
    /// serving a stale or wrong standing result).
    coherence_errors: u64,
    /// Responses tagged `X-Moara-Cache: hit`.
    hits: u64,
    /// Responses tagged `X-Moara-Cache: coalesced`.
    coalesced: u64,
    /// Wall-clock seconds.
    elapsed: f64,
}

impl Pass {
    fn req_per_s(&self) -> f64 {
        self.latencies_us.len() as f64 / self.elapsed
    }
}

/// Runs one measured pass: `clients` threads × `requests` keep-alive
/// requests each, spraying across the daemons' gateways, validating
/// every body against `expect`.
fn run_pass(
    https: &[SocketAddr],
    clients: usize,
    requests: usize,
    request: &'static str,
    expect: &str,
) -> Pass {
    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..clients {
        let addr = https[c % https.len()];
        let expect = expect.to_owned();
        workers.push(std::thread::spawn(move || {
            let mut latencies_us = Vec::with_capacity(requests);
            let (mut errors, mut coherence_errors) = (0u64, 0u64);
            let (mut hits, mut coalesced) = (0u64, 0u64);
            let mut writer = TcpStream::connect(addr).expect("client connect");
            writer
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut reader = BufReader::new(writer.try_clone().expect("clone"));
            for _ in 0..requests {
                let t0 = Instant::now();
                match http_roundtrip(&mut reader, &mut writer, request) {
                    Ok((200, body, cache)) => {
                        if body.contains(&expect) {
                            latencies_us.push(t0.elapsed().as_micros() as u64);
                            match cache.as_deref() {
                                Some("hit") => hits += 1,
                                Some("coalesced") => coalesced += 1,
                                _ => {}
                            }
                        } else {
                            coherence_errors += 1;
                        }
                    }
                    Ok(_) | Err(_) => errors += 1,
                }
            }
            (latencies_us, errors, coherence_errors, hits, coalesced)
        }));
    }
    let mut pass = Pass {
        latencies_us: Vec::new(),
        errors: 0,
        coherence_errors: 0,
        hits: 0,
        coalesced: 0,
        elapsed: 0.0,
    };
    for w in workers {
        let (lat, err, coh, hits, coal) = w.join().expect("client thread");
        pass.latencies_us.extend(lat);
        pass.errors += err;
        pass.coherence_errors += coh;
        pass.hits += hits;
        pass.coalesced += coal;
    }
    pass.elapsed = started.elapsed().as_secs_f64();
    pass.latencies_us.sort_unstable();
    pass
}

/// A running cluster: every daemon's HTTP address plus the flag that
/// tells the daemon threads to shut down and stop consuming CPU.
struct Fleet {
    https: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
}

impl Fleet {
    /// Signals the daemons down and gives their event loops a beat to
    /// exit, so the next cluster measures on a quiet machine.
    fn retire(self) {
        self.stop.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Boots a cluster of `daemons` gateways (seed + joiners) and waits for
/// convergence.
fn boot_cluster(daemons: usize, cache: Option<CacheConfig>) -> Fleet {
    let stop = Arc::new(AtomicBool::new(false));
    let (seed_ctrl, seed_http) = boot_daemon(None, true, cache.clone(), stop.clone());
    let mut https = vec![seed_http];
    for i in 1..daemons {
        let (_ctrl, http) = boot_daemon(
            Some(seed_ctrl.to_string()),
            i % 2 == 0,
            cache.clone(),
            stop.clone(),
        );
        https.push(http);
    }
    wait_members(seed_ctrl, daemons as u32);
    Fleet { https, stop }
}

/// The default profile's hot query (the simple-predicate walk the bench
/// has always tracked), and the substring a correct answer contains.
fn hot_query(daemons: usize) -> (&'static str, String) {
    let in_group = daemons.div_ceil(2);
    (
        "GET /v1/query?q=SELECT%20count(*)%20WHERE%20ServiceX%20%3D%20true \
         HTTP/1.1\r\nHost: bench\r\n\r\n",
        format!("\"result\":\"{in_group}\""),
    )
}

/// The read-heavy profile's hot query: a composite predicate
/// (`ServiceX = true AND CPU-Util < 50`), the shape a dashboard pins —
/// the walk pays CNF planning and cover probes on every miss while a
/// cache hit costs the same hash lookup either way. ServiceX daemons
/// boot with `CPU-Util = 30`, the rest `80`, so the composite count
/// equals the ServiceX count.
fn hot_composite_query(daemons: usize) -> (&'static str, String) {
    let in_group = daemons.div_ceil(2);
    (
        "GET /v1/query?q=SELECT%20count(*)%20WHERE%20ServiceX%20%3D%20true%20AND%20\
         CPU-Util%20%3C%2050 HTTP/1.1\r\nHost: bench\r\n\r\n",
        format!("\"result\":\"{in_group}\""),
    )
}

/// One warmup request per daemon primes connections, probe caches, and
/// tree state out of the measured window.
fn warm_connections(https: &[SocketAddr], request: &str, expect: &str) {
    for &addr in https {
        let mut w = TcpStream::connect(addr).expect("warmup connect");
        let mut r = BufReader::new(w.try_clone().expect("clone"));
        let (status, body, _) = http_roundtrip(&mut r, &mut w, request).expect("warmup request");
        assert_eq!(status, 200, "warmup failed: {body}");
        assert!(body.contains(expect), "warmup answered {body}");
    }
}

/// Hammers each daemon until its gateway answers from the cache (the
/// promotion threshold crossed, the standing subscription installed and
/// synced), bounded by a deadline.
fn warm_cache(https: &[SocketAddr], request: &str, expect: &str) {
    for &addr in https {
        let mut w = TcpStream::connect(addr).expect("warm connect");
        w.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut r = BufReader::new(w.try_clone().expect("clone"));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, body, cache) =
                http_roundtrip(&mut r, &mut w, request).expect("warm request");
            assert_eq!(status, 200, "warm failed: {body}");
            assert!(body.contains(expect), "warm answered {body}");
            if cache.as_deref() == Some("hit") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "cache never warmed on {addr} (last marker {cache:?})"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// The default profile: the raw tree-walk path (cache off), gated on a
/// generous floor under `--smoke`.
fn run_default(smoke: bool) {
    let scale = if smoke {
        Scale {
            label: "smoke",
            daemons: 3,
            clients: 4,
            requests_per_client: 50,
            gate: Some(Gate {
                // Deliberately generous: the gate exists to catch the
                // gateway becoming unusable (seconds-long stalls, mass
                // errors), not to benchmark CI hardware.
                min_req_per_s: 20.0,
                max_p99_ms: 2000.0,
            }),
        }
    } else {
        Scale {
            label: "full",
            daemons: 5,
            clients: 16,
            requests_per_client: 200,
            gate: None,
        }
    };

    // Cache off: this profile tracks the walk path's throughput across
    // PRs; the read-heavy profile owns the cached numbers.
    let fleet = boot_cluster(scale.daemons, None);
    let (request, expect) = hot_query(scale.daemons);
    warm_connections(&fleet.https, request, &expect);

    let pass = run_pass(
        &fleet.https,
        scale.clients,
        scale.requests_per_client,
        request,
        &expect,
    );
    fleet.retire();
    let total = (scale.clients * scale.requests_per_client) as u64;
    let errors = pass.errors + pass.coherence_errors;
    let req_per_s = pass.req_per_s();
    let p50 = percentile(&pass.latencies_us, 50.0);
    let p95 = percentile(&pass.latencies_us, 95.0);
    let p99 = percentile(&pass.latencies_us, 99.0);

    println!(
        "gateway_bench[{}]: daemons={} clients={} requests={} ok={} errors={}",
        scale.label,
        scale.daemons,
        scale.clients,
        total,
        pass.latencies_us.len(),
        errors
    );
    println!(
        "  req/s={req_per_s:.1}  p50={p50:.2}ms  p95={p95:.2}ms  p99={p99:.2}ms  wall={:.2}s",
        pass.elapsed
    );

    let gate_passed = match &scale.gate {
        None => true,
        Some(g) => errors == 0 && req_per_s >= g.min_req_per_s && p99 <= g.max_p99_ms,
    };

    BenchReport::new("gateway")
        .field("scale", scale.label)
        .field("daemons", scale.daemons)
        .field("clients", scale.clients)
        .field("requests", total)
        .field("errors", errors)
        .field("req_per_s", req_per_s)
        .field("p50_ms", p50)
        .field("p95_ms", p95)
        .field("p99_ms", p99)
        .field("wall_s", pass.elapsed)
        .field("gate_passed", gate_passed)
        .write();

    if !gate_passed {
        eprintln!("gateway_bench: smoke gate FAILED");
        std::process::exit(1);
    }
}

/// The read-heavy profile: every client repeats the same hot query (the
/// repeat rate the result cache exists for), measured against two
/// separate clusters — cache off, then cache on and warmed — so the two
/// passes never share daemon state.
fn run_read_heavy(smoke: bool) {
    let (label, daemons, clients, requests) = if smoke {
        ("read-heavy-smoke", 3, 4, 100)
    } else {
        ("read-heavy-full", 15, 4, 1200)
    };

    // Pass 1 — uncached: the walk path under the same mix. The fleet is
    // retired before the cached cluster boots so the passes never
    // contend for the machine.
    let fleet = boot_cluster(daemons, None);
    let (request, expect) = hot_composite_query(daemons);
    warm_connections(&fleet.https, request, &expect);
    let uncached = run_pass(&fleet.https, clients, requests, request, &expect);
    fleet.retire();

    // Pass 2 — cached: fresh cluster, default cache config, warmed until
    // every daemon serves hits.
    let fleet = boot_cluster(daemons, Some(CacheConfig::default()));
    warm_connections(&fleet.https, request, &expect);
    warm_cache(&fleet.https, request, &expect);
    let cached = run_pass(&fleet.https, clients, requests, request, &expect);
    fleet.retire();

    let total = (clients * requests) as u64;
    let speedup = cached.req_per_s() / uncached.req_per_s().max(f64::MIN_POSITIVE);
    let errors = uncached.errors + cached.errors;
    let coherence_errors = uncached.coherence_errors + cached.coherence_errors;

    println!(
        "gateway_bench[{label}]: daemons={daemons} clients={clients} requests={total}x2 \
         errors={errors} coherence_errors={coherence_errors}"
    );
    println!(
        "  uncached: req/s={:.1}  p50={:.3}ms  p99={:.3}ms",
        uncached.req_per_s(),
        percentile(&uncached.latencies_us, 50.0),
        percentile(&uncached.latencies_us, 99.0),
    );
    println!(
        "  cached:   req/s={:.1}  p50={:.3}ms  p99={:.3}ms  hits={}  coalesced={}",
        cached.req_per_s(),
        percentile(&cached.latencies_us, 50.0),
        percentile(&cached.latencies_us, 99.0),
        cached.hits,
        cached.coalesced,
    );
    println!("  speedup: {speedup:.1}x");

    // The gate: memory-speed reads must actually be memory-speed, and
    // never wrong. Gated only in smoke (CI); full scale records.
    let gate_passed = !smoke || (speedup >= 5.0 && errors == 0 && coherence_errors == 0);

    BenchReport::new("gateway")
        .field("scale", label)
        .field("daemons", daemons)
        .field("clients", clients)
        .field("requests", total)
        .field("errors", errors)
        .field("coherence_errors", coherence_errors)
        .field("uncached_req_per_s", uncached.req_per_s())
        .field("uncached_p50_ms", percentile(&uncached.latencies_us, 50.0))
        .field("uncached_p99_ms", percentile(&uncached.latencies_us, 99.0))
        .field("cached_req_per_s", cached.req_per_s())
        .field("cached_p50_ms", percentile(&cached.latencies_us, 50.0))
        .field("cached_p99_ms", percentile(&cached.latencies_us, 99.0))
        .field("cached_hits", cached.hits)
        .field("cached_coalesced", cached.coalesced)
        .field("speedup", speedup)
        .field("gate_passed", gate_passed)
        .write();

    if !gate_passed {
        eprintln!("gateway_bench: read-heavy smoke gate FAILED");
        std::process::exit(1);
    }
}

/// Kills the subprocess daemon on drop so a failed gate can't leak it.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a real `moarad` process (found next to this bench binary in
/// the cargo target dir) with the gateway on; returns its HTTP address.
/// A subprocess, not an in-process daemon, so bench-side client sockets
/// and daemon-side accepted sockets draw on separate fd limits — the
/// 10k-connection sweep needs both halves.
fn spawn_moarad(extra: &[&str]) -> (ChildGuard, SocketAddr) {
    let moarad = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("target dir")
        .join("moarad");
    assert!(
        moarad.exists(),
        "moarad not found at {} (build the workspace first)",
        moarad.display()
    );
    let listen = free_port();
    let mut child = std::process::Command::new(moarad)
        .args(["--listen", &listen.to_string(), "--http", "127.0.0.1:0"])
        .args(["--attrs", "ServiceX=true,CPU-Util=30"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn moarad");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        if let Some(Ok(line)) = lines.next() {
            let _ = tx.send(line);
        }
        for _ in lines {}
    });
    let banner = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("moarad banner");
    let http: SocketAddr = banner
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("http="))
        .expect("banner carries http=")
        .parse()
        .expect("http addr parses");
    (ChildGuard(child), http)
}

/// One `/healthz` round trip on a fresh connection; true iff 200.
fn health_ok(addr: SocketAddr) -> bool {
    let Ok(mut w) = TcpStream::connect(addr) else {
        return false;
    };
    if w.set_read_timeout(Some(Duration::from_secs(30))).is_err() {
        return false;
    }
    let mut r = BufReader::new(match w.try_clone() {
        Ok(c) => c,
        Err(_) => return false,
    });
    matches!(
        http_roundtrip(
            &mut r,
            &mut w,
            "GET /healthz HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n",
        ),
        Ok((200, _, _))
    )
}

/// The connection-sweep profile: one real `moarad` process holds
/// `idle_conns` parked keep-alive connections while 16 clients run the
/// query mix through the same gateway. Gates (smoke and full alike):
/// zero request errors, the gateway answering `/healthz` after every
/// connection wave, and a sample of the parked connections still
/// serving after the measured pass.
fn run_conn_sweep(smoke: bool) {
    let (label, idle_conns, requests) = if smoke {
        ("conn-sweep-smoke", 2_000usize, 100usize)
    } else {
        ("conn-sweep-full", 10_000, 400)
    };
    let clients = 16;

    // Cache off: the sweep tracks the walk path under connection load,
    // comparable with the default profile's numbers. The idle timeout
    // is raised far above the run length so the parked herd measures
    // reactor capacity, not the idle sweep racing a slow setup.
    let (_daemon, http) = spawn_moarad(&["--no-query-cache", "--gw-idle-timeout-ms", "600000"]);
    let (request, expect) = hot_query(1);
    let https = [http];
    warm_connections(&https, request, &expect);

    // Park the idle herd in waves; the gateway must stay responsive
    // after every wave (a blocking-pool gateway dies here: 16 workers,
    // wave one pins them all forever).
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_conns);
    let mut waves_ok = true;
    let t0 = Instant::now();
    while idle.len() < idle_conns {
        for _ in 0..500.min(idle_conns - idle.len()) {
            idle.push(TcpStream::connect(http).expect("idle connect"));
        }
        waves_ok &= health_ok(http);
    }
    let setup_s = t0.elapsed().as_secs_f64();

    // The measured pass: 16 active clients × `requests`, all while the
    // idle herd sits on the same reactor.
    let pass = run_pass(&https, clients, requests, request, &expect);

    // The parked connections must still be live state machines.
    let mut idle_alive = true;
    let step = (idle_conns / 16).max(1);
    for i in (0..idle_conns).step_by(step) {
        let s = &mut idle[i];
        let ok = s
            .set_read_timeout(Some(Duration::from_secs(30)))
            .and_then(|()| {
                s.write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
            })
            .is_ok();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        idle_alive &= ok && out.starts_with("HTTP/1.1 200 ");
    }

    let total = (clients * requests) as u64;
    let errors = pass.errors + pass.coherence_errors;
    let req_per_s = pass.req_per_s();
    let p50 = percentile(&pass.latencies_us, 50.0);
    let p99 = percentile(&pass.latencies_us, 99.0);

    println!(
        "gateway_bench[{label}]: idle_conns={idle_conns} clients={clients} requests={total} \
         ok={} errors={errors} setup={setup_s:.2}s",
        pass.latencies_us.len()
    );
    println!(
        "  req/s={req_per_s:.1}  p50={p50:.2}ms  p99={p99:.2}ms  wall={:.2}s  \
         waves_ok={waves_ok}  idle_alive={idle_alive}",
        pass.elapsed
    );

    // Generous floors (CI hardware varies); the gate is about the
    // reactor surviving connection scale, not about benchmarking.
    let gate = if smoke {
        Gate {
            min_req_per_s: 20.0,
            max_p99_ms: 2000.0,
        }
    } else {
        Gate {
            min_req_per_s: 100.0,
            max_p99_ms: 2000.0,
        }
    };
    let gate_passed = errors == 0
        && waves_ok
        && idle_alive
        && req_per_s >= gate.min_req_per_s
        && p99 <= gate.max_p99_ms;

    BenchReport::new("gateway")
        .field("scale", label)
        .field("daemons", 1usize)
        .field("idle_conns", idle_conns as u64)
        .field("clients", clients)
        .field("requests", total)
        .field("errors", errors)
        .field("req_per_s", req_per_s)
        .field("p50_ms", p50)
        .field("p99_ms", p99)
        .field("setup_s", setup_s)
        .field("wall_s", pass.elapsed)
        .field("waves_ok", waves_ok)
        .field("idle_alive", idle_alive)
        .field("gate_passed", gate_passed)
        .write();

    if !gate_passed {
        eprintln!("gateway_bench: conn-sweep gate FAILED");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let profile = args
        .iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("default");
    match profile {
        "default" => run_default(smoke),
        "read-heavy" => run_read_heavy(smoke),
        "conn-sweep" => run_conn_sweep(smoke),
        other => {
            eprintln!("gateway_bench: unknown profile {other} (default, read-heavy, conn-sweep)");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    /// Pins the ceil-based nearest-rank semantics at small N — with
    /// `.round()`, p99 of 100 samples picked index 98 (the 98th
    /// percentile), under-reporting the tail.
    #[test]
    fn percentile_is_ceil_nearest_rank() {
        let v: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0, "rank 99, not 98");
        assert_eq!(percentile(&v, 100.0), 100.0);
        let small = [10_000u64, 20_000, 30_000];
        assert_eq!(percentile(&small, 0.0), 10.0, "p0 clamps to the min");
        assert_eq!(percentile(&small, 50.0), 20.0);
        assert_eq!(percentile(&small, 99.0), 30.0);
        assert_eq!(percentile(&[7_000u64], 50.0), 7.0);
        assert!(percentile(&[], 50.0).is_nan());
    }
}

//! Repeated-query workload: what the query-plane scheduler's probe cache
//! buys under heavy repeated composite-query traffic.
//!
//! The same deterministic workload — rotating 4-way intersection queries
//! over small overlapping groups, issued from several front-ends, with
//! periodic group churn — runs twice: once with the probe cache off (the
//! paper's probe-per-query behaviour) and once with it on. Both runs must
//! produce byte-identical answers; the comparison reports total messages,
//! probes sent, cache hit counts, batched frames, and latency.
//!
//! `--smoke` shrinks the workload for CI, where this binary doubles as an
//! executable regression gate: it exits nonzero unless the cache saves at
//! least 30% of total messages with no latency regression.
//!
//! A third run repeats the cache-on workload with distributed tracing
//! sampling every query. Trace contexts piggyback on protocol messages
//! (see `docs/observability.md`), so the gate also fails if tracing adds
//! more than 5% to total messages or mean latency — the observability
//! plane must be close to free.

use moara_bench::harness::mean;
use moara_bench::{full_scale, scaled, BenchReport};
use moara_core::{Cluster, MoaraConfig, ProbeCachePolicy};
use moara_simnet::latency::Constant;
use moara_simnet::NodeId;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

const SEED: u64 = 77;

struct Workload {
    nodes: usize,
    groups: usize,
    group_size: usize,
    rounds: usize,
    churn_every: usize,
    /// Distinct front-end nodes the repeated traffic arrives through
    /// (the probe cache is per front-end, as in a real deployment where
    /// clients stick to a handful of entry points).
    fronts: usize,
}

struct RunResult {
    total_messages: u64,
    total_bytes: u64,
    probes: u64,
    cache_hits: u64,
    coalesced: u64,
    batched: u64,
    mean_latency_ms: f64,
    mean_query_messages: f64,
    answers: Vec<String>,
}

fn build(w: &Workload, policy: ProbeCachePolicy, trace_sample: u64) -> Cluster {
    let cfg = MoaraConfig::default().with_probe_cache(policy);
    let mut cluster = Cluster::builder()
        .nodes(w.nodes)
        .seed(SEED)
        .latency(Constant::from_millis(1))
        .config(cfg)
        .tracing(trace_sample)
        .build();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x51ed);
    let all: Vec<NodeId> = (0..w.nodes as u32).map(NodeId).collect();
    for g in 0..w.groups {
        let mut ids = all.clone();
        ids.shuffle(&mut rng);
        for (i, node) in ids.into_iter().enumerate() {
            cluster.set_attr(node, &format!("g{g}"), i < w.group_size);
        }
    }
    cluster.run_to_quiescence();
    cluster.stats_mut().reset();
    cluster
}

/// Rotating 4-way intersections: the planner must choose among four
/// candidate group trees per query, so probe costs genuinely steer it.
fn query_text(w: &Workload, i: usize) -> String {
    let a = i % w.groups;
    let b = (i + 1) % w.groups;
    let c = (i + 2) % w.groups;
    let d = (i + 3) % w.groups;
    format!(
        "SELECT count(*) WHERE g{a} = true AND g{b} = true \
         AND g{c} = true AND g{d} = true"
    )
}

fn run(w: &Workload, policy: ProbeCachePolicy, trace_sample: u64) -> RunResult {
    let mut cluster = build(w, policy, trace_sample);
    // Warm-up: one round builds and prunes the group trees, so the
    // measurement below sees the steady state the workload is about —
    // heavy *repeated* traffic (cold-start costs are identical in both
    // configurations and measured by the figure binaries instead).
    for q in 0..w.groups {
        let origin = NodeId((q % w.fronts) as u32);
        cluster
            .query(origin, &query_text(w, q))
            .expect("workload queries parse");
    }
    cluster.stats_mut().reset();
    // The churn stream is identical across runs (same seed) so answers
    // must match between cache-off and cache-on.
    let mut churn_rng = StdRng::seed_from_u64(SEED ^ 0xc8a0);
    let mut lat = Vec::new();
    let mut per_query = Vec::new();
    let mut answers = Vec::new();
    for round in 0..w.rounds {
        if round > 0 && round % w.churn_every == 0 {
            for _ in 0..3 {
                let node = NodeId(churn_rng.gen_range(0..w.nodes) as u32);
                let g = churn_rng.gen_range(0..w.groups);
                let attr = format!("g{g}");
                let cur = cluster.node(node).store.get(&attr)
                    == Some(&moara_core::attributes::Value::Bool(true));
                cluster.set_attr(node, &attr, !cur);
            }
            cluster.run_to_quiescence();
        }
        for q in 0..w.groups {
            let origin = NodeId(((round + q) % w.fronts) as u32);
            let out = cluster
                .query(origin, &query_text(w, q))
                .expect("workload queries parse");
            assert!(out.complete, "round {round} query {q} incomplete");
            lat.push(out.latency().as_secs_f64() * 1e3);
            per_query.push(out.messages as f64);
            answers.push(out.result.to_string());
        }
    }
    let stats = cluster.stats();
    RunResult {
        total_messages: stats.total_messages(),
        total_bytes: stats.total_bytes(),
        probes: stats.counter("size_probes"),
        cache_hits: stats.counter("probe_cache_hits"),
        coalesced: stats.counter("probes_coalesced"),
        batched: stats.counter("batched_fanout"),
        mean_latency_ms: mean(&lat),
        mean_query_messages: mean(&per_query),
        answers,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            nodes: 48,
            groups: 4,
            group_size: 6,
            rounds: 6,
            churn_every: 3,
            fronts: 2,
        }
    } else {
        Workload {
            nodes: scaled(256, 1024),
            groups: 6,
            group_size: 8,
            rounds: scaled(25, 100),
            churn_every: 8,
            fronts: 4,
        }
    };
    let queries = w.rounds * w.groups;
    println!(
        "=== repeated-query workload: {} nodes, {} groups of {}, {queries} composite queries ===",
        w.nodes, w.groups, w.group_size
    );

    let off = run(&w, ProbeCachePolicy::Off, 0);
    let on = run(&w, ProbeCachePolicy::default_cache(), 0);
    let traced = run(&w, ProbeCachePolicy::default_cache(), 1);
    assert_eq!(
        off.answers, on.answers,
        "probe caching must never change query answers"
    );
    assert_eq!(
        on.answers, traced.answers,
        "tracing must never change query answers"
    );

    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>10} {:>10} {:>14} {:>14}",
        "probe cache",
        "total msgs",
        "probes",
        "hits",
        "coalesced",
        "batched",
        "msgs/query",
        "latency (ms)"
    );
    for (label, r) in [("off", &off), ("on", &on), ("on + tracing", &traced)] {
        println!(
            "{:>14} {:>12} {:>10} {:>10} {:>10} {:>10} {:>14.1} {:>14.2}",
            label,
            r.total_messages,
            r.probes,
            r.cache_hits,
            r.coalesced,
            r.batched,
            r.mean_query_messages,
            r.mean_latency_ms
        );
    }

    let saved = off.total_messages.saturating_sub(on.total_messages);
    let saved_pct = 100.0 * saved as f64 / off.total_messages.max(1) as f64;
    let lat_delta_pct =
        100.0 * (on.mean_latency_ms - off.mean_latency_ms) / off.mean_latency_ms.max(1e-9);
    println!(
        "\nprobe cache saved {saved} messages ({saved_pct:.1}%); \
         latency {lat_delta_pct:+.1}% vs cache-off"
    );

    // Tracing overhead: trace contexts ride inside existing protocol
    // messages, so the message count should be flat; the wire grows by
    // the context bytes. Both are reported, messages and latency gated.
    let trace_msg_pct = 100.0 * (traced.total_messages as f64 - on.total_messages as f64)
        / on.total_messages.max(1) as f64;
    let trace_lat_pct =
        100.0 * (traced.mean_latency_ms - on.mean_latency_ms) / on.mean_latency_ms.max(1e-9);
    let trace_bytes_pct =
        100.0 * (traced.total_bytes as f64 - on.total_bytes as f64) / on.total_bytes.max(1) as f64;
    println!(
        "tracing every query: messages {trace_msg_pct:+.1}%, \
         latency {trace_lat_pct:+.1}%, wire bytes {trace_bytes_pct:+.1}% vs tracing-off"
    );

    // Executable acceptance gate (run by CI in --smoke mode): ≥30% fewer
    // total messages and no latency regression from the cache, and ≤5%
    // message/latency overhead from always-on tracing.
    let mut failed = false;
    if saved_pct < 30.0 {
        eprintln!("FAIL: expected >=30% message savings, got {saved_pct:.1}%");
        failed = true;
    }
    if on.mean_latency_ms > off.mean_latency_ms * 1.05 {
        eprintln!(
            "FAIL: latency regression: {:.2} ms (on) vs {:.2} ms (off)",
            on.mean_latency_ms, off.mean_latency_ms
        );
        failed = true;
    }
    if trace_msg_pct > 5.0 {
        eprintln!("FAIL: tracing added {trace_msg_pct:.1}% messages (gate: 5%)");
        failed = true;
    }
    if trace_lat_pct > 5.0 {
        eprintln!("FAIL: tracing added {trace_lat_pct:.1}% latency (gate: 5%)");
        failed = true;
    }

    // Machine-readable record, so perf is tracked across revisions
    // instead of only surviving in CI logs.
    BenchReport::new("query")
        .field(
            "scale",
            if smoke {
                "smoke"
            } else if full_scale() {
                "full"
            } else {
                "default"
            },
        )
        .field("nodes", w.nodes)
        .field("groups", w.groups)
        .field("group_size", w.group_size)
        .field("queries", queries)
        .field("cache_off_messages", off.total_messages)
        .field("cache_on_messages", on.total_messages)
        .field("cache_off_probes", off.probes)
        .field("cache_on_probes", on.probes)
        .field("cache_hits", on.cache_hits)
        .field("probes_coalesced", on.coalesced)
        .field("batched_frames", on.batched)
        .field("cache_off_latency_ms", off.mean_latency_ms)
        .field("cache_on_latency_ms", on.mean_latency_ms)
        .field("saved_messages", saved)
        .field("saved_pct", saved_pct)
        .field("latency_delta_pct", lat_delta_pct)
        .field("traced_messages", traced.total_messages)
        .field("trace_msg_overhead_pct", trace_msg_pct)
        .field("trace_latency_overhead_pct", trace_lat_pct)
        .field("trace_bytes_overhead_pct", trace_bytes_pct)
        .field("gate_min_saved_pct", 30.0)
        .field("gate_max_trace_overhead_pct", 5.0)
        .field("gate_passed", !failed)
        .write();

    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: >=30% message savings with no latency regression; \
         tracing overhead within 5%"
    );
}

//! Figure 10: sensitivity of the dynamic-maintenance mechanism to the
//! adaptation windows (k_UPDATE, k_NO-UPDATE).
//!
//! Paper setup: 500 Moara nodes, the Figure 9 event mix, window pairs
//! including (1,1), (1,3), (2,1), (3,1), (3,3). Expected: very small
//! sensitivity, with large k_UPDATE + small k_NO-UPDATE slightly worse at
//! high query rates.

use moara_bench::harness::{build_group_cluster, churn_burst, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_simnet::latency::Constant;
use moara_simnet::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_mix(k_up: usize, k_no: usize, n: usize, queries: usize, churns: usize, m: usize) -> f64 {
    let cfg = MoaraConfig::default().with_adaptation_windows(k_up, k_no);
    let (mut cluster, _) = build_group_cluster(n, n / 2, cfg, Constant::from_millis(1), 13);
    let mut events: Vec<bool> = (0..queries)
        .map(|_| true)
        .chain((0..churns).map(|_| false))
        .collect();
    let mut rng = StdRng::seed_from_u64(0x5ca1e);
    for i in (1..events.len()).rev() {
        let j = rng.gen_range(0..=i);
        events.swap(i, j);
    }
    for is_query in events {
        if is_query {
            let _ = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
        } else {
            churn_burst(&mut cluster, &mut rng, m);
        }
    }
    cluster.stats().total_messages() as f64 / n as f64
}

fn main() {
    let n = 500;
    let total = scaled(100, 500);
    let m = n / 5;
    let pairs: &[(usize, usize)] = &[(1, 1), (1, 3), (2, 1), (3, 1), (3, 3)];
    println!("=== Figure 10: msgs/node for (k_UPDATE, k_NO-UPDATE) pairs (n={n}) ===");
    print!("{:>12}", "query:churn");
    for (a, b) in pairs {
        print!(" {:>9}", format!("({a},{b})"));
    }
    println!();
    let steps = 5usize;
    for i in 0..=steps {
        let queries = total * i / steps;
        let churns = total - queries;
        print!("{:>5}:{:<6}", queries, churns);
        for &(a, b) in pairs {
            print!(" {:>9.1}", run_mix(a, b, n, queries, churns, m));
        }
        println!();
    }
    println!("\nexpected shape (paper): small sensitivity overall; the paper defaults (1,3)");
    println!("are never materially worse than the alternatives.");
}

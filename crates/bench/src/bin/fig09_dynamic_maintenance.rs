//! Figure 9: bandwidth usage (messages per node) under varying
//! query-to-churn ratios, comparing Moara's dynamic maintenance against
//! the two static extremes.
//!
//! Paper setup: 10 000 nodes, 500 total events, churn bursts of m = 2000
//! node-toggles, ratios 0:500 … 500:0. Systems: Global (no group trees),
//! Moara (Always-Update), and Moara with dynamic adaptation.
//!
//! Default here is a reduced 2 000-node run (shape-preserving);
//! `MOARA_SCALE=full` uses the paper's 10 000.

use moara_bench::harness::{build_group_cluster, churn_burst, count_pred, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::{MoaraConfig, Mode};
use moara_simnet::latency::Constant;
use moara_simnet::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_mix(mode: Mode, n: usize, queries: usize, churns: usize, m: usize, seed: u64) -> f64 {
    let cfg = match mode {
        Mode::Moara => MoaraConfig::default(),
        Mode::Global => MoaraConfig::global(),
        Mode::AlwaysUpdate => MoaraConfig::always_update(),
    };
    // Initial group: half the system, as attribute A is binary and churn
    // toggles keep it near half.
    let (mut cluster, _) = build_group_cluster(n, n / 2, cfg, Constant::from_millis(1), seed);
    if mode == Mode::AlwaysUpdate {
        cluster.register_predicate(&count_pred());
    }
    // Random interleaving of query and churn events.
    let mut events: Vec<bool> = (0..queries)
        .map(|_| true)
        .chain((0..churns).map(|_| false))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
    for i in (1..events.len()).rev() {
        let j = rng.gen_range(0..=i);
        events.swap(i, j);
    }
    let origin = NodeId(0);
    for is_query in events {
        if is_query {
            let _ = cluster.query(origin, COUNT_QUERY).expect("valid query");
        } else {
            churn_burst(&mut cluster, &mut rng, m);
        }
    }
    cluster.stats().total_messages() as f64 / n as f64
}

fn main() {
    let n = scaled(2_000, 10_000);
    let total = scaled(100, 500);
    let m = n / 5; // paper: 2000 of 10 000
    println!(
        "=== Figure 9: msgs/node vs query:churn ratio (n={n}, {total} events, burst m={m}) ==="
    );
    println!(
        "{:>12} {:>10} {:>16} {:>10}",
        "query:churn", "Global", "Always-Update", "Moara"
    );
    let steps = 5usize;
    for i in 0..=steps {
        let queries = total * i / steps;
        let churns = total - queries;
        let g = run_mix(Mode::Global, n, queries, churns, m, 7);
        let a = run_mix(Mode::AlwaysUpdate, n, queries, churns, m, 7);
        let d = run_mix(Mode::Moara, n, queries, churns, m, 7);
        println!("{:>5}:{:<6} {g:>10.1} {a:>16.1} {d:>10.1}", queries, churns);
    }
    println!(
        "\nexpected shape (paper): Global cheap at low query rates, Always-Update cheap at\n\
         high query rates, Moara at or below the better of the two across all ratios."
    );
}

//! Figure 13(a): per-query latency over time while the group churns in
//! periodic bursts.
//!
//! Paper setup: 500-node LAN, group of 100, every 5 s a burst replaces 160
//! members (interval=5, churn=160), one query per second for 100 s.
//! Expected: latency spikes at each burst, bounded (~2x steady state), and
//! re-stabilizes within 1–2 s.

use moara_bench::harness::{build_group_cluster, swap_churn, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_query::parse_query;
use moara_simnet::latency::Lan;
use moara_simnet::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 500;
    let group = 100;
    let churn = 160;
    let interval = 5u64;
    let seconds = scaled(60, 100);
    println!(
        "=== Figure 13(a): latency timeline (n={n}, group={group}, churn={churn} every {interval}s) ==="
    );
    let (mut cluster, _) = build_group_cluster(n, group, MoaraConfig::default(), Lan::emulab(), 77);
    let mut rng = StdRng::seed_from_u64(10);
    let origin = NodeId(0);
    let query = parse_query(COUNT_QUERY).expect("valid");
    let warm = cluster.query_parsed(origin, query.clone());
    println!(
        "steady-state latency: {:.1} ms",
        warm.latency().as_secs_f64() * 1e3
    );
    println!("{:>8} {:>12}", "t (s)", "latency (ms)");
    let mut inflight: Vec<(u64, u64)> = Vec::new(); // (fid, issued second)
    let mut results: Vec<(u64, f64)> = Vec::new();
    for sec in 0..seconds as u64 {
        if sec % interval == 0 {
            swap_churn(&mut cluster, &mut rng, churn);
        }
        inflight.push((cluster.submit(origin, query.clone()), sec));
        cluster.run_for(SimDuration::from_secs(1));
        inflight.retain(|&(fid, issued)| match cluster.take_outcome(origin, fid) {
            Some(out) => {
                results.push((issued, out.latency().as_secs_f64() * 1e3));
                false
            }
            None => true,
        });
    }
    cluster.run_to_quiescence();
    for (fid, issued) in inflight {
        if let Some(out) = cluster.take_outcome(origin, fid) {
            results.push((issued, out.latency().as_secs_f64() * 1e3));
        }
    }
    results.sort_by_key(|&(t, _)| t);
    for (t, ms) in &results {
        let marker = if t % interval == 0 {
            "  <- churn burst"
        } else {
            ""
        };
        println!("{t:>8} {ms:>12.1}{marker}");
    }
    let peak = results.iter().map(|&(_, ms)| ms).fold(0.0f64, f64::max);
    println!("\npeak latency {peak:.1} ms; expected shape (paper): spikes at each churn");
    println!("burst, bounded within ~2x of steady state, stabilizing within 1-2 s.");
}

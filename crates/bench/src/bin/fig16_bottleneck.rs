//! Figure 16: what limits Moara's wide-area latency — the single slowest
//! ("bottleneck") member of the queried group.
//!
//! Paper setup: 200-node PlanetLab group; for each query, plot the total
//! completion latency alongside the round-trip latency of the slowest
//! parent-child link in the tree (obtained by offline analysis). The two
//! track each other: one bottleneck host dominates each query.

use moara_bench::harness::{build_group_cluster, mean, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_query::parse_query;
use moara_simnet::latency::Wan;
use moara_simnet::NodeId;

fn main() {
    let n = 200;
    let group = 200; // the paper uses a group spanning all nodes
    let queries = scaled(60, 220);
    let wan = Wan::planetlab(n, 555).without_extremes();
    let cfg = MoaraConfig {
        child_timeout: None,
        front_timeout: None,
        ..MoaraConfig::default()
    };
    let (mut cluster, members) = build_group_cluster(n, group, cfg, wan.clone(), 555);
    let query = parse_query(COUNT_QUERY).expect("valid");
    let _ = cluster.query_parsed(NodeId(0), query.clone()); // warm

    // Offline bottleneck analysis: the slowest member any query must
    // reach and hear back from (nominal per-node delay + median RTT).
    let bottleneck = members
        .iter()
        .map(|&m| 2.0 * wan.nominal_delay(m).as_secs_f64())
        .fold(0.0f64, f64::max);

    println!("=== Figure 16: per-query latency vs bottleneck link (n={n}, group={group}) ===");
    println!(
        "{:>6} {:>14} {:>18}",
        "query", "latency (s)", "bottleneck rtt (s)"
    );
    let mut lats = Vec::new();
    for qid in 0..queries {
        let out = cluster.query_parsed(NodeId(0), query.clone());
        let lat = out.latency().as_secs_f64();
        lats.push(lat);
        if qid % (queries / 20).max(1) == 0 {
            println!("{qid:>6} {lat:>14.3} {bottleneck:>18.3}");
        }
    }
    let above = lats.iter().filter(|&&l| l >= bottleneck).count();
    println!(
        "\nmean latency {:.3}s; offline bottleneck {:.3}s; {}/{} queries at or above\n\
         the bottleneck bound — the single slowest group member dominates latency,\n\
         which is why Moara beats a centralized aggregator that must always wait for\n\
         the slowest node in the *whole system* (Figure 15).",
        mean(&lats),
        bottleneck,
        above,
        lats.len()
    );
}

//! Figure 11(a): query cost vs total system size with and without the
//! separate query plane.
//!
//! Paper setup: group sizes {8, 32, 128}, thresholds {1, 2, 4}, system
//! sizes up to 16 384 nodes, 1 000 queries, no group churn. threshold = 1
//! disables the separate query plane (cost grows as O(m log N)); higher
//! thresholds flatten the cost to O(m), independent of N.

use moara_bench::harness::{build_group_cluster, COUNT_QUERY};
use moara_bench::{full_scale, scaled};
use moara_core::MoaraConfig;
use moara_simnet::latency::Constant;
use moara_simnet::NodeId;

/// Steady-state per-query message cost (excluding status updates, which
/// the paper counts separately as update cost). The first queries build
/// and prune the tree; they amortize to nothing over the paper's 1 000
/// queries, so we exclude them explicitly here.
fn query_cost(n: usize, group: usize, threshold: usize, queries: usize) -> f64 {
    let cfg = MoaraConfig::default().with_threshold(threshold);
    let (mut cluster, _) = build_group_cluster(n, group, cfg, Constant::from_millis(1), 21);
    for _ in 0..5 {
        let _ = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
    }
    cluster.stats_mut().reset();
    for _ in 0..queries {
        let _ = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
    }
    let total = cluster.stats().total_messages();
    let updates = cluster.stats().counter("status_updates");
    (total - updates) as f64 / queries as f64
}

fn main() {
    let max_pow = if full_scale() { 14 } else { 12 };
    let queries = scaled(30, 100);
    let groups = [8usize, 32, 128];
    let thresholds = [1usize, 2, 4];
    println!("=== Figure 11(a): avg query cost vs system size (queries={queries}) ===");
    print!("{:>7}", "N");
    for g in groups {
        for t in thresholds {
            print!(" {:>10}", format!("({g},t{t})"));
        }
    }
    println!();
    let mut pow = 4u32; // N = 16 upward
    while pow <= max_pow {
        let n = 1usize << pow;
        print!("{n:>7}");
        for g in groups {
            for t in thresholds {
                if g >= n {
                    print!(" {:>10}", "-");
                    continue;
                }
                print!(" {:>10.1}", query_cost(n, g, t, queries));
            }
        }
        println!();
        pow += 2;
    }
    println!(
        "\nexpected shape (paper): threshold=1 grows ~logarithmically with N;\n\
         threshold>1 flattens to a constant independent of N (O(group size))."
    );
}

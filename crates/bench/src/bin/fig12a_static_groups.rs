//! Figure 12(a): latency and bandwidth for static groups on the emulated
//! 500-node datacenter (Emulab), versus the single-global-tree approach
//! (the paper's "SDIMS" bar).
//!
//! Paper setup: 500 Moara instances on a LAN, group sizes
//! {32, 64, 128, 256, 500}, 100 count queries each.

use moara_bench::harness::{build_group_cluster, mean, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_simnet::latency::Lan;
use moara_simnet::NodeId;

fn run(cfg: MoaraConfig, n: usize, group: usize, queries: usize) -> (f64, f64) {
    let (mut cluster, _) = build_group_cluster(n, group, cfg, Lan::emulab(), 55);
    // Warm-up: let the group tree prune and the query plane form before
    // measuring steady-state behaviour.
    for _ in 0..5 {
        let _ = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
    }
    let mut lat = Vec::new();
    let mut msgs = Vec::new();
    for _ in 0..queries {
        let out = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
        assert!(out.complete);
        lat.push(out.latency().as_secs_f64() * 1e3);
        msgs.push(out.messages as f64);
    }
    (mean(&lat), mean(&msgs))
}

fn main() {
    let n = 500;
    let queries = scaled(30, 100);
    println!("=== Figure 12(a): static groups on a {n}-node LAN ({queries} queries each) ===");
    println!(
        "{:>10} {:>14} {:>14}",
        "system", "latency (ms)", "msgs/query"
    );
    for group in [32usize, 64, 128, 256, 500] {
        let (lat, msgs) = run(MoaraConfig::default(), n, group, queries);
        println!("{:>10} {lat:>14.1} {msgs:>14.1}", format!("group{group}"));
    }
    let (lat, msgs) = run(MoaraConfig::global(), n, n / 2, queries);
    println!("{:>10} {lat:>14.1} {msgs:>14.1}", "SDIMS");
    println!(
        "\nexpected shape (paper): latency and bandwidth scale with group size;\n\
         small groups save up to ~4x latency and ~10x bandwidth vs the global tree."
    );
}

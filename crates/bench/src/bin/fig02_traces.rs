//! Figure 2: workload characterization.
//!
//! (a) PlanetLab slice sizes (assigned vs in-use) from a CoTop-like
//!     snapshot — reproduced with a heavy-tailed synthetic distribution.
//! (b) HP utility-computing rendering jobs — machines used over a 20-hour
//!     window by two bursty batch jobs.

use moara_bench::workloads::{fraction_below, job_trace, slice_distribution};

fn main() {
    println!("=== Figure 2(a): slice sizes, 400 slices, ranked ===");
    let slices = slice_distribution(400, 350, 2008);
    println!("rank  assigned  in-use");
    for rank in [0usize, 1, 3, 9, 49, 99, 199, 299, 399] {
        let s = slices[rank];
        println!("{:>4}  {:>8}  {:>6}", rank + 1, s.assigned, s.in_use);
    }
    println!(
        "\nslices with < 10 assigned nodes: {:.0}% (paper: ~50% of 400)",
        100.0 * fraction_below(&slices, 10)
    );
    let active: Vec<_> = slices.iter().filter(|s| s.in_use > 1).collect();
    let small_active = active.iter().filter(|s| s.in_use < 10).count();
    println!(
        "slices in active use: {}; of those with < 10 active nodes: {} \
         (paper: 100 of 170)",
        active.len(),
        small_active
    );

    println!("\n=== Figure 2(b): two rendering jobs over 20 hours (machines used) ===");
    let job0 = job_trace(1200, 170, 41);
    let job1 = job_trace(1200, 120, 42);
    println!("time(min)  job-0  job-1");
    for t in (0..1200).step_by(100) {
        println!("{t:>9}  {:>5}  {:>5}", job0.usage[t], job1.usage[t]);
    }
    println!(
        "\njob-0: peak {} machines, {} churn events; job-1: peak {}, {} churn events",
        job0.peak(),
        job0.churn_events(),
        job1.peak(),
        job1.churn_events()
    );
    println!("takeaway: group sizes vary by orders of magnitude and change constantly —");
    println!("a querying system must not broadcast to all nodes per query.");
}

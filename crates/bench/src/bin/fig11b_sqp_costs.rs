//! Figure 11(b): separate-query-plane query costs and update costs as a
//! function of group ("subset") size, relative to threshold = 1.
//!
//! Paper setup: 8 192 nodes, thresholds {2, 4, 16}, subset sizes 1…8192.
//! Query cost is shown as a percentage of the threshold-1 query cost;
//! update cost as a percentage increase over threshold-1.

use moara_bench::harness::{build_group_cluster, COUNT_QUERY};
use moara_bench::{full_scale, scaled};
use moara_core::MoaraConfig;
use moara_simnet::latency::Constant;
use moara_simnet::NodeId;

struct Costs {
    query: f64,
    update: f64,
}

fn run(n: usize, group: usize, threshold: usize, queries: usize) -> Costs {
    let cfg = MoaraConfig::default().with_threshold(threshold);
    let (mut cluster, _) = build_group_cluster(n, group, cfg, Constant::from_millis(1), 33);
    // Formation phase: the first queries push nodes into UPDATE state and
    // wire up the query plane; the statuses they trigger are the paper's
    // "update cost".
    for _ in 0..5 {
        let _ = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
    }
    let update = cluster.stats().counter("status_updates") as f64;
    cluster.stats_mut().reset();
    // Measurement phase: steady-state query cost.
    for _ in 0..queries {
        let _ = cluster.query(NodeId(0), COUNT_QUERY).expect("valid");
    }
    let total = cluster.stats().total_messages() as f64;
    let residual = cluster.stats().counter("status_updates") as f64;
    Costs {
        query: (total - residual) / queries as f64,
        update: update + residual,
    }
}

fn main() {
    let n = if full_scale() { 8_192 } else { 1_024 };
    let queries = scaled(30, 100);
    let thresholds = [2usize, 4, 16];
    let mut subsets = vec![1usize, 8, 32, 128, 512];
    if full_scale() {
        subsets.extend([2048, 8192]);
    } else {
        subsets.push(1024);
    }
    println!("=== Figure 11(b): SQP costs relative to threshold=1 (n={n}, queries={queries}) ===");
    println!(
        "{:>8} {:>12} | {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9}",
        "subset", "qc(t=1)", "qc%t2", "qc%t4", "qc%t16", "uc+%t2", "uc+%t4", "uc+%t16"
    );
    for &g in &subsets {
        let base = run(n, g, 1, queries);
        print!("{g:>8} {:>12.1} |", base.query);
        let mut qcs = Vec::new();
        let mut ucs = Vec::new();
        for &t in &thresholds {
            let c = run(n, g, t, queries);
            qcs.push(100.0 * c.query / base.query.max(1.0));
            ucs.push(100.0 * (c.update - base.update) / base.update.max(1.0));
        }
        for q in qcs {
            print!(" {q:>8.1}");
        }
        print!(" |");
        for u in ucs {
            print!(" {u:>9.1}");
        }
        println!();
    }
    println!(
        "\nexpected shape (paper): for small groups in a large system the query plane\n\
         saves >50% of query cost; gains beyond threshold=2 are marginal, while update\n\
         costs grow with threshold at large group sizes."
    );
}

//! Figure 13(b): latency of composite queries versus the number of groups
//! in the expression.
//!
//! Paper setup: 500-node LAN; basic groups of 50 random nodes each; three
//! query shapes — intersection S1 ∩ … ∩ Sn, union S1 ∪ … ∪ Sn, and
//! complex T1 ∩ T2 ∩ T3 with each Ti a union of n basic groups. Latency is
//! reported with size probes ("SP") and without (structural planning only,
//! the paper's "no SP" line).

use moara_bench::harness::mean;
use moara_bench::scaled;
use moara_core::{Cluster, MoaraConfig};
use moara_query::parse_query;
use moara_simnet::latency::Lan;
use moara_simnet::NodeId;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

const NGROUPS: usize = 30;

fn build(n: usize, probes: bool, seed: u64) -> Cluster {
    // Paper fidelity: the figure's "SP" lines pay a probe round-trip per
    // query, so the scheduler's cross-query probe cache is off here (the
    // `repeated_query` bin measures what the cache buys). One planner
    // improvement is kept even here: probes fire only when cost can
    // change the cover choice, so the pure-union shape (one forced
    // cover) now matches its "no SP" line by construction.
    let cfg = MoaraConfig {
        use_size_probes: probes,
        probe_cache: moara_core::ProbeCachePolicy::Off,
        ..MoaraConfig::default()
    };
    let mut cluster = Cluster::builder()
        .nodes(n)
        .seed(seed)
        .latency(Lan::emulab())
        .config(cfg)
        .build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x33);
    // Pre-set every group attribute everywhere so membership is explicit.
    let all: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for g in 0..NGROUPS {
        let mut ids = all.clone();
        ids.shuffle(&mut rng);
        for (i, node) in ids.into_iter().enumerate() {
            cluster.set_attr(node, &format!("g{g}"), i < 50);
        }
    }
    cluster.run_to_quiescence();
    cluster.stats_mut().reset();
    cluster
}

fn intersection(k: usize) -> String {
    let parts: Vec<String> = (0..k).map(|g| format!("g{g} = true")).collect();
    format!("SELECT count(*) WHERE {}", parts.join(" AND "))
}

fn union(k: usize) -> String {
    let parts: Vec<String> = (0..k).map(|g| format!("g{g} = true")).collect();
    format!("SELECT count(*) WHERE {}", parts.join(" OR "))
}

fn complex(k: usize) -> String {
    // T1 ∩ T2 ∩ T3, each Ti a union of k distinct basic groups.
    let t = |base: usize| {
        let parts: Vec<String> = (0..k).map(|g| format!("g{} = true", base + g)).collect();
        format!("({})", parts.join(" OR "))
    };
    format!(
        "SELECT count(*) WHERE {} AND {} AND {}",
        t(0),
        t(k),
        t(2 * k)
    )
}

fn measure(cluster: &mut Cluster, text: &str, reps: usize) -> f64 {
    let q = parse_query(text).expect("valid");
    let mut lat = Vec::new();
    for _ in 0..reps {
        let out = cluster.query_parsed(NodeId(0), q.clone());
        lat.push(out.latency().as_secs_f64() * 1e3);
    }
    mean(&lat)
}

fn main() {
    let n = 500;
    let reps = scaled(10, 30);
    println!("=== Figure 13(b): composite query latency, {n}-node LAN ({reps} reps) ===");
    println!(
        "{:>4} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "k", "inter", "union", "complex", "inter-noSP", "union-noSP", "cmplx-noSP"
    );
    let mut with_probes = build(n, true, 88);
    let mut without = build(n, false, 88);
    for k in [2usize, 4, 6, 8, 10] {
        let i1 = measure(&mut with_probes, &intersection(k), reps);
        let u1 = measure(&mut with_probes, &union(k), reps);
        let c1 = measure(&mut with_probes, &complex(k), reps);
        let i0 = measure(&mut without, &intersection(k), reps);
        let u0 = measure(&mut without, &union(k), reps);
        let c0 = measure(&mut without, &complex(k), reps);
        println!("{k:>4} {i1:>11.1} {u1:>11.1} {c1:>11.1} {i0:>11.1} {u0:>11.1} {c0:>11.1}");
    }
    println!(
        "\nexpected shape (paper): intersection latency flat in k (one group queried);\n\
         union grows with k (all groups queried); complex tracks union of one term;\n\
         size probes add a roughly constant overhead; all under ~500 ms."
    );
}

//! Health-plane overhead gate: what gossiped health digests cost the
//! workloads the other gates protect.
//!
//! The same daemon-shaped workload — repeated composite queries from
//! rotating front-ends plus one standing subscription, with periodic
//! group churn — runs twice on identical [`SimSwarm`]s (same seed, same
//! event script): once with health-digest piggybacking off, once with
//! every daemon's digest riding its SWIM traffic. Digests piggyback on
//! frames the failure detector sends anyway (`docs/observability.md`),
//! so the gate fails if gossip adds **any** messages beyond 5%, more
//! than 5% mean query latency, or changes a single answer. Wire-byte
//! growth is reported (the digest payload is real) but not gated — the
//! digest codec caps it at `HEALTH_DIGEST_MAX_BYTES` per frame.
//!
//! The run with gossip on must also actually disseminate: every daemon
//! must end holding a digest for every peer, so the gate cannot pass
//! vacuously by gossiping nothing.
//!
//! `--smoke` shrinks the workload for CI. Numbers land in
//! `BENCH_health_overhead.json` so the overhead is tracked across
//! revisions.

use moara_bench::harness::mean;
use moara_bench::{full_scale, scaled, BenchReport};
use moara_core::{DeliveryPolicy, MoaraConfig};
use moara_daemon::SimSwarm;
use moara_membership::SwimConfig;
use moara_simnet::{NodeId, SimDuration};

const SEED: u64 = 4114;

struct Workload {
    nodes: usize,
    groups: usize,
    group_size: usize,
    rounds: usize,
    churn_every: usize,
    fronts: usize,
}

struct RunResult {
    messages: u64,
    bytes: u64,
    mean_latency_ms: f64,
    answers: Vec<String>,
}

fn query_text(w: &Workload, i: usize) -> String {
    let a = i % w.groups;
    let b = (i + 1) % w.groups;
    format!("SELECT count(*) WHERE g{a} = true AND g{b} = true")
}

fn run(w: &Workload, gossip: bool) -> RunResult {
    let mut s = SimSwarm::new(w.nodes, MoaraConfig::default(), SwimConfig::fast(), SEED);
    for g in 0..w.groups {
        for i in 0..w.nodes {
            // Overlapping deterministic groups: membership rotates with
            // the group index so intersections are non-trivial.
            s.set_attr(
                NodeId(i as u32),
                &format!("g{g}"),
                (i + g * 3) % w.nodes < w.group_size,
            );
        }
    }
    s.run_periods(5);
    if gossip {
        s.enable_health_gossip();
    }
    s.stats_mut().reset();

    // One standing dashboard rides along, as in `subscribe_bench`: its
    // deltas and renewals share the wire the digests piggyback on.
    let wid = s.subscribe(
        NodeId(0),
        "SELECT count(*) WHERE g0 = true",
        DeliveryPolicy::OnChange,
        SimDuration::from_secs(600),
    );

    let mut lat = Vec::new();
    let mut answers = Vec::new();
    for round in 0..w.rounds {
        s.run_periods(2);
        if round > 0 && round % w.churn_every == 0 {
            // Deterministic churn: one member of one group flips.
            let node = NodeId(((round * 7) % w.nodes) as u32);
            let g = round % w.groups;
            s.set_attr(node, &format!("g{g}"), round % 2 == 0);
        }
        for q in 0..w.groups {
            let origin = NodeId(((round + q) % w.fronts) as u32);
            let out = s.query(origin, &query_text(w, q));
            assert!(out.complete, "round {round} query {q} incomplete");
            lat.push(out.latency().as_secs_f64() * 1e3);
            answers.push(out.result.to_string());
        }
    }
    for u in s.take_sub_updates(NodeId(0), wid) {
        answers.push(format!("sub:{}", u.result));
    }

    if gossip {
        // The arm under test must really disseminate, or the gate below
        // proves nothing.
        for at in 0..w.nodes.min(8) as u32 {
            for about in 0..w.nodes.min(8) as u32 {
                if at != about {
                    s.peer_digest(NodeId(at), NodeId(about)).unwrap_or_else(|| {
                        panic!("gossip on, but node {at} never heard node {about}'s digest")
                    });
                }
            }
        }
    }

    let stats = s.stats();
    RunResult {
        messages: stats.total_messages(),
        bytes: stats.total_bytes(),
        mean_latency_ms: mean(&lat),
        answers,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            nodes: 16,
            groups: 3,
            group_size: 5,
            rounds: 8,
            churn_every: 3,
            fronts: 2,
        }
    } else {
        Workload {
            nodes: scaled(48, 96),
            groups: 4,
            group_size: 8,
            rounds: scaled(20, 40),
            churn_every: 4,
            fronts: 4,
        }
    };
    let queries = w.rounds * w.groups;
    println!(
        "=== health-gossip overhead: {} daemons, {} groups of {}, {queries} queries \
         + 1 standing subscription ===",
        w.nodes, w.groups, w.group_size
    );

    let off = run(&w, false);
    let on = run(&w, true);
    assert_eq!(
        off.answers, on.answers,
        "health gossip must never change query or subscription answers"
    );

    let msg_pct = 100.0 * (on.messages as f64 - off.messages as f64) / off.messages.max(1) as f64;
    let lat_pct =
        100.0 * (on.mean_latency_ms - off.mean_latency_ms) / off.mean_latency_ms.max(1e-9);
    let bytes_pct = 100.0 * (on.bytes as f64 - off.bytes as f64) / off.bytes.max(1) as f64;

    println!(
        "{:>14} {:>12} {:>14} {:>14}",
        "health gossip", "total msgs", "total bytes", "latency (ms)"
    );
    for (label, r) in [("off", &off), ("on", &on)] {
        println!(
            "{:>14} {:>12} {:>14} {:>14.2}",
            label, r.messages, r.bytes, r.mean_latency_ms
        );
    }
    println!(
        "\nhealth gossip: messages {msg_pct:+.1}%, latency {lat_pct:+.1}%, \
         wire bytes {bytes_pct:+.1}% vs gossip-off"
    );

    // Executable acceptance gate (CI runs --smoke): piggybacked digests
    // must stay within 5% on messages and latency — by construction they
    // should add zero messages at all.
    let mut failed = false;
    if msg_pct > 5.0 {
        eprintln!("FAIL: health gossip added {msg_pct:.1}% messages (gate: 5%)");
        failed = true;
    }
    if lat_pct > 5.0 {
        eprintln!("FAIL: health gossip added {lat_pct:.1}% latency (gate: 5%)");
        failed = true;
    }
    if on.bytes <= off.bytes {
        eprintln!("FAIL: digests claimed on, but no extra bytes on the wire");
        failed = true;
    }

    BenchReport::new("health_overhead")
        .field(
            "scale",
            if smoke {
                "smoke"
            } else if full_scale() {
                "full"
            } else {
                "default"
            },
        )
        .field("nodes", w.nodes)
        .field("groups", w.groups)
        .field("queries", queries)
        .field("off_messages", off.messages)
        .field("on_messages", on.messages)
        .field("off_bytes", off.bytes)
        .field("on_bytes", on.bytes)
        .field("off_latency_ms", off.mean_latency_ms)
        .field("on_latency_ms", on.mean_latency_ms)
        .field("msg_overhead_pct", msg_pct)
        .field("latency_overhead_pct", lat_pct)
        .field("bytes_overhead_pct", bytes_pct)
        .field("gate_max_overhead_pct", 5.0)
        .field("gate_passed", !failed)
        .write();

    if failed {
        std::process::exit(1);
    }
    println!("PASS: health gossip within 5% on messages and latency (0 extra messages expected)");
}

//! Figure 15: Moara versus a centralized aggregator on the wide area —
//! the "tortoise and the hare".
//!
//! Paper setup: 200 PlanetLab nodes, groups of 100 and 150. The
//! centralized front-end directly queries all 200 nodes in parallel and
//! completes only when *every* node (group member or not) has replied; it
//! gets early replies faster but its completion is gated by the slowest
//! straggler in the whole system. Moara contacts only the group's tree and
//! completes sooner.

use moara_baselines::CentralCluster;
use moara_bench::harness::{build_group_cluster_filtered, percentile, print_cdf, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_query::parse_query;
use moara_simnet::latency::Wan;
use moara_simnet::NodeId;

fn main() {
    let n = 200;
    let queries = scaled(50, 200);
    let query = parse_query(COUNT_QUERY).expect("valid");
    let cfg = MoaraConfig {
        child_timeout: None,
        front_timeout: None,
        ..MoaraConfig::default()
    };
    println!("=== Figure 15: Moara vs centralized aggregator (n={n}, {queries} queries) ===");

    for group in [100usize, 150] {
        // --- Moara ----------------------------------------------------
        // Group members are drawn from responsive hosts: PlanetLab slices
        // run on usable machines, while the centralized monitor below
        // still has to poll every host including the thrashing ones.
        let wan = Wan::planetlab(n, 321);
        let wan_members = wan.clone();
        let (mut moara, members) =
            build_group_cluster_filtered(n, group, cfg.clone(), wan, 321, |node| {
                wan_members.is_responsive(node)
            });
        let _ = moara.query_parsed(NodeId(0), query.clone()); // warm
        let mut mlat = Vec::new();
        for _ in 0..queries {
            let out = moara.query_parsed(NodeId(0), query.clone());
            mlat.push(out.latency().as_secs_f64());
        }
        print_cdf(&format!("Moara (group {group})"), &mlat, "s");

        // --- Centralized ------------------------------------------------
        let mut central = CentralCluster::new(n, 321, Wan::planetlab(n, 321));
        for i in 0..n as u32 {
            let val: i64 = i64::from(members.contains(&NodeId(i)));
            central.set_attr(NodeId(i), "A", val);
        }
        let mut clat = Vec::new();
        let mut first_reply = Vec::new();
        for _ in 0..queries {
            let out = central.query_parsed(query.clone());
            clat.push(out.latency().as_secs_f64());
            if let Some(t) = out.reply_times.first() {
                first_reply.push(t.duration_since(out.issued_at).as_secs_f64());
            }
        }
        print_cdf(&format!("Central (group {group})"), &clat, "s");
        println!(
            "    Central first replies arrive at median {:.3}s (the hare starts fast)\n\
    but completion waits for the slowest of all {n} nodes (median {:.3}s);\n\
    Moara completes at median {:.3}s without ever contacting non-members.\n",
            percentile(&first_reply, 50.0),
            percentile(&clat, 50.0),
            percentile(&mlat, 50.0),
        );
    }
    println!("expected shape (paper): Central ahead early, Moara finishes first overall.");
}

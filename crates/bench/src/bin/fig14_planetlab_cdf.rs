//! Figure 14: wide-area (PlanetLab) query-response latency CDF for
//! different group sizes.
//!
//! Paper setup: 200 PlanetLab nodes, groups of {50, 100, 150, 200}, 500
//! queries injected 5 s apart, no query timeouts. Expected: median answer
//! within ~1–2 s, 90% within ~5 s, and a long tail caused by straggler
//! hosts inside the group.

use moara_bench::harness::{build_group_cluster, print_cdf, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_query::parse_query;
use moara_simnet::latency::Wan;
use moara_simnet::NodeId;

fn main() {
    let n = 200;
    let queries = scaled(100, 500);
    // PlanetLab: no child timeouts — wait for complete answers.
    let cfg = MoaraConfig {
        child_timeout: None,
        front_timeout: None,
        ..MoaraConfig::default()
    };
    println!("=== Figure 14: PlanetLab response-latency CDF (n={n}, {queries} queries) ===");
    let query = parse_query(COUNT_QUERY).expect("valid");
    for group in [50usize, 100, 150, 200] {
        let (mut cluster, _) = build_group_cluster(
            n,
            group,
            cfg.clone(),
            Wan::planetlab(n, 123).without_extremes(),
            123,
        );
        // Warm the tree once so the CDF reflects steady-state behaviour.
        let _ = cluster.query_parsed(NodeId(0), query.clone());
        let mut lat = Vec::new();
        for _ in 0..queries {
            let out = cluster.query_parsed(NodeId(0), query.clone());
            assert!(out.complete, "no timeouts configured");
            lat.push(out.latency().as_secs_f64());
        }
        print_cdf(&format!("group {group}"), &lat, "s");
    }
    println!(
        "\nexpected shape (paper): medians of 1-2 s, 90th percentile within ~5 s,\n\
         larger groups slower (more chance of containing a straggler host)."
    );
}

//! Flight-recorder overhead gate: what on-daemon metrics history and
//! the structured event journal cost the workloads the other gates
//! protect.
//!
//! The same daemon-shaped workload — repeated composite queries from
//! rotating front-ends plus one standing subscription, with periodic
//! group churn and one crash → confirm → restart → revive cycle — runs
//! twice on identical [`SimSwarm`]s (same seed, same event script):
//! once with the flight recorder off, once with every daemon sampling
//! its history rings each simulated second and journaling detector
//! transitions. The recorder is purely local — fixed-size in-memory
//! rings, no gossip, no extra frames (`docs/observability.md`) — so the
//! gate fails if it adds **any** messages beyond 5%, more than 5% mean
//! query latency, or changes a single answer.
//!
//! The run with the recorder on must also actually record: every
//! daemon's history must hold samples and the survivors' journals must
//! hold the SWIM transitions from the crash cycle, so the gate cannot
//! pass vacuously by recording nothing.
//!
//! `--smoke` shrinks the workload for CI. Numbers land in
//! `BENCH_recorder.json` so the overhead is tracked across revisions.

use moara_bench::harness::mean;
use moara_bench::{full_scale, scaled, BenchReport};
use moara_core::{DeliveryPolicy, MoaraConfig};
use moara_daemon::recorder::kind;
use moara_daemon::SimSwarm;
use moara_membership::SwimConfig;
use moara_simnet::{NodeId, SimDuration};

const SEED: u64 = 4114;

struct Workload {
    nodes: usize,
    groups: usize,
    group_size: usize,
    rounds: usize,
    churn_every: usize,
    fronts: usize,
}

struct RunResult {
    messages: u64,
    bytes: u64,
    mean_latency_ms: f64,
    answers: Vec<String>,
}

fn query_text(w: &Workload, i: usize) -> String {
    let a = i % w.groups;
    let b = (i + 1) % w.groups;
    format!("SELECT count(*) WHERE g{a} = true AND g{b} = true")
}

fn run(w: &Workload, recorder: bool) -> RunResult {
    let mut s = SimSwarm::new(w.nodes, MoaraConfig::default(), SwimConfig::fast(), SEED);
    for g in 0..w.groups {
        for i in 0..w.nodes {
            s.set_attr(
                NodeId(i as u32),
                &format!("g{g}"),
                (i + g * 3) % w.nodes < w.group_size,
            );
        }
    }
    s.run_periods(5);
    if recorder {
        s.enable_flight_recorder();
    }
    s.stats_mut().reset();

    let wid = s.subscribe(
        NodeId(0),
        "SELECT count(*) WHERE g0 = true",
        DeliveryPolicy::OnChange,
        SimDuration::from_secs(600),
    );

    let mut lat = Vec::new();
    let mut answers = Vec::new();
    for round in 0..w.rounds {
        s.run_periods(2);
        if round > 0 && round % w.churn_every == 0 {
            let node = NodeId(((round * 7) % w.nodes) as u32);
            let g = round % w.groups;
            s.set_attr(node, &format!("g{g}"), round % 2 == 0);
        }
        for q in 0..w.groups {
            let origin = NodeId(((round + q) % w.fronts) as u32);
            let out = s.query(origin, &query_text(w, q));
            assert!(out.complete, "round {round} query {q} incomplete");
            lat.push(out.latency().as_secs_f64() * 1e3);
            answers.push(out.result.to_string());
        }
    }
    for u in s.take_sub_updates(NodeId(0), wid) {
        answers.push(format!("sub:{}", u.result));
    }

    // One crash → confirm → restart → revive cycle after the latency
    // window closes: identical in both arms (so answers and message
    // counts stay comparable), and it's what feeds the survivors'
    // journals SWIM transitions — the non-vacuousness evidence below.
    let victim = NodeId((w.nodes - 1) as u32);
    s.crash(victim);
    s.run_periods(40);
    s.restart(victim);
    s.run_periods(20);

    if recorder {
        let rec = s.recorder(NodeId(0)).expect("recorder enabled");
        let names = rec
            .history
            .lock()
            .map(|h| h.names().len())
            .unwrap_or_default();
        assert!(
            names > 0,
            "recorder on, but node 0's history rings hold no samples"
        );
        let confirms = rec.journal.snapshot(Some(kind::SWIM_CONFIRM), 16).len();
        assert!(
            confirms > 0,
            "recorder on, but node 0's journal never saw the crash confirmed"
        );
    }

    let stats = s.stats();
    RunResult {
        messages: stats.total_messages(),
        bytes: stats.total_bytes(),
        mean_latency_ms: mean(&lat),
        answers,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            nodes: 16,
            groups: 3,
            group_size: 5,
            rounds: 8,
            churn_every: 3,
            fronts: 2,
        }
    } else {
        Workload {
            nodes: scaled(48, 96),
            groups: 4,
            group_size: 8,
            rounds: scaled(20, 40),
            churn_every: 4,
            fronts: 4,
        }
    };
    let queries = w.rounds * w.groups;
    println!(
        "=== flight-recorder overhead: {} daemons, {} groups of {}, {queries} queries \
         + 1 standing subscription + 1 crash cycle ===",
        w.nodes, w.groups, w.group_size
    );

    let off = run(&w, false);
    let on = run(&w, true);
    assert_eq!(
        off.answers, on.answers,
        "the flight recorder must never change query or subscription answers"
    );

    let msg_pct = 100.0 * (on.messages as f64 - off.messages as f64) / off.messages.max(1) as f64;
    let lat_pct =
        100.0 * (on.mean_latency_ms - off.mean_latency_ms) / off.mean_latency_ms.max(1e-9);
    let bytes_pct = 100.0 * (on.bytes as f64 - off.bytes as f64) / off.bytes.max(1) as f64;

    println!(
        "{:>14} {:>12} {:>14} {:>14}",
        "recorder", "total msgs", "total bytes", "latency (ms)"
    );
    for (label, r) in [("off", &off), ("on", &on)] {
        println!(
            "{:>14} {:>12} {:>14} {:>14.2}",
            label, r.messages, r.bytes, r.mean_latency_ms
        );
    }
    println!(
        "\nflight recorder: messages {msg_pct:+.1}%, latency {lat_pct:+.1}%, \
         wire bytes {bytes_pct:+.1}% vs recorder-off"
    );

    // Executable acceptance gate (CI runs --smoke): the recorder is
    // in-memory and local, so it must stay within 5% on messages and
    // latency — by construction it should add zero of either.
    let mut failed = false;
    if msg_pct > 5.0 {
        eprintln!("FAIL: flight recorder added {msg_pct:.1}% messages (gate: 5%)");
        failed = true;
    }
    if lat_pct > 5.0 {
        eprintln!("FAIL: flight recorder added {lat_pct:.1}% latency (gate: 5%)");
        failed = true;
    }

    BenchReport::new("recorder")
        .field(
            "scale",
            if smoke {
                "smoke"
            } else if full_scale() {
                "full"
            } else {
                "default"
            },
        )
        .field("nodes", w.nodes)
        .field("groups", w.groups)
        .field("queries", queries)
        .field("off_messages", off.messages)
        .field("on_messages", on.messages)
        .field("off_bytes", off.bytes)
        .field("on_bytes", on.bytes)
        .field("off_latency_ms", off.mean_latency_ms)
        .field("on_latency_ms", on.mean_latency_ms)
        .field("msg_overhead_pct", msg_pct)
        .field("latency_overhead_pct", lat_pct)
        .field("bytes_overhead_pct", bytes_pct)
        .field("gate_max_overhead_pct", 5.0)
        .field("gate_passed", !failed)
        .write();

    if failed {
        std::process::exit(1);
    }
    println!("PASS: flight recorder within 5% on messages and latency (0 extra expected)");
}

//! Figure 12(b): average query latency for a dynamically churning group.
//!
//! Paper setup: 500-node LAN, group of 100 nodes; every `interval` seconds
//! `churn` members leave and `churn` non-members join; queries at 1/s.
//! Expected: latency barely rises with churn rate, staying near the
//! static-group baseline.

use moara_bench::harness::{build_group_cluster, mean, swap_churn, COUNT_QUERY};
use moara_bench::scaled;
use moara_core::MoaraConfig;
use moara_query::parse_query;
use moara_simnet::latency::Lan;
use moara_simnet::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(n: usize, group: usize, churn: usize, interval_s: u64, seconds: usize) -> f64 {
    let (mut cluster, _) = build_group_cluster(n, group, MoaraConfig::default(), Lan::emulab(), 66);
    let mut rng = StdRng::seed_from_u64(9);
    let origin = NodeId(0);
    let query = parse_query(COUNT_QUERY).expect("valid");
    // Warm the tree.
    let _ = cluster.query_parsed(origin, query.clone());
    let mut pending: Vec<u64> = Vec::new();
    let mut lat = Vec::new();
    for sec in 0..seconds as u64 {
        if sec % interval_s == 0 {
            swap_churn(&mut cluster, &mut rng, churn);
        }
        pending.push(cluster.submit(origin, query.clone()));
        cluster.run_for(SimDuration::from_secs(1));
        pending.retain(|&fid| match cluster.take_outcome(origin, fid) {
            Some(out) => {
                lat.push(out.latency().as_secs_f64() * 1e3);
                false
            }
            None => true,
        });
    }
    cluster.run_to_quiescence();
    for fid in pending {
        if let Some(out) = cluster.take_outcome(origin, fid) {
            lat.push(out.latency().as_secs_f64() * 1e3);
        }
    }
    mean(&lat)
}

fn main() {
    let n = 500;
    let group = 100;
    let seconds = scaled(45, 100);
    println!(
        "=== Figure 12(b): avg latency (ms) under swap churn (n={n}, group={group}, 1 q/s, {seconds}s) ==="
    );
    let static_lat = run(n, group, 0, 1_000_000, seconds);
    println!("static group baseline: {static_lat:.1} ms");
    println!(
        "{:>8} {:>12} {:>12}",
        "churn", "interval=5s", "interval=45s"
    );
    for churn in [40usize, 80, 120, 160, 200] {
        let fast = run(n, group, churn, 5, seconds);
        let slow = run(n, group, churn, 45, seconds);
        println!("{churn:>8} {fast:>12.1} {slow:>12.1}");
    }
    println!(
        "\nexpected shape (paper): latency stays low (~same hundreds of ms band as the\n\
         static group) even when the entire membership turns over every 5 seconds."
    );
}

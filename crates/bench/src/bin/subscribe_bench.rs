//! Continuous queries vs polling: what the subscription plane buys a
//! dashboard-style workload.
//!
//! The same monitoring story runs twice on identical clusters with an
//! identical (seeded) sparse-update script:
//!
//! * **polling** — the front-end re-runs `SELECT sum(V) WHERE A = true`
//!   every period, paying the full probe/plan/aggregate pipeline whether
//!   or not anything changed (the pre-subscription architecture);
//! * **subscription** — the front-end installs the same query once with
//!   [`DeliveryPolicy::Periodic`] at the same period (identical
//!   client-visible freshness), and thereafter only *changed subtrees*
//!   send anything: deltas on the sparse updates, half-lease renewals as
//!   keep-alive.
//!
//! Both arms must observe byte-identical per-period results; the
//! comparison reports total messages, per-event counters, and the
//! savings. `--smoke` shrinks the workload for CI, where this binary is
//! an executable gate: it exits nonzero unless the subscription serves
//! the same freshness with **at least 50% fewer messages**. Numbers land
//! in `BENCH_subscribe.json` so perf is tracked across revisions.

use moara_bench::{full_scale, scaled, BenchReport};
use moara_core::{Cluster, DeliveryPolicy, MoaraConfig};
use moara_simnet::latency::Constant;
use moara_simnet::{NodeId, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 1908;

struct Workload {
    nodes: usize,
    group: usize,
    /// Observation periods (one poll / one snapshot each).
    periods: usize,
    /// A sparse update lands every this many periods.
    update_every: usize,
    period: SimDuration,
    lease: SimDuration,
}

struct RunResult {
    messages: u64,
    answers: Vec<String>,
    deltas: u64,
    renews: u64,
    suppressed: u64,
}

fn build(w: &Workload) -> Cluster {
    let mut cluster = Cluster::builder()
        .nodes(w.nodes)
        .seed(SEED)
        .latency(Constant::from_millis(1))
        .config(MoaraConfig::default())
        .build();
    for i in 0..w.nodes as u32 {
        cluster.set_attr(NodeId(i), "A", (i as usize) < w.group);
        cluster.set_attr(NodeId(i), "V", i as i64 % 10);
    }
    cluster.run_to_quiescence();
    cluster.stats_mut().reset();
    cluster
}

/// The shared sparse-update script: at period `p` (if due), one group
/// member's `V` moves. Seeded, so both arms replay the same history.
fn apply_update(cluster: &mut Cluster, rng: &mut StdRng, w: &Workload) {
    let member = NodeId(rng.gen_range(0..w.group) as u32);
    let v = rng.gen_range(0..1000) as i64;
    cluster.set_attr(member, "V", v);
}

fn run_polling(w: &Workload) -> RunResult {
    let mut cluster = build(w);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5b5);
    let mut answers = Vec::new();
    let half = SimDuration::from_micros(w.period.as_micros() / 2);
    for p in 0..w.periods {
        cluster.run_for(half);
        if p % w.update_every == 0 {
            apply_update(&mut cluster, &mut rng, w);
        }
        cluster.run_for(half);
        let out = cluster
            .query(NodeId(0), "SELECT sum(V) WHERE A = true")
            .expect("workload query parses");
        assert!(out.complete);
        answers.push(out.result.to_string());
    }
    let stats = cluster.stats();
    RunResult {
        messages: stats.total_messages(),
        answers,
        deltas: 0,
        renews: 0,
        suppressed: 0,
    }
}

fn run_subscription(w: &Workload) -> RunResult {
    let mut cluster = build(w);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5b5);
    let wid = cluster
        .subscribe(
            NodeId(0),
            "SELECT sum(V) WHERE A = true",
            DeliveryPolicy::Periodic(w.period),
            w.lease,
        )
        .expect("workload query parses");
    cluster.run_to_quiescence(); // initial sync (counted against the arm)
    let initial = cluster.take_sub_updates(NodeId(0), wid);
    assert_eq!(initial.len(), 1, "one initial update");
    assert!(initial[0].complete);

    let half = SimDuration::from_micros(w.period.as_micros() / 2);
    for p in 0..w.periods {
        cluster.run_for(half);
        if p % w.update_every == 0 {
            apply_update(&mut cluster, &mut rng, w);
        }
        cluster.run_for(half);
    }
    // Snapshot ticks fire inside run_for; one per period.
    let answers: Vec<String> = cluster
        .take_sub_updates(NodeId(0), wid)
        .into_iter()
        .map(|u| u.result.to_string())
        .collect();
    let stats = cluster.stats();
    RunResult {
        messages: stats.total_messages(),
        answers,
        deltas: stats.counter("sub_deltas"),
        renews: stats.counter("sub_renews"),
        suppressed: stats.counter("sub_suppressed"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload {
            nodes: 48,
            group: 8,
            periods: 24,
            update_every: 3,
            period: SimDuration::from_secs(5),
            lease: SimDuration::from_secs(90),
        }
    } else {
        // A standing dashboard holds its lease for minutes (the lease is
        // the post-crash GC budget, not a liveness heartbeat — SWIM owns
        // liveness), so renewal keep-alive amortizes to
        // O(n / (lease/2)) msgs/s against polling's O(group/period).
        Workload {
            nodes: scaled(256, 1024),
            group: 16,
            periods: scaled(120, 240),
            update_every: 4,
            period: SimDuration::from_secs(5),
            // Scaled with deployment size: keep-alive cost is O(n) per
            // half-lease, so operators of larger overlays hold longer
            // leases (the trade is GC latency after a subscriber crash).
            lease: SimDuration::from_secs(scaled(600, 1200) as u64),
        }
    };
    println!(
        "=== continuous-query workload: {} nodes, group of {}, {} periods of {}, \
         one update per {} periods ===",
        w.nodes, w.group, w.periods, w.period, w.update_every
    );

    let poll = run_polling(&w);
    let sub = run_subscription(&w);
    assert_eq!(
        poll.answers, sub.answers,
        "subscription snapshots must equal period-equivalent polling"
    );

    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>10}",
        "mode", "total msgs", "deltas", "renews", "suppressed"
    );
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>10}",
        "polling", poll.messages, "-", "-", "-"
    );
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>10}",
        "subscription", sub.messages, sub.deltas, sub.renews, sub.suppressed
    );

    let saved = poll.messages.saturating_sub(sub.messages);
    let saved_pct = 100.0 * saved as f64 / poll.messages.max(1) as f64;
    println!(
        "\nsubscription saved {saved} messages ({saved_pct:.1}%) at identical \
         client-visible freshness over {} periods",
        w.periods
    );

    let gate_passed = saved_pct >= 50.0;
    BenchReport::new("subscribe")
        .field(
            "scale",
            if smoke {
                "smoke"
            } else if full_scale() {
                "full"
            } else {
                "default"
            },
        )
        .field("nodes", w.nodes)
        .field("group", w.group)
        .field("periods", w.periods)
        .field("update_every_periods", w.update_every)
        .field("period_secs", w.period.as_secs_f64())
        .field("poll_messages", poll.messages)
        .field("sub_messages", sub.messages)
        .field("sub_deltas", sub.deltas)
        .field("sub_renews", sub.renews)
        .field("sub_suppressed", sub.suppressed)
        .field("saved_messages", saved)
        .field("saved_pct", saved_pct)
        .field("gate_min_saved_pct", 50.0)
        .field("gate_passed", gate_passed)
        .write();

    // Executable acceptance gate (CI runs --smoke): the subscription
    // plane must halve the message bill, or this exits nonzero.
    if !gate_passed {
        eprintln!("FAIL: expected >=50% message savings, got {saved_pct:.1}%");
        std::process::exit(1);
    }
    println!("PASS: >=50% fewer messages than period-equivalent polling");
}

//! Synthetic workload generators reproducing the paper's trace studies
//! (Figure 2).
//!
//! The originals — a CoTop snapshot of PlanetLab slice assignments and a
//! six-month HP utility-computing trace — are unavailable, so these
//! generators reproduce the published *distributions*: a heavy-tailed
//! slice-size spread where half of ~400 slices have fewer than 10 nodes
//! (Fig. 2(a)), and bursty batch jobs that acquire and release tens of
//! machines at a time over a 20-hour window (Fig. 2(b)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One PlanetLab-style slice: assigned vs actively used node counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceSizes {
    /// Nodes assigned to the slice.
    pub assigned: usize,
    /// Nodes actually running ≥ 1 process of the slice.
    pub in_use: usize,
}

/// Generates `count` slice sizes with the Figure 2(a) shape: a Zipf-like
/// body with a cap at `max_nodes`, sorted descending.
pub fn slice_distribution(count: usize, max_nodes: usize, seed: u64) -> Vec<SliceSizes> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for rank in 1..=count {
        // Zipf-ish: size ∝ max / rank^0.9, floored at 1, with noise.
        let base = (max_nodes as f64 / (rank as f64).powf(0.67)).max(1.0);
        let noise = rng.gen_range(0.7f64..1.3);
        let assigned = ((base * noise).round() as usize).clamp(1, max_nodes);
        let in_use = rng.gen_range(0..=assigned);
        out.push(SliceSizes { assigned, in_use });
    }
    out.sort_by_key(|s| std::cmp::Reverse(s.assigned));
    out
}

/// Fraction of slices with fewer than `threshold` assigned nodes.
pub fn fraction_below(slices: &[SliceSizes], threshold: usize) -> f64 {
    if slices.is_empty() {
        return 0.0;
    }
    slices.iter().filter(|s| s.assigned < threshold).count() as f64 / slices.len() as f64
}

/// A batch job's machine usage over time (Figure 2(b)): bursty ramp-ups,
/// plateaus, and cliff releases.
#[derive(Clone, Debug)]
pub struct JobTrace {
    /// Machines in use at each time step (minutes).
    pub usage: Vec<usize>,
}

impl JobTrace {
    /// Peak machine count.
    pub fn peak(&self) -> usize {
        self.usage.iter().copied().max().unwrap_or(0)
    }

    /// Number of steps where usage changed — the group-churn event count
    /// this job would impose on a monitoring system.
    pub fn churn_events(&self) -> usize {
        self.usage.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Generates a bursty rendering-job trace over `minutes` steps with the
/// given machine `cap`.
pub fn job_trace(minutes: usize, cap: usize, seed: u64) -> JobTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut usage = Vec::with_capacity(minutes);
    let mut current = 0usize;
    let mut t = 0usize;
    while t < minutes {
        let phase = rng.gen_range(0..3);
        let phase_len = rng.gen_range(20usize..120).min(minutes - t);
        match phase {
            0 => {
                // ramp up in bursts
                let target = rng.gen_range(current..=cap.max(current));
                for i in 0..phase_len {
                    let step = (target.saturating_sub(current)) / (phase_len - i).max(1);
                    current = (current + step).min(cap);
                    usage.push(current);
                }
            }
            1 => {
                // plateau with jitter
                for _ in 0..phase_len {
                    if rng.gen_bool(0.1) && current > 0 {
                        current -= 1;
                    } else if rng.gen_bool(0.1) && current < cap {
                        current += 1;
                    }
                    usage.push(current);
                }
            }
            _ => {
                // cliff release
                current = if rng.gen_bool(0.5) { 0 } else { current / 2 };
                for _ in 0..phase_len {
                    usage.push(current);
                }
            }
        }
        t += phase_len;
    }
    usage.truncate(minutes);
    JobTrace { usage }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_distribution_matches_paper_shape() {
        let slices = slice_distribution(400, 350, 1);
        assert_eq!(slices.len(), 400);
        // Paper: ~50% of 400 slices have fewer than 10 assigned nodes.
        let frac = fraction_below(&slices, 10);
        assert!(
            (0.3..=0.7).contains(&frac),
            "fraction below 10 was {frac}, expected around one half"
        );
        // Heavy head: the largest slice has hundreds of nodes.
        assert!(slices[0].assigned >= 100);
        // In-use never exceeds assigned.
        assert!(slices.iter().all(|s| s.in_use <= s.assigned));
        // Sorted descending.
        assert!(slices.windows(2).all(|w| w[0].assigned >= w[1].assigned));
    }

    #[test]
    fn job_trace_is_bursty_and_bounded() {
        let trace = job_trace(1200, 170, 2);
        assert_eq!(trace.usage.len(), 1200);
        assert!(trace.peak() <= 170);
        assert!(trace.peak() > 0);
        // Dynamism: plenty of change events over 20 hours.
        assert!(trace.churn_events() > 50);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            slice_distribution(50, 100, 9),
            slice_distribution(50, 100, 9)
        );
        assert_eq!(job_trace(100, 50, 9).usage, job_trace(100, 50, 9).usage);
    }
}

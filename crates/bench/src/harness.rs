//! Shared experiment plumbing for the figure binaries.

use moara_core::{Cluster, MoaraConfig};
use moara_simnet::{LatencyModel, NodeId};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// The simulation experiments' standard query (paper Section 7.1): every
/// node holds a binary attribute `A`; queries count the nodes with `A = 1`.
pub const COUNT_QUERY: &str = "SELECT count(*) WHERE A = 1";

/// The canonical simple predicate behind [`COUNT_QUERY`].
pub fn count_pred() -> moara_query::SimplePredicate {
    moara_query::SimplePredicate::new("A", moara_query::CmpOp::Eq, 1i64)
}

/// Builds a cluster of `n` nodes where a random `group_size`-subset has
/// `A = 1` and the rest `A = 0`; returns the cluster and the group members.
/// Statistics are reset after setup.
pub fn build_group_cluster(
    n: usize,
    group_size: usize,
    cfg: MoaraConfig,
    latency: impl LatencyModel + 'static,
    seed: u64,
) -> (Cluster, Vec<NodeId>) {
    build_group_cluster_filtered(n, group_size, cfg, latency, seed, |_| true)
}

/// Like [`build_group_cluster`], but group members are drawn only from
/// nodes passing `eligible` — e.g. responsive PlanetLab hosts (slices run
/// on usable machines, while a centralized monitor still polls everyone).
pub fn build_group_cluster_filtered(
    n: usize,
    group_size: usize,
    cfg: MoaraConfig,
    latency: impl LatencyModel + 'static,
    seed: u64,
    eligible: impl Fn(NodeId) -> bool,
) -> (Cluster, Vec<NodeId>) {
    let mut cluster = Cluster::builder()
        .nodes(n)
        .seed(seed)
        .latency(latency)
        .config(cfg)
        .build();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut ids: Vec<NodeId> = (0..n as u32).map(NodeId).filter(|&x| eligible(x)).collect();
    ids.shuffle(&mut rng);
    let members: Vec<NodeId> = ids[..group_size.min(ids.len())].to_vec();
    for i in 0..n as u32 {
        let node = NodeId(i);
        let val: i64 = i64::from(members.contains(&node));
        cluster.set_attr(node, "A", val);
    }
    cluster.run_to_quiescence();
    cluster.stats_mut().reset();
    (cluster, members)
}

/// One attribute-churn event: toggles `A` at `m` random alive nodes
/// (paper Section 7.1's churn-burst model).
pub fn churn_burst(cluster: &mut Cluster, rng: &mut StdRng, m: usize) {
    let n = cluster.len();
    for _ in 0..m {
        let node = NodeId(rng.gen_range(0..n) as u32);
        if !cluster.is_alive(node) {
            continue;
        }
        let cur = cluster
            .node(node)
            .store
            .get("A")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        cluster.set_attr(node, "A", if cur > 0.5 { 0i64 } else { 1i64 });
    }
    cluster.run_to_quiescence();
}

/// Swap-churn for the dynamic-group experiments (Figure 12(b)): `churn`
/// current members leave the group and `churn` non-members join, keeping
/// the group size constant.
pub fn swap_churn(cluster: &mut Cluster, rng: &mut StdRng, churn: usize) {
    let members: Vec<NodeId> = cluster.group_members(&count_pred());
    let non_members: Vec<NodeId> = cluster
        .node_ids()
        .into_iter()
        .filter(|n| cluster.is_alive(*n) && !members.contains(n))
        .collect();
    let leave: Vec<NodeId> = members
        .choose_multiple(rng, churn.min(members.len()))
        .copied()
        .collect();
    let join: Vec<NodeId> = non_members
        .choose_multiple(rng, churn.min(non_members.len()))
        .copied()
        .collect();
    for n in leave {
        cluster.set_attr(n, "A", 0i64);
    }
    for n in join {
        cluster.set_attr(n, "A", 1i64);
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The `p`-th percentile (0–100) of an unsorted slice, by the ceil-based
/// nearest-rank definition: the smallest observation with at least `p`%
/// of the sample at or below it. (A rounded rank resolves *below* the
/// requested percentile at small N — e.g. "p99" of 100 samples landing
/// on the 98th — silently flattering tail-latency figures.)
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    v[rank.clamp(1, n) - 1]
}

/// Prints a CDF (cumulative fraction vs value) at the given fractions.
pub fn print_cdf(label: &str, xs: &[f64], unit: &str) {
    print!("{label:24}");
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
        print!("  p{p:<3.0}={:>9.3}{unit}", percentile(xs, p));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_simnet::latency::Constant;

    #[test]
    fn group_cluster_has_exact_group() {
        let (cluster, members) =
            build_group_cluster(40, 10, MoaraConfig::default(), Constant::from_millis(1), 5);
        assert_eq!(members.len(), 10);
        assert_eq!(cluster.group_members(&count_pred()).len(), 10);
        assert_eq!(cluster.stats().total_messages(), 0, "stats reset");
    }

    #[test]
    fn churn_burst_toggles() {
        let (mut cluster, _) =
            build_group_cluster(30, 10, MoaraConfig::default(), Constant::from_millis(1), 6);
        let mut rng = StdRng::seed_from_u64(1);
        churn_burst(&mut cluster, &mut rng, 15);
        let size = cluster.group_members(&count_pred()).len();
        assert_ne!(size, 10, "toggling should change group composition");
    }

    #[test]
    fn swap_churn_keeps_group_size() {
        let (mut cluster, _) =
            build_group_cluster(50, 20, MoaraConfig::default(), Constant::from_millis(1), 7);
        let mut rng = StdRng::seed_from_u64(2);
        swap_churn(&mut cluster, &mut rng, 5);
        cluster.run_to_quiescence();
        assert_eq!(cluster.group_members(&count_pred()).len(), 20);
    }

    #[test]
    fn percentile_and_mean() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        // Ceil-based nearest-rank, pinned exactly: p0 clamps to the min,
        // p50 of 4 samples is the 2nd, the tail percentiles the 4th.
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.0).abs() < 1e-12);
        assert!((percentile(&xs, 95.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        // The small-N case the rounded rank got wrong: p99 of 100
        // samples must be the 99th observation, not the 98th.
        let big: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&big, 99.0) - 99.0).abs() < 1e-12);
        assert!((percentile(&big, 50.0) - 50.0).abs() < 1e-12);
    }
}

//! Machine-readable benchmark output.
//!
//! The figure binaries historically printed their numbers to stdout and
//! nothing else, so perf across PRs could only be compared by reading CI
//! logs. [`BenchReport`] writes a flat `BENCH_<name>.json` next to the
//! working directory: insertion-ordered keys, no external dependencies,
//! one file per harness — easy for scripts to diff between revisions.

use std::fmt::Write as _;
use std::io::Write as _;

use moara_gateway::json;

/// One JSON scalar.
#[derive(Clone, Debug)]
pub enum BenchValue {
    /// Unsigned counter (message totals, node counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (latencies, percentages); NaN/inf render as null.
    F64(f64),
    /// Boolean (gate outcomes).
    Bool(bool),
    /// Free-form string (scale labels, workload names).
    Str(String),
}

impl From<u64> for BenchValue {
    fn from(v: u64) -> Self {
        BenchValue::U64(v)
    }
}
impl From<usize> for BenchValue {
    fn from(v: usize) -> Self {
        BenchValue::U64(v as u64)
    }
}
impl From<i64> for BenchValue {
    fn from(v: i64) -> Self {
        BenchValue::I64(v)
    }
}
impl From<f64> for BenchValue {
    fn from(v: f64) -> Self {
        BenchValue::F64(v)
    }
}
impl From<bool> for BenchValue {
    fn from(v: bool) -> Self {
        BenchValue::Bool(v)
    }
}
impl From<&str> for BenchValue {
    fn from(v: &str) -> Self {
        BenchValue::Str(v.to_owned())
    }
}
impl From<String> for BenchValue {
    fn from(v: String) -> Self {
        BenchValue::Str(v)
    }
}

/// A flat, insertion-ordered benchmark record.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, BenchValue)>,
}

impl BenchReport {
    /// A report that will land in `BENCH_<name>.json`.
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_owned(),
            fields: Vec::new(),
        }
    }

    /// Adds (or appends another) field; builder-style.
    pub fn field(mut self, key: &str, value: impl Into<BenchValue>) -> BenchReport {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Renders the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": {},", json::escape(&self.name));
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let rendered = match v {
                BenchValue::U64(x) => x.to_string(),
                BenchValue::I64(x) => x.to_string(),
                BenchValue::F64(x) if x.is_finite() => format!("{x:.6}"),
                BenchValue::F64(_) => "null".to_owned(),
                BenchValue::Bool(x) => x.to_string(),
                BenchValue::Str(s) => json::escape(s),
            };
            let _ = writeln!(out, "  {}: {rendered}{comma}", json::escape(k));
        }
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` in the current directory and reports
    /// the path on stdout.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written — a bench run whose record
    /// silently vanished would defeat the point of tracking it.
    pub fn write(&self) {
        let path = format!("BENCH_{}.json", self.name);
        let mut f = std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
        f.write_all(self.to_json().as_bytes())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("bench record written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_ordered_json() {
        let r = BenchReport::new("example")
            .field("nodes", 48usize)
            .field("saved_pct", 51.25f64)
            .field("gate_passed", true)
            .field("scale", "smoke")
            .field("delta", -3i64);
        let json = r.to_json();
        assert_eq!(
            json,
            "{\n  \"bench\": \"example\",\n  \"nodes\": 48,\n  \"saved_pct\": 51.250000,\n  \
             \"gate_passed\": true,\n  \"scale\": \"smoke\",\n  \"delta\": -3\n}\n"
        );
    }

    #[test]
    fn escapes_strings_and_nan() {
        let r = BenchReport::new("x")
            .field("label", "a\"b\\c\nd")
            .field("bad", f64::NAN);
        let json = r.to_json();
        assert!(json.contains("\"label\": \"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"bad\": null"));
    }
}

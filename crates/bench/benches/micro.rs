//! Criterion micro-benchmarks for the building blocks: DHT routing, MD5
//! hashing, query parsing/planning, aggregate merging, the adaptation
//! state machine, and end-to-end query resolution on a small cluster.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use moara_aggregation::{AggKind, AggState, NodeRef};
use moara_attributes::Value;
use moara_bench::harness::{build_group_cluster, COUNT_QUERY};
use moara_core::MoaraConfig;
use moara_dht::{md5, Id, Ring, TreeTopology};
use moara_query::{choose_cover, parse_query, CmpOp, SimplePredicate};
use moara_simnet::latency::Constant;
use moara_simnet::NodeId;

fn bench_md5(c: &mut Criterion) {
    let data = vec![0xabu8; 512];
    c.bench_function("md5/512B", |b| b.iter(|| md5::digest(black_box(&data))));
}

fn bench_routing(c: &mut Criterion) {
    let ring = Ring::with_random_ids(4096, 4, 1);
    let from = ring.ids()[17];
    let key = Id::of_attribute("CPU-Util");
    c.bench_function("dht/next_hop_4096", |b| {
        b.iter(|| ring.next_hop(black_box(from), black_box(key)))
    });
    c.bench_function("dht/route_path_4096", |b| {
        b.iter(|| ring.route_path(black_box(from), black_box(key)))
    });
}

fn bench_tree_build(c: &mut Criterion) {
    let ring = Ring::with_random_ids(1024, 4, 2);
    let key = Id::of_attribute("ServiceX");
    c.bench_function("dht/tree_build_1024", |b| {
        b.iter(|| TreeTopology::build(black_box(&ring), black_box(key)))
    });
}

fn bench_parse_and_plan(c: &mut Criterion) {
    let text =
        "SELECT avg(Mem-Free) WHERE (a = true OR b = true) AND (c = true OR d = true) AND x < 50";
    c.bench_function("query/parse", |b| b.iter(|| parse_query(black_box(text))));
    let q = parse_query(text).unwrap();
    c.bench_function("query/cnf+cover", |b| {
        b.iter(|| {
            let cnf = q.predicate.to_cnf().unwrap();
            choose_cover(black_box(&cnf), |_| 10)
        })
    });
}

fn bench_agg_merge(c: &mut Criterion) {
    let kind = AggKind::TopK(5);
    let states: Vec<AggState> = (0..64u64)
        .map(|i| {
            kind.seed(NodeRef(i), &Value::Int((i * 37 % 100) as i64))
                .unwrap()
        })
        .collect();
    c.bench_function("agg/topk_merge_64", |b| {
        b.iter(|| {
            states
                .iter()
                .cloned()
                .fold(AggState::Null, |acc, s| kind.merge(acc, s))
        })
    });
}

fn bench_state_machine(c: &mut Criterion) {
    c.bench_function("state/query_churn_cycle", |b| {
        b.iter(|| {
            let mut st = moara_core::state::PredState::new(
                SimplePredicate::new("A", CmpOp::Eq, true),
                1,
                3,
                2,
                false,
            );
            let me = NodeId(0);
            for i in 0..50u64 {
                st.refresh(me, i % 3 == 0, &[]);
                st.on_query(me, i + 1);
                let _ = st.status_to_send(me);
            }
            st
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let (mut cluster, _) =
        build_group_cluster(256, 32, MoaraConfig::default(), Constant::from_millis(1), 3);
    let q = parse_query(COUNT_QUERY).unwrap();
    let _ = cluster.query_parsed(NodeId(0), q.clone()); // warm trees
    c.bench_function("e2e/count_query_256n_32g", |b| {
        b.iter(|| cluster.query_parsed(NodeId(0), q.clone()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_md5, bench_routing, bench_tree_build, bench_parse_and_plan,
              bench_agg_merge, bench_state_machine, bench_end_to_end
}
criterion_main!(benches);

//! The detector under deterministic simulation: the same state machine
//! the `moarad` daemon runs in real time, driven here by `SimTransport`
//! timers — crash confirmation, refutation, full-isolation partitions,
//! and crash-recovery rejoin, all byte-for-byte reproducible.

use moara_membership::{PeerState, SwimConfig, SwimEvent, SwimNode};
use moara_simnet::{latency, NodeId, SimDuration};
use moara_transport::{SimTransport, Transport};

fn swarm_with(n: usize, seed: u64, cfg: SwimConfig) -> SimTransport<SwimNode> {
    let mut t: SimTransport<SwimNode> = SimTransport::new(latency::Constant::from_millis(2), seed);
    let all: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    for i in 0..n as u32 {
        let peers: Vec<NodeId> = all.iter().copied().filter(|&p| p != NodeId(i)).collect();
        t.add_node(SwimNode::new(NodeId(i), cfg.clone(), seed ^ u64::from(i)).with_peers(&peers));
    }
    t
}

fn swarm(n: usize, seed: u64) -> SimTransport<SwimNode> {
    swarm_with(n, seed, SwimConfig::fast())
}

fn period() -> SimDuration {
    SwimConfig::fast().period
}

fn run_periods(t: &mut SimTransport<SwimNode>, periods: u64) {
    for _ in 0..periods {
        t.run_for(period());
    }
}

fn view_of(t: &SimTransport<SwimNode>, at: u32, about: u32) -> PeerState {
    t.node(NodeId(at))
        .detector
        .peer(NodeId(about))
        .expect("peer known")
        .state
}

#[test]
fn healthy_cluster_raises_no_alarms() {
    let mut t = swarm(8, 1);
    run_periods(&mut t, 30);
    for i in 0..8u32 {
        let events = t.node_mut(NodeId(i)).detector.take_events();
        assert!(events.is_empty(), "node {i} raised {events:?}");
        for j in 0..8u32 {
            if i != j {
                assert_eq!(view_of(&t, i, j), PeerState::Alive);
            }
        }
    }
    assert!(t.stats().counter("swim_pings") > 0, "probing did happen");
}

#[test]
fn crashed_node_is_confirmed_by_every_survivor_without_omniscient_help() {
    let mut t = swarm(6, 2);
    run_periods(&mut t, 10);
    // Network-level crash: node 3 stops receiving; nobody is told.
    t.fail_node(NodeId(3));
    run_periods(&mut t, 60);
    for i in 0..6u32 {
        if i == 3 {
            continue;
        }
        assert_eq!(view_of(&t, i, 3), PeerState::Dead, "survivor {i}");
        let events = t.node_mut(NodeId(i)).detector.take_events();
        assert!(
            events.contains(&SwimEvent::Confirmed(NodeId(3))),
            "survivor {i} got {events:?}"
        );
        // No healthy peer was condemned along the way.
        for j in 0..6u32 {
            if j != 3 && j != i {
                assert_eq!(view_of(&t, i, j), PeerState::Alive);
            }
        }
    }
}

#[test]
fn detection_is_deterministic_under_the_simulator() {
    let run = || {
        let mut t = swarm(5, 7);
        run_periods(&mut t, 5);
        t.fail_node(NodeId(2));
        run_periods(&mut t, 50);
        let confirms: Vec<(u32, Vec<SwimEvent>)> = (0..5u32)
            .map(|i| (i, t.node_mut(NodeId(i)).detector.take_events()))
            .collect();
        (
            t.stats().total_messages(),
            t.stats().counter("swim_pings"),
            format!("{confirms:?}"),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn isolated_node_and_majority_reconverge_after_heal() {
    let mut t = swarm(4, 3);
    run_periods(&mut t, 10);
    let isolated = NodeId(0);
    let rest: Vec<NodeId> = (1..4).map(NodeId).collect();
    t.faults_mut().partition(&[isolated], &rest);
    run_periods(&mut t, 80);
    // Both sides condemned each other.
    for i in 1..4u32 {
        assert_eq!(view_of(&t, i, 0), PeerState::Dead, "survivor {i}");
    }
    for j in 1..4u32 {
        assert_eq!(view_of(&t, 0, j), PeerState::Dead, "isolated about {j}");
    }
    for i in 0..4u32 {
        t.node_mut(NodeId(i)).detector.take_events();
    }
    // Heal: the dead-peer probe + refutation dance revives both sides —
    // each node that was wrongly confirmed bumps its incarnation, and the
    // higher-incarnation alive claim spreads by gossip.
    t.faults_mut().heal();
    run_periods(&mut t, 200);
    for i in 0..4u32 {
        for j in 0..4u32 {
            if i != j {
                assert_eq!(view_of(&t, i, j), PeerState::Alive, "{i} about {j}");
            }
        }
    }
    // Everyone saw node 0 come back as a revival event.
    for i in 1..4u32 {
        let events = t.node_mut(NodeId(i)).detector.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SwimEvent::Revived { node, .. } if *node == isolated)),
            "survivor {i} got {events:?}"
        );
    }
}

#[test]
fn crash_restart_with_higher_incarnation_rejoins() {
    let mut t = swarm(5, 11);
    run_periods(&mut t, 10);
    t.fail_node(NodeId(4));
    run_periods(&mut t, 60);
    for i in 0..4u32 {
        assert_eq!(view_of(&t, i, 4), PeerState::Dead);
        t.node_mut(NodeId(i)).detector.take_events();
    }
    // Restart: state preserved, incarnation bumped above the confirmed
    // one, alive re-announced (what a restarted moarad does on rejoin).
    let dead_inc = t
        .node(NodeId(0))
        .detector
        .peer(NodeId(4))
        .unwrap()
        .incarnation;
    t.recover_node(NodeId(4));
    t.node_mut(NodeId(4)).detector.set_incarnation(dead_inc + 1);
    run_periods(&mut t, 120);
    for i in 0..4u32 {
        assert_eq!(view_of(&t, i, 4), PeerState::Alive, "survivor {i}");
        let events = t.node_mut(NodeId(i)).detector.take_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SwimEvent::Revived { node, .. } if *node == NodeId(4))),
            "survivor {i} got {events:?}"
        );
    }
    // The restarted node also re-learned its peers are alive.
    for j in 0..4u32 {
        assert_eq!(view_of(&t, 4, j), PeerState::Alive);
    }
}

#[test]
fn lossy_links_delay_but_do_not_break_detection() {
    // Under sustained loss a short suspicion window would confirm healthy
    // peers; a wider one rides out the dropped acks (the tuning trade-off
    // documented in docs/membership.md).
    let cfg = SwimConfig {
        suspect_periods: 8,
        ..SwimConfig::fast()
    };
    let mut t = swarm_with(5, 13, cfg);
    // 20% loss on every link: indirect probes and gossip absorb it.
    t.faults_mut().set_default_drop(0.2);
    run_periods(&mut t, 40);
    for i in 0..5u32 {
        for j in 0..5u32 {
            if i != j {
                assert_eq!(
                    view_of(&t, i, j),
                    PeerState::Alive,
                    "{i} wrongly condemned {j} under loss"
                );
            }
        }
    }
    // A real crash is still confirmed.
    t.fail_node(NodeId(1));
    run_periods(&mut t, 100);
    for i in 0..5u32 {
        if i != 1 {
            assert_eq!(view_of(&t, i, 1), PeerState::Dead, "survivor {i}");
        }
    }
}

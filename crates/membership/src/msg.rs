//! The failure detector's gossip frames.
//!
//! Three message kinds (classic SWIM):
//!
//! * [`SwimMsg::Ping`] — direct liveness probe; the receiver answers
//!   [`SwimMsg::Ack`] to `reply_to` (which differs from the sender when
//!   the ping was relayed for an indirect probe).
//! * [`SwimMsg::PingReq`] — indirect probe: "ping `target` for me". The
//!   relay pings the target with the *origin* as `reply_to`, so the ack
//!   travels back in one hop and the relay keeps no state.
//! * [`SwimMsg::Ack`] — liveness proof for the ping's `seq`.
//!
//! Every message piggybacks a bounded list of membership [`Update`]s —
//! the dissemination component: alive/suspect/dead claims, each stamped
//! with the subject's incarnation number so stale claims lose to fresh
//! refutations deterministically (see `detector.rs` for the precedence
//! rules).

use moara_simnet::{Message, NodeId};
use moara_wire::{Wire, WireError};

/// Liveness claim states carried by gossip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerState {
    /// The subject is believed alive.
    Alive,
    /// The subject failed a probe round and is awaiting refutation.
    Suspect,
    /// The subject's failure was confirmed (suspicion expired).
    Dead,
}

impl Wire for PeerState {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PeerState::Alive => 0,
            PeerState::Suspect => 1,
            PeerState::Dead => 2,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => PeerState::Alive,
            1 => PeerState::Suspect,
            2 => PeerState::Dead,
            _ => return Err(WireError::Invalid("PeerState tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// One piggybacked membership claim: `node` is in `state` as of
/// incarnation `incarnation`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Update {
    /// The subject of the claim.
    pub node: NodeId,
    /// The subject's incarnation number the claim refers to. Only the
    /// subject itself ever increments it (to refute suspicion or to
    /// rejoin after a confirmed death).
    pub incarnation: u64,
    /// The claimed liveness state.
    pub state: PeerState,
}

impl Wire for Update {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.incarnation.encode(out);
        self.state.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Update {
            node: Wire::decode(buf)?,
            incarnation: Wire::decode(buf)?,
            state: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 8 + 1
    }
}

/// A failure-detector wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwimMsg {
    /// Direct probe; answer an [`SwimMsg::Ack`] with the same `seq` to
    /// `reply_to`.
    Ping {
        /// Probe sequence number (scoped to the probing node).
        seq: u64,
        /// Where the ack must go — the probe's *origin*, which is not the
        /// ping's sender when a relay forwarded it for a ping-req.
        reply_to: NodeId,
        /// Piggybacked membership gossip.
        updates: Vec<Update>,
    },
    /// Liveness proof for the probe `seq`.
    Ack {
        /// Echo of the ping's sequence number.
        seq: u64,
        /// Piggybacked membership gossip.
        updates: Vec<Update>,
    },
    /// Indirect-probe request: the receiver pings `target` with the
    /// requester as `reply_to`.
    PingReq {
        /// The origin's probe sequence number, passed through.
        seq: u64,
        /// Whom to probe on the origin's behalf.
        target: NodeId,
        /// Piggybacked membership gossip.
        updates: Vec<Update>,
    },
}

impl Wire for SwimMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SwimMsg::Ping {
                seq,
                reply_to,
                updates,
            } => {
                out.push(0);
                seq.encode(out);
                reply_to.encode(out);
                updates.encode(out);
            }
            SwimMsg::Ack { seq, updates } => {
                out.push(1);
                seq.encode(out);
                updates.encode(out);
            }
            SwimMsg::PingReq {
                seq,
                target,
                updates,
            } => {
                out.push(2);
                seq.encode(out);
                target.encode(out);
                updates.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            0 => SwimMsg::Ping {
                seq: Wire::decode(buf)?,
                reply_to: Wire::decode(buf)?,
                updates: Wire::decode(buf)?,
            },
            1 => SwimMsg::Ack {
                seq: Wire::decode(buf)?,
                updates: Wire::decode(buf)?,
            },
            2 => SwimMsg::PingReq {
                seq: Wire::decode(buf)?,
                target: Wire::decode(buf)?,
                updates: Wire::decode(buf)?,
            },
            _ => return Err(WireError::Invalid("SwimMsg tag")),
        })
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            SwimMsg::Ping {
                seq,
                reply_to,
                updates,
            } => seq.encoded_len() + reply_to.encoded_len() + updates.encoded_len(),
            SwimMsg::Ack { seq, updates } => seq.encoded_len() + updates.encoded_len(),
            SwimMsg::PingReq {
                seq,
                target,
                updates,
            } => seq.encoded_len() + target.encoded_len() + updates.encoded_len(),
        }
    }
}

impl SwimMsg {
    /// The piggybacked gossip, whatever the message kind.
    pub fn updates(&self) -> &[Update] {
        match self {
            SwimMsg::Ping { updates, .. }
            | SwimMsg::Ack { updates, .. }
            | SwimMsg::PingReq { updates, .. } => updates,
        }
    }
}

impl Message for SwimMsg {
    /// Exact framed size when traveling alone on a stream transport
    /// (embedding envelopes like `DaemonMsg` add their own tag byte).
    fn size_bytes(&self) -> usize {
        moara_wire::peer_framed_len(self)
    }
    // Detector traffic belongs to no query: `query_tag` stays `None`.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swim_messages_roundtrip() {
        let updates = vec![
            Update {
                node: NodeId(1),
                incarnation: 0,
                state: PeerState::Alive,
            },
            Update {
                node: NodeId(2),
                incarnation: 7,
                state: PeerState::Suspect,
            },
            Update {
                node: NodeId(3),
                incarnation: 2,
                state: PeerState::Dead,
            },
        ];
        let msgs = vec![
            SwimMsg::Ping {
                seq: 9,
                reply_to: NodeId(4),
                updates: updates.clone(),
            },
            SwimMsg::Ack {
                seq: 9,
                updates: vec![],
            },
            SwimMsg::PingReq {
                seq: 10,
                target: NodeId(5),
                updates,
            },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.encoded_len());
            assert_eq!(SwimMsg::from_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn garbage_tags_are_rejected() {
        assert!(SwimMsg::from_bytes(&[9]).is_err());
        assert!(PeerState::decode(&mut &[7u8][..]).is_err());
        assert!(SwimMsg::from_bytes(&[]).is_err());
    }
}

//! # moara-membership
//!
//! Live membership for Moara: a SWIM-style failure detector that turns
//! "a peer stopped answering" into a *protocol-level* signal the rest of
//! the stack can act on — `on_peer_failed`, DHT ring repair, membership
//! pruning — without the omniscient `Cluster::fail_node` the simulator
//! harness enjoys.
//!
//! Three pieces:
//!
//! * [`SwimMsg`] / [`Update`] — the gossip frames: ping, indirect
//!   ping-req, ack, each piggybacking bounded membership claims stamped
//!   with incarnation numbers;
//! * [`SwimDetector`] — the per-node state machine (probe round-robin,
//!   suspect → confirm with refutation, dissemination queue), written
//!   against the `moara-transport` seam so `SimTransport` drives it
//!   deterministically and `TcpTransport` drives it in real time;
//! * [`SwimNode`] — a minimal [`NetProtocol`] host for running detectors
//!   standalone (tests, examples); real deployments embed the detector
//!   next to their protocol node (see `moara-daemon`), multiplexing
//!   messages by envelope variant and timers by [`SWIM_TAG_BASE`].
//!
//! See `docs/membership.md` for parameters, frame layouts, and the
//! crash-recovery (rejoin) flow.

pub mod detector;
pub mod msg;

pub use detector::{PeerView, SwimConfig, SwimDetector, SwimEvent, SWIM_TAG_BASE};
pub use msg::{PeerState, SwimMsg, Update};

use moara_simnet::{NodeId, SimTime, TimerTag};
use moara_transport::{NetCtx, NetProtocol};

/// A standalone [`NetProtocol`] host for one [`SwimDetector`]: the whole
/// node *is* the detector. Used by tests and by deployments that want a
/// dedicated membership plane.
#[derive(Debug)]
pub struct SwimNode {
    /// The hosted detector.
    pub detector: SwimDetector,
}

impl SwimNode {
    /// Hosts a fresh detector for `me`.
    pub fn new(me: NodeId, cfg: SwimConfig, seed: u64) -> SwimNode {
        SwimNode {
            detector: SwimDetector::new(me, cfg, seed),
        }
    }

    /// Installs the peer set as all-alive at incarnation 0.
    pub fn with_peers(mut self, peers: &[NodeId]) -> SwimNode {
        for &p in peers {
            self.detector.sync_peer(p, 0, true, SimTime::ZERO);
        }
        self
    }
}

impl NetProtocol for SwimNode {
    type Msg = SwimMsg;

    fn on_start(&mut self, ctx: &mut dyn NetCtx<SwimMsg>) {
        self.detector.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, from: NodeId, msg: SwimMsg) {
        self.detector.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, tag: TimerTag) {
        self.detector.on_timer(ctx, tag);
    }
}

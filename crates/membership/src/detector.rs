//! The SWIM-style failure-detector state machine.
//!
//! Written purely against the `moara-transport` seam (`NetCtx<SwimMsg>`),
//! so the *same* machine runs deterministically under `SimTransport`
//! (virtual time, seeded randomness) and in real time under
//! `TcpTransport`. Hosts embed one detector per node, route
//! [`SwimMsg`]s to [`SwimDetector::on_message`], forward timer tags it
//! [`owns`](SwimDetector::owns_tag) to [`SwimDetector::on_timer`], and
//! drain [`SwimEvent`]s to act on confirmed failures and revivals.
//!
//! ## Protocol period
//!
//! Every `period`, the detector resolves the previous probe (no ack by
//! now ⇒ the target becomes *suspect*), expires suspicions older than
//! `suspect_periods × period` into *confirmed* failures, and probes the
//! next peer in a shuffled round-robin. `ping_timeout` after a direct
//! ping with no ack, the probe goes indirect: `ping_req_fanout` random
//! peers are asked to ping the target with us as the ack's return
//! address, so one asymmetric link does not condemn a healthy peer.
//!
//! ## Incarnations and refutation
//!
//! Every claim about a node is stamped with that node's *incarnation
//! number*, which only the node itself increments. A node that learns it
//! is suspected (or declared dead) re-announces itself alive under a
//! higher incarnation; the precedence rules in [`SwimDetector::apply_update`]
//! make the refutation win everywhere it propagates. Crash-recovery uses
//! the same mechanism: a restarted node re-enters with an incarnation
//! above its confirmed-dead one.

use std::collections::{BTreeMap, HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use moara_simnet::{NodeId, SimDuration, SimTime, TimerTag};
use moara_transport::NetCtx;

use crate::msg::{PeerState, SwimMsg, Update};

/// Timer tags with this bit set belong to the failure detector; hosts
/// embedding a detector next to another protocol (which allocates tags
/// from 0 upward) use it to dispatch `on_timer` calls.
pub const SWIM_TAG_BASE: TimerTag = 1 << 63;

/// Failure-detector tuning.
#[derive(Clone, Debug)]
pub struct SwimConfig {
    /// Protocol period: one probe per period, suspicion resolution on
    /// period boundaries.
    pub period: SimDuration,
    /// How long after a direct ping the probe turns indirect (must be
    /// well below `period` so the indirect acks can still arrive in time).
    pub ping_timeout: SimDuration,
    /// How many relays an indirect probe asks.
    pub ping_req_fanout: usize,
    /// Suspicions older than this many periods become confirmed failures.
    pub suspect_periods: u32,
    /// Maximum piggybacked updates per message (the sender's own alive
    /// claim rides along for free on top).
    pub gossip_max: usize,
    /// Each queued update is piggybacked on roughly
    /// `retransmit_factor × log₂(peers)` outgoing messages before it is
    /// dropped from the dissemination queue.
    pub retransmit_factor: u32,
}

impl Default for SwimConfig {
    fn default() -> SwimConfig {
        SwimConfig {
            period: SimDuration::from_millis(1000),
            ping_timeout: SimDuration::from_millis(300),
            ping_req_fanout: 2,
            suspect_periods: 3,
            gossip_max: 8,
            retransmit_factor: 4,
        }
    }
}

impl SwimConfig {
    /// An aggressive configuration for tests: 100 ms periods, one-second
    /// end-to-end confirmation.
    pub fn fast() -> SwimConfig {
        SwimConfig {
            period: SimDuration::from_millis(100),
            ping_timeout: SimDuration::from_millis(40),
            ..SwimConfig::default()
        }
    }
}

/// What the detector currently believes about one peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerView {
    /// The peer's highest known incarnation.
    pub incarnation: u64,
    /// Current liveness state.
    pub state: PeerState,
    /// When the state was last entered (drives suspicion expiry).
    pub since: SimTime,
}

/// A state change the host must act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwimEvent {
    /// A peer failed a probe round (informational; refutable).
    Suspected(NodeId),
    /// A peer's failure was confirmed — repair overlays, drop routes.
    Confirmed(NodeId),
    /// A previously suspected/confirmed peer re-announced itself alive
    /// under a higher incarnation — reintegrate it.
    Revived {
        /// The peer that came back.
        node: NodeId,
        /// Its new incarnation.
        incarnation: u64,
    },
}

enum TimerEvent {
    Tick,
    AckTimeout { seq: u64, target: NodeId },
}

/// One node's failure detector.
pub struct SwimDetector {
    me: NodeId,
    cfg: SwimConfig,
    incarnation: u64,
    peers: BTreeMap<NodeId, PeerView>,
    /// Shuffled probe order; rebuilt when exhausted or membership changes.
    probe_order: Vec<NodeId>,
    /// Probe awaiting an ack: (seq, target).
    outstanding: Option<(u64, NodeId)>,
    next_seq: u64,
    next_tag: u64,
    timers: HashMap<TimerTag, TimerEvent>,
    /// Dissemination queue: updates still owed piggyback slots.
    gossip: VecDeque<(Update, u32)>,
    events: Vec<SwimEvent>,
    rng: StdRng,
}

impl SwimDetector {
    /// A detector for node `me`. The seed fixes probe order and relay
    /// choice (deterministic under the simulator).
    pub fn new(me: NodeId, cfg: SwimConfig, seed: u64) -> SwimDetector {
        SwimDetector {
            me,
            cfg,
            incarnation: 0,
            peers: BTreeMap::new(),
            probe_order: Vec::new(),
            outstanding: None,
            next_seq: 0,
            next_tag: 0,
            timers: HashMap::new(),
            gossip: VecDeque::new(),
            events: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// This node's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Adopts an externally assigned incarnation (crash-recovery: the
    /// rejoin handshake hands the restarted node one above its
    /// confirmed-dead incarnation) and queues the alive announcement.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.incarnation = self.incarnation.max(incarnation);
        self.gossip_push(Update {
            node: self.me,
            incarnation: self.incarnation,
            state: PeerState::Alive,
        });
    }

    /// The detector's current belief about every known peer.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, &PeerView)> {
        self.peers.iter().map(|(&n, v)| (n, v))
    }

    /// The view of one peer, if known.
    pub fn peer(&self, node: NodeId) -> Option<&PeerView> {
        self.peers.get(&node)
    }

    /// How many peers this detector currently believes alive, suspects,
    /// and has confirmed dead, in that order (the `/metrics` liveness
    /// gauges; excludes this node itself).
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for (_, p) in self.peers() {
            match p.state {
                PeerState::Alive => counts.0 += 1,
                PeerState::Suspect => counts.1 += 1,
                PeerState::Dead => counts.2 += 1,
            }
        }
        counts
    }

    /// Peers currently confirmed dead.
    pub fn confirmed_dead(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, v)| v.state == PeerState::Dead)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Installs or reconciles one peer from an authoritative membership
    /// list (no events are emitted — the caller already knows). Claims
    /// about this node itself adjust the local incarnation instead: a
    /// list that believes us dead is refuted by jumping above it.
    pub fn sync_peer(&mut self, node: NodeId, incarnation: u64, alive: bool, now: SimTime) {
        if node == self.me {
            if !alive && incarnation >= self.incarnation {
                self.incarnation = incarnation + 1;
                self.announce_alive();
            } else {
                self.incarnation = self.incarnation.max(incarnation);
            }
            return;
        }
        let state = if alive {
            PeerState::Alive
        } else {
            PeerState::Dead
        };
        match self.peers.get_mut(&node) {
            None => {
                self.peers.insert(
                    node,
                    PeerView {
                        incarnation,
                        state,
                        since: now,
                    },
                );
                self.probe_order.clear();
            }
            Some(p) => {
                // Same precedence as gossip: revival needs a strictly
                // higher incarnation; death claims win at equal ones.
                let wins = match (state, p.state) {
                    (PeerState::Alive, PeerState::Alive) => incarnation > p.incarnation,
                    (PeerState::Alive, _) => incarnation > p.incarnation,
                    (PeerState::Dead, PeerState::Dead) => incarnation > p.incarnation,
                    (PeerState::Dead, _) => incarnation >= p.incarnation,
                    (PeerState::Suspect, _) => false, // lists carry no suspicion
                };
                if wins {
                    *p = PeerView {
                        incarnation,
                        state,
                        since: now,
                    };
                    self.probe_order.clear();
                }
            }
        }
    }

    /// Forgets a peer entirely (it left the membership).
    pub fn remove_peer(&mut self, node: NodeId) {
        self.peers.remove(&node);
        self.probe_order.clear();
    }

    /// Discards probe-round transients after a crash-restart: the
    /// pending probe, timer bookkeeping, and suspicion clocks must not
    /// survive the downtime gap — a suspicion that "aged" while the node
    /// was dead would otherwise confirm a healthy peer on the very first
    /// tick back. Suspects revert to alive (they were alive per our last
    /// live evidence); confirmed-dead entries are kept and re-verified
    /// by the dead-peer probe dance. Call before re-arming via
    /// [`SwimDetector::start`].
    pub fn reset_transients(&mut self, now: SimTime) {
        self.outstanding = None;
        self.timers.clear();
        self.probe_order.clear();
        for p in self.peers.values_mut() {
            if p.state == PeerState::Suspect {
                p.state = PeerState::Alive;
            }
            p.since = now;
        }
    }

    /// Queues this node's alive claim (current incarnation) for gossip.
    pub fn announce_alive(&mut self) {
        self.gossip_push(Update {
            node: self.me,
            incarnation: self.incarnation,
            state: PeerState::Alive,
        });
    }

    /// Drains the pending host-visible events.
    pub fn take_events(&mut self) -> Vec<SwimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether `tag` belongs to this detector's timer space.
    pub fn owns_tag(&self, tag: TimerTag) -> bool {
        tag & SWIM_TAG_BASE != 0
    }

    fn alloc_timer(&mut self, ev: TimerEvent) -> TimerTag {
        let tag = SWIM_TAG_BASE | self.next_tag;
        self.next_tag += 1;
        self.timers.insert(tag, ev);
        tag
    }

    /// Arms the protocol-period tick. Call once when the node starts;
    /// the first tick is staggered randomly within one period so a
    /// simultaneously booted cluster does not probe in lockstep.
    pub fn start(&mut self, ctx: &mut dyn NetCtx<SwimMsg>) {
        let stagger = self.rng.gen_range(0..self.cfg.period.as_micros().max(1));
        let tag = self.alloc_timer(TimerEvent::Tick);
        ctx.set_timer(SimDuration::from_micros(stagger), tag);
    }

    /// Handles a detector timer. Returns false when the tag is unknown
    /// (e.g. already superseded), which the host may ignore.
    pub fn on_timer(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, tag: TimerTag) -> bool {
        match self.timers.remove(&tag) {
            Some(TimerEvent::Tick) => {
                self.tick(ctx);
                true
            }
            Some(TimerEvent::AckTimeout { seq, target }) => {
                if self.outstanding == Some((seq, target)) {
                    self.indirect_probe(ctx, seq, target);
                }
                true
            }
            None => false,
        }
    }

    /// One protocol period: resolve the last probe, expire suspicions,
    /// probe the next peer, re-arm.
    fn tick(&mut self, ctx: &mut dyn NetCtx<SwimMsg>) {
        let now = ctx.now();
        // 1. The previous period's probe got no ack (direct or indirect):
        //    the target becomes suspect.
        if let Some((_, target)) = self.outstanding.take() {
            self.suspect(ctx, target, now);
        }
        // 2. Expire suspicions into confirmed failures.
        let deadline = SimDuration::from_micros(
            self.cfg
                .period
                .as_micros()
                .saturating_mul(u64::from(self.cfg.suspect_periods)),
        );
        let expired: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|(_, v)| {
                v.state == PeerState::Suspect && now.duration_since(v.since) >= deadline
            })
            .map(|(&n, _)| n)
            .collect();
        for n in expired {
            self.confirm(ctx, n, now);
        }
        // 3. Probe the next peer in the shuffled round-robin.
        if let Some(target) = self.next_probe_target() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.outstanding = Some((seq, target));
            let updates = self.gossip_take();
            ctx.send(
                target,
                SwimMsg::Ping {
                    seq,
                    reply_to: self.me,
                    updates,
                },
            );
            ctx.count("swim_pings");
            let tag = self.alloc_timer(TimerEvent::AckTimeout { seq, target });
            ctx.set_timer(self.cfg.ping_timeout, tag);
        }
        // 4. Next period.
        let tag = self.alloc_timer(TimerEvent::Tick);
        ctx.set_timer(self.cfg.period, tag);
    }

    /// Picks the next probe target: round-robin over a shuffled list of
    /// non-dead peers, reshuffled when exhausted.
    fn next_probe_target(&mut self) -> Option<NodeId> {
        loop {
            match self.probe_order.pop() {
                Some(n) => {
                    // Entries scheduled at rebuild are probed even if the
                    // peer has since been confirmed dead (that probe is
                    // the false-confirmation escape hatch); only peers
                    // that left the membership entirely are skipped.
                    if self.peers.contains_key(&n) {
                        return Some(n);
                    }
                }
                None => {
                    let mut order: Vec<NodeId> = self
                        .peers
                        .iter()
                        .filter(|(_, v)| v.state != PeerState::Dead)
                        .map(|(&n, _)| n)
                        .collect();
                    // Keep one randomly chosen confirmed-dead peer per
                    // round-robin cycle: a false confirmation (e.g. a
                    // healed partition) is discovered by the ping/refute
                    // dance instead of persisting forever. When *every*
                    // peer is believed dead (we were the isolated side),
                    // this is also what keeps the detector talking.
                    let dead: Vec<NodeId> = self
                        .peers
                        .iter()
                        .filter(|(_, v)| v.state == PeerState::Dead)
                        .map(|(&n, _)| n)
                        .collect();
                    if !dead.is_empty() {
                        order.push(dead[self.rng.gen_range(0..dead.len())]);
                    }
                    if order.is_empty() {
                        return None;
                    }
                    order.shuffle(&mut self.rng);
                    self.probe_order = order;
                }
            }
        }
    }

    /// Escalates an unanswered direct ping: ask `ping_req_fanout` random
    /// other peers to probe the target on our behalf.
    fn indirect_probe(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, seq: u64, target: NodeId) {
        let mut relays: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|(&n, v)| n != target && v.state == PeerState::Alive)
            .map(|(&n, _)| n)
            .collect();
        relays.shuffle(&mut self.rng);
        relays.truncate(self.cfg.ping_req_fanout);
        for relay in relays {
            let updates = self.gossip_take();
            ctx.send(
                relay,
                SwimMsg::PingReq {
                    seq,
                    target,
                    updates,
                },
            );
            ctx.count("swim_ping_reqs");
        }
    }

    /// Handles an incoming detector message.
    pub fn on_message(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, from: NodeId, msg: SwimMsg) {
        let now = ctx.now();
        // Any direct message is first-hand evidence about the sender:
        // clear a local suspicion without waiting for the gossip round,
        // and tell a confirmed-dead sender what we think of it — our
        // `Dead{inc}` claim rides back on the reply, the "dead" peer
        // refutes it with a higher incarnation, and both sides of a
        // healed partition converge back to alive (see the rejoin notes
        // in `docs/membership.md`).
        if let Some(p) = self.peers.get_mut(&from) {
            match p.state {
                PeerState::Suspect => {
                    p.state = PeerState::Alive;
                    p.since = now;
                }
                PeerState::Dead => {
                    let inc = p.incarnation;
                    self.gossip_push(Update {
                        node: from,
                        incarnation: inc,
                        state: PeerState::Dead,
                    });
                }
                PeerState::Alive => {}
            }
        }
        for u in msg.updates().to_vec() {
            self.apply_update(u, now);
        }
        match msg {
            SwimMsg::Ping { seq, reply_to, .. } => {
                let updates = self.gossip_take();
                ctx.send(reply_to, SwimMsg::Ack { seq, updates });
            }
            SwimMsg::Ack { seq, .. } => {
                if let Some((want, target)) = self.outstanding {
                    if want == seq {
                        self.outstanding = None;
                        // The ack's piggybacked self-claim normally clears
                        // any suspicion; make it unconditional.
                        if let Some(p) = self.peers.get_mut(&target) {
                            if p.state == PeerState::Suspect {
                                p.state = PeerState::Alive;
                                p.since = now;
                            }
                        }
                    }
                }
            }
            SwimMsg::PingReq { seq, target, .. } => {
                let updates = self.gossip_take();
                ctx.send(
                    target,
                    SwimMsg::Ping {
                        seq,
                        reply_to: from,
                        updates,
                    },
                );
            }
        }
    }

    /// Applies one gossiped claim under SWIM's precedence rules.
    fn apply_update(&mut self, u: Update, now: SimTime) {
        if u.node == self.me {
            // A claim that we are suspect/dead at our current (or a
            // later) incarnation: refute by jumping above it.
            if u.state != PeerState::Alive && u.incarnation >= self.incarnation {
                self.incarnation = u.incarnation + 1;
                self.announce_alive();
            }
            return;
        }
        let Some(p) = self.peers.get_mut(&u.node) else {
            // Unknown subject: membership is host-managed; liveness gossip
            // about nodes we were never told about is dropped.
            return;
        };
        match u.state {
            PeerState::Alive => {
                if u.incarnation > p.incarnation {
                    let was_dead = p.state == PeerState::Dead;
                    let was_down = p.state != PeerState::Alive;
                    *p = PeerView {
                        incarnation: u.incarnation,
                        state: PeerState::Alive,
                        since: now,
                    };
                    if was_dead {
                        self.events.push(SwimEvent::Revived {
                            node: u.node,
                            incarnation: u.incarnation,
                        });
                        self.probe_order.clear();
                    }
                    if was_down {
                        self.gossip_push(u);
                    }
                }
            }
            PeerState::Suspect => {
                let wins = match p.state {
                    PeerState::Alive => u.incarnation >= p.incarnation,
                    PeerState::Suspect => u.incarnation > p.incarnation,
                    PeerState::Dead => false,
                };
                if wins {
                    let was_alive = p.state == PeerState::Alive;
                    p.incarnation = u.incarnation;
                    if was_alive {
                        p.state = PeerState::Suspect;
                        p.since = now;
                        self.events.push(SwimEvent::Suspected(u.node));
                        self.gossip_push(u);
                    }
                }
            }
            PeerState::Dead => {
                if p.state != PeerState::Dead && u.incarnation >= p.incarnation {
                    *p = PeerView {
                        incarnation: u.incarnation,
                        state: PeerState::Dead,
                        since: now,
                    };
                    self.events.push(SwimEvent::Confirmed(u.node));
                    self.gossip_push(u);
                }
            }
        }
    }

    /// Locally suspects `target` (probe round failed).
    fn suspect(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, target: NodeId, now: SimTime) {
        let Some(p) = self.peers.get_mut(&target) else {
            return;
        };
        if p.state != PeerState::Alive {
            return;
        }
        p.state = PeerState::Suspect;
        p.since = now;
        let inc = p.incarnation;
        self.events.push(SwimEvent::Suspected(target));
        self.gossip_push(Update {
            node: target,
            incarnation: inc,
            state: PeerState::Suspect,
        });
        ctx.count("swim_suspected");
    }

    /// Confirms a suspicion as a failure.
    fn confirm(&mut self, ctx: &mut dyn NetCtx<SwimMsg>, target: NodeId, now: SimTime) {
        let Some(p) = self.peers.get_mut(&target) else {
            return;
        };
        p.state = PeerState::Dead;
        p.since = now;
        let inc = p.incarnation;
        self.events.push(SwimEvent::Confirmed(target));
        self.gossip_push(Update {
            node: target,
            incarnation: inc,
            state: PeerState::Dead,
        });
        ctx.count("swim_confirmed");
    }

    /// Queues an update for piggybacked dissemination (replacing any
    /// queued claim about the same subject — the newest claim is the one
    /// worth spreading).
    fn gossip_push(&mut self, u: Update) {
        self.gossip.retain(|(q, _)| q.node != u.node);
        let n = self.peers.len().max(1) as f64;
        let budget = (self.cfg.retransmit_factor as f64 * (n + 1.0).log2().ceil()).max(1.0) as u32;
        self.gossip.push_back((u, budget));
    }

    /// Takes up to `gossip_max` queued updates for one outgoing message
    /// (decrementing their remaining budgets) and prepends this node's
    /// own alive claim.
    fn gossip_take(&mut self) -> Vec<Update> {
        let n = self.gossip.len().min(self.cfg.gossip_max);
        let mut out = Vec::with_capacity(n + 1);
        out.push(Update {
            node: self.me,
            incarnation: self.incarnation,
            state: PeerState::Alive,
        });
        for _ in 0..n {
            let (u, budget) = self.gossip.pop_front().expect("len checked");
            out.push(u.clone());
            if budget > 1 {
                self.gossip.push_back((u, budget - 1));
            }
        }
        out
    }
}

impl std::fmt::Debug for SwimDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwimDetector")
            .field("me", &self.me)
            .field("incarnation", &self.incarnation)
            .field("peers", &self.peers)
            .field("outstanding", &self.outstanding)
            .finish_non_exhaustive()
    }
}

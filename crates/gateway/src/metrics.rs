//! Prometheus text exposition for the counters the cluster already keeps.
//!
//! The subsystems (transport, query scheduler, membership, subscriptions)
//! all count things — into `Stats` named counters, detector peer states,
//! node-level gauges — but until now those numbers were only reachable
//! from Rust. [`MetricsRegistry`] is the rendezvous point: the daemon
//! snapshots every layer into one registry per `/metrics` scrape and
//! renders it in the Prometheus text format (version 0.0.4), so any
//! standard scraper can watch a live cluster.
//!
//! The registry is a plain value, not a global: it holds one scrape's
//! samples, insertion-ordered, grouped into families (`# HELP`/`# TYPE`
//! emitted once per family even when samples carry different labels).

use std::fmt::Write as _;

/// Prometheus metric kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative bucket distribution (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

struct Sample {
    labels: Vec<(String, String)>,
    value: f64,
}

struct HistSample {
    labels: Vec<(String, String)>,
    /// Finite upper bounds, ascending; the `+Inf` bucket is implicit.
    bounds: Vec<u64>,
    /// Cumulative counts, one per finite bound plus the `+Inf` total.
    cumulative: Vec<u64>,
    sum: u64,
    count: u64,
}

struct Family {
    name: String,
    help: &'static str,
    kind: MetricKind,
    samples: Vec<Sample>,
    hists: Vec<HistSample>,
}

/// One scrape's worth of metrics, renderable as Prometheus text.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records a counter sample.
    pub fn counter(&mut self, name: &str, help: &'static str, value: u64) {
        self.sample(name, help, MetricKind::Counter, &[], value as f64);
    }

    /// Records a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &'static str, value: f64) {
        self.sample(name, help, MetricKind::Gauge, &[], value);
    }

    /// Records a labelled counter sample (same name may be recorded many
    /// times with different labels; they join one family).
    pub fn counter_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        self.sample(name, help, MetricKind::Counter, labels, value as f64);
    }

    /// Records a labelled gauge sample.
    pub fn gauge_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.sample(name, help, MetricKind::Gauge, labels, value);
    }

    fn sample(
        &mut self,
        name: &str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let sample = Sample {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            value,
        };
        if let Some(f) = self.families.iter_mut().find(|f| f.name == name) {
            f.samples.push(sample);
            return;
        }
        self.families.push(Family {
            name: name.to_owned(),
            help,
            kind,
            samples: vec![sample],
            hists: Vec::new(),
        });
    }

    /// Records a histogram series from pre-aggregated data: ascending
    /// finite `bounds` and `cumulative` counts (one per bound, plus the
    /// final `+Inf` total, which must equal `count`). Deliberately takes
    /// raw slices — this crate stays dependency-free, and any histogram
    /// implementation (the trace store's, the gateway's atomic buckets)
    /// can feed it.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &'static str,
        bounds: &[u64],
        cumulative: &[u64],
        sum: u64,
        count: u64,
    ) {
        self.histogram_with(name, help, &[], bounds, cumulative, sum, count);
    }

    /// Records a labelled histogram series (same name, different labels
    /// join one family — e.g. one series per query phase).
    #[allow(clippy::too_many_arguments)]
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        cumulative: &[u64],
        sum: u64,
        count: u64,
    ) {
        debug_assert_eq!(cumulative.len(), bounds.len() + 1, "need a +Inf bucket");
        let hist = HistSample {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            bounds: bounds.to_vec(),
            cumulative: cumulative.to_vec(),
            sum,
            count,
        };
        if let Some(f) = self.families.iter_mut().find(|f| f.name == name) {
            f.hists.push(hist);
            return;
        }
        self.families.push(Family {
            name: name.to_owned(),
            help,
            kind: MetricKind::Histogram,
            samples: Vec::new(),
            hists: vec![hist],
        });
    }

    /// How many samples the registry holds (tests, sanity gates).
    pub fn sample_count(&self) -> usize {
        self.families.iter().map(|f| f.samples.len()).sum()
    }

    /// Renders the Prometheus text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            for s in &f.samples {
                out.push_str(&f.name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                    }
                    out.push('}');
                }
                // Prometheus accepts integer or float renderings; keep
                // integers exact (counters are u64-sourced).
                if s.value.fract() == 0.0 && s.value.abs() < 9e15 {
                    let _ = writeln!(out, " {}", s.value as i64);
                } else {
                    let _ = writeln!(out, " {}", s.value);
                }
            }
            for h in &f.hists {
                let extra = |out: &mut String, le: Option<&str>| {
                    let mut first = true;
                    if le.is_some() || !h.labels.is_empty() {
                        out.push('{');
                        for (k, v) in &h.labels {
                            if !first {
                                out.push(',');
                            }
                            first = false;
                            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                        }
                        if let Some(le) = le {
                            if !first {
                                out.push(',');
                            }
                            let _ = write!(out, "le=\"{le}\"");
                        }
                        out.push('}');
                    }
                };
                for (i, b) in h.bounds.iter().enumerate() {
                    let _ = write!(out, "{}_bucket", f.name);
                    extra(&mut out, Some(&b.to_string()));
                    let _ = writeln!(out, " {}", h.cumulative[i]);
                }
                let _ = write!(out, "{}_bucket", f.name);
                extra(&mut out, Some("+Inf"));
                let _ = writeln!(out, " {}", h.cumulative[h.bounds.len()]);
                let _ = write!(out, "{}_sum", f.name);
                extra(&mut out, None);
                let _ = writeln!(out, " {}", h.sum);
                let _ = write!(out, "{}_count", f.name);
                extra(&mut out, None);
                let _ = writeln!(out, " {}", h.count);
            }
        }
        out
    }
}

/// Conformance check for a full text-format scrape: family headers appear
/// exactly once and before their samples, every sample line parses, every
/// sample belongs to a declared family, and histogram series are
/// internally consistent (cumulative buckets, `+Inf` equals `_count`).
/// Returns the first violation found.
pub fn lint_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut kinds: HashMap<String, String> = HashMap::new();
    let mut helped: HashMap<String, usize> = HashMap::new();
    let mut sampled: HashMap<String, bool> = HashMap::new();
    // Histogram bookkeeping: family -> labels -> (last le, last cum, inf, count)
    #[derive(Default)]
    struct HistCheck {
        last_le: Option<f64>,
        last_cum: Option<f64>,
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: HashMap<(String, String), HistCheck> = HashMap::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default().to_owned();
            if name.is_empty() {
                return Err(format!("line {ln}: HELP without a metric name"));
            }
            *helped.entry(name.clone()).or_default() += 1;
            if helped[&name] > 1 {
                return Err(format!("line {ln}: duplicate HELP for {name}"));
            }
            if sampled.contains_key(&name) {
                return Err(format!("line {ln}: HELP for {name} after its samples"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or_default().to_owned();
            let kind = it.next().unwrap_or_default().to_owned();
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {ln}: unknown TYPE {kind} for {name}"));
            }
            if kinds.insert(name.clone(), kind).is_some() {
                return Err(format!("line {ln}: duplicate TYPE for {name}"));
            }
            if sampled.contains_key(&name) {
                return Err(format!("line {ln}: TYPE for {name} after its samples"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample line: name[{labels}] value
        let (series, value) = parse_sample_line(line)
            .ok_or_else(|| format!("line {ln}: unparseable sample line: {line:?}"))?;
        let (name, labels) = series;
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let stripped = name.strip_suffix(suf)?;
                if kinds.get(stripped).map(String::as_str) == Some("histogram") {
                    Some(stripped.to_owned())
                } else {
                    None
                }
            })
            .unwrap_or_else(|| name.clone());
        if !kinds.contains_key(&base) {
            return Err(format!("line {ln}: sample for undeclared family {name}"));
        }
        sampled.insert(base.clone(), true);
        if kinds[&base] == "histogram" {
            // Strip the le label for the series key so one histogram's
            // buckets group together.
            let series_labels: Vec<&(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").collect();
            let lkey = series_labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let check = hists.entry((base.clone(), lkey)).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("line {ln}: _bucket without le label"))?;
                let le_v = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {ln}: bad le value {le:?}"))?
                };
                if let Some(prev) = check.last_le {
                    if le_v <= prev {
                        return Err(format!("line {ln}: le values not ascending"));
                    }
                }
                if let Some(prev) = check.last_cum {
                    if value < prev {
                        return Err(format!("line {ln}: bucket counts not cumulative"));
                    }
                }
                check.last_le = Some(le_v);
                check.last_cum = Some(value);
                if le_v.is_infinite() {
                    check.inf = Some(value);
                }
            } else if name.ends_with("_count") {
                check.count = Some(value);
            }
        }
    }
    for ((fam, labels), check) in &hists {
        match (check.inf, check.count) {
            (Some(i), Some(c)) if i != c => {
                return Err(format!(
                    "histogram {fam}{{{labels}}}: +Inf bucket {i} != count {c}"
                ));
            }
            (None, _) => return Err(format!("histogram {fam}{{{labels}}}: no +Inf bucket")),
            (_, None) => return Err(format!("histogram {fam}{{{labels}}}: no _count series")),
            _ => {}
        }
    }
    Ok(())
}

/// Merges per-daemon Prometheus expositions into one cluster-wide
/// scrape: every sample line gains an `instance` label (first position),
/// family headers are emitted once in first-seen order, and peers whose
/// scrape failed surface as `moara_federation_missing{instance=…} 1`
/// instead of silently vanishing.
///
/// Each element of `parts` is `(instance, exposition)`; `None` marks a
/// peer that did not answer. Sample values are spliced through verbatim
/// (no float round-trip). A family whose `# TYPE` disagrees with the
/// first part that declared it is dropped from the conflicting part —
/// mixing kinds under one name would corrupt the merged scrape. Lines
/// that do not parse as samples are dropped.
pub fn federate_expositions(parts: &[(String, Option<String>)]) -> String {
    use std::collections::HashMap;

    struct MergedFamily {
        help: String,
        kind: String,
        lines: String,
    }
    let mut order: Vec<String> = Vec::new();
    let mut families: HashMap<String, MergedFamily> = HashMap::new();
    let mut missing: Vec<&str> = Vec::new();

    for (instance, text) in parts {
        let Some(text) = text else {
            missing.push(instance);
            continue;
        };
        // This part's own declarations (TYPE precedes samples in any
        // well-formed exposition, ours included).
        let mut local_kinds: HashMap<String, String> = HashMap::new();
        let mut local_help: HashMap<String, String> = HashMap::new();
        let mut dropped: HashMap<String, bool> = HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                if let Some((name, help)) = rest.split_once(' ') {
                    local_help.insert(name.to_owned(), help.to_owned());
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.split_once(' ') {
                    local_kinds.insert(name.to_owned(), kind.to_owned());
                }
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let Some(((name, _), _)) = parse_sample_line(line) else {
                continue;
            };
            // Histogram series (`x_bucket` etc.) belong to family `x`.
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| {
                    let stripped = name.strip_suffix(suf)?;
                    if local_kinds.get(stripped).map(String::as_str) == Some("histogram") {
                        Some(stripped.to_owned())
                    } else {
                        None
                    }
                })
                .unwrap_or_else(|| name.clone());
            let kind = local_kinds
                .get(&base)
                .cloned()
                .unwrap_or_else(|| "untyped".to_owned());
            if let Some(&d) = dropped.get(&base) {
                if d {
                    continue;
                }
            } else {
                let keep = families.get(&base).is_none_or(|f| f.kind == kind);
                dropped.insert(base.clone(), !keep);
                if !keep {
                    continue;
                }
            }
            let fam = families.entry(base.clone()).or_insert_with(|| {
                order.push(base.clone());
                MergedFamily {
                    help: local_help.get(&base).cloned().unwrap_or_default(),
                    kind,
                    lines: String::new(),
                }
            });
            // Splice `instance` in as the first label, value untouched.
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let inst = escape_label(instance);
            match series.find('{') {
                Some(open) => {
                    let _ = writeln!(
                        fam.lines,
                        "{}{{instance=\"{inst}\",{} {value}",
                        &series[..open],
                        &series[open + 1..],
                    );
                }
                None => {
                    let _ = writeln!(fam.lines, "{series}{{instance=\"{inst}\"}} {value}");
                }
            }
        }
    }

    let mut out = String::new();
    for name in &order {
        let f = &families[name];
        if !f.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", f.help);
        }
        let _ = writeln!(out, "# TYPE {name} {}", f.kind);
        out.push_str(&f.lines);
    }
    if !missing.is_empty() {
        let _ = writeln!(
            out,
            "# HELP moara_federation_missing Peers whose scrape failed during federation."
        );
        let _ = writeln!(out, "# TYPE moara_federation_missing gauge");
        for inst in missing {
            let _ = writeln!(
                out,
                "moara_federation_missing{{instance=\"{}\"}} 1",
                escape_label(inst)
            );
        }
    }
    out
}

/// Parses `name{k="v",...} value` (or `name value`); returns
/// ((name, labels), value). Label values must be well-formed quoted
/// strings with valid escapes.
#[allow(clippy::type_complexity)]
fn parse_sample_line(line: &str) -> Option<((String, Vec<(String, String)>), f64)> {
    let (series, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match series.find('{') {
        None => (series.to_owned(), Vec::new()),
        Some(open) => {
            let name = series[..open].to_owned();
            let body = series[open + 1..].strip_suffix('}')?;
            let mut labels = Vec::new();
            let mut rest = body;
            while !rest.is_empty() {
                let eq = rest.find("=\"")?;
                let key = rest[..eq].to_owned();
                rest = &rest[eq + 2..];
                // Scan the quoted value honouring escapes.
                let mut val = String::new();
                let mut chars = rest.char_indices();
                let mut end = None;
                while let Some((i, c)) = chars.next() {
                    match c {
                        '\\' => {
                            let (_, esc) = chars.next()?;
                            match esc {
                                '\\' => val.push('\\'),
                                '"' => val.push('"'),
                                'n' => val.push('\n'),
                                _ => return None,
                            }
                        }
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        '\n' => return None,
                        c => val.push(c),
                    }
                }
                let end = end?;
                labels.push((key, val));
                rest = &rest[end + 1..];
                rest = rest.strip_prefix(',').unwrap_or(rest);
            }
            (name, labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return None;
    }
    Some(((name, labels), value))
}

/// Label-value escaping per the exposition format: backslash, quote,
/// newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples() {
        let mut reg = MetricsRegistry::new();
        reg.counter("moara_messages_sent_total", "Messages sent.", 42);
        reg.gauge("moara_members_alive", "Members believed alive.", 3.0);
        let text = reg.render();
        assert!(text.contains("# HELP moara_messages_sent_total Messages sent.\n"));
        assert!(text.contains("# TYPE moara_messages_sent_total counter\n"));
        assert!(text.contains("moara_messages_sent_total 42\n"));
        assert!(text.contains("# TYPE moara_members_alive gauge\n"));
        assert!(text.contains("moara_members_alive 3\n"));
    }

    #[test]
    fn labelled_samples_share_one_family_header() {
        let mut reg = MetricsRegistry::new();
        reg.counter_with(
            "moara_http_requests_total",
            "Requests.",
            &[("endpoint", "query")],
            7,
        );
        reg.counter_with(
            "moara_http_requests_total",
            "Requests.",
            &[("endpoint", "watch")],
            2,
        );
        let text = reg.render();
        assert_eq!(text.matches("# TYPE moara_http_requests_total").count(), 1);
        assert!(text.contains("moara_http_requests_total{endpoint=\"query\"} 7\n"));
        assert!(text.contains("moara_http_requests_total{endpoint=\"watch\"} 2\n"));
    }

    #[test]
    fn label_values_escape() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_with("g", "G.", &[("q", "a\"b\\c\nd")], 1.0);
        assert!(reg.render().contains("g{q=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn floats_render_as_floats() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g", "G.", 0.5);
        assert!(reg.render().contains("g 0.5\n"));
    }

    #[test]
    fn histograms_render_buckets_sum_count() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("h_us", "H.", &[10, 100], &[1, 3, 4], 321, 4);
        let text = reg.render();
        assert!(text.contains("# TYPE h_us histogram\n"));
        assert!(text.contains("h_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("h_us_bucket{le=\"100\"} 3\n"));
        assert!(text.contains("h_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("h_us_sum 321\n"));
        assert!(text.contains("h_us_count 4\n"));
        assert_eq!(text.matches("# HELP h_us ").count(), 1);
        lint_exposition(&text).unwrap();
    }

    #[test]
    fn labelled_histograms_share_one_family() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_with("h", "H.", &[("phase", "fold")], &[10], &[2, 2], 9, 2);
        reg.histogram_with("h", "H.", &[("phase", "plan")], &[10], &[1, 1], 3, 1);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE h histogram").count(), 1);
        assert!(text.contains("h_bucket{phase=\"fold\",le=\"10\"} 2\n"));
        assert!(text.contains("h_bucket{phase=\"plan\",le=\"10\"} 1\n"));
        assert!(text.contains("h_count{phase=\"plan\"} 1\n"));
        lint_exposition(&text).unwrap();
    }

    #[test]
    fn federation_labels_merges_and_reports_missing() {
        let render = |ups: f64, hist: bool| {
            let mut reg = MetricsRegistry::new();
            reg.gauge("moara_up", "Up.", ups);
            reg.counter("moara_messages_sent_total", "Sent.", 5);
            if hist {
                reg.histogram("h_us", "H.", &[10, 100], &[1, 3, 4], 321, 4);
            }
            reg.render()
        };
        let parts = vec![
            ("n0".to_owned(), Some(render(1.0, true))),
            ("n1".to_owned(), Some(render(1.0, false))),
            ("n2".to_owned(), None),
        ];
        let text = federate_expositions(&parts);
        lint_exposition(&text).unwrap();
        // One header per family, instance-labeled samples from both peers.
        assert_eq!(text.matches("# TYPE moara_up gauge").count(), 1);
        assert!(text.contains("moara_up{instance=\"n0\"} 1\n"));
        assert!(text.contains("moara_up{instance=\"n1\"} 1\n"));
        assert!(text.contains("moara_messages_sent_total{instance=\"n1\"} 5\n"));
        // Histogram series keep their shape under the injected label.
        assert!(text.contains("h_us_bucket{instance=\"n0\",le=\"10\"} 1\n"));
        assert!(text.contains("h_us_bucket{instance=\"n0\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("h_us_count{instance=\"n0\"} 4\n"));
        // The dead peer is a series, not an absence.
        assert!(text.contains("moara_federation_missing{instance=\"n2\"} 1\n"));
    }

    #[test]
    fn federation_drops_families_with_conflicting_types() {
        let a = "# HELP x X.\n# TYPE x counter\nx 1\n".to_owned();
        let b = "# HELP x X.\n# TYPE x gauge\nx 2\n".to_owned();
        let text = federate_expositions(&[("n0".to_owned(), Some(a)), ("n1".to_owned(), Some(b))]);
        lint_exposition(&text).unwrap();
        assert!(text.contains("x{instance=\"n0\"} 1\n"));
        assert!(!text.contains("instance=\"n1\""));
    }

    #[test]
    fn federation_escapes_instance_labels_and_skips_garbage() {
        let part = "# TYPE g gauge\ng 1\nthis is not a sample\n".to_owned();
        let text = federate_expositions(&[("n\"0".to_owned(), Some(part))]);
        lint_exposition(&text).unwrap();
        assert!(text.contains("g{instance=\"n\\\"0\"} 1\n"));
        assert!(!text.contains("not a sample"));
    }

    #[test]
    fn lint_accepts_mixed_scrape_and_rejects_violations() {
        let mut reg = MetricsRegistry::new();
        reg.counter("c_total", "C.", 1);
        reg.gauge_with("g", "G.", &[("q", "a\"b\\c\nd")], 1.5);
        reg.histogram("h", "H.", &[5], &[0, 2], 11, 2);
        lint_exposition(&reg.render()).unwrap();

        // Duplicate TYPE.
        let bad = "# TYPE x counter\n# TYPE x counter\nx 1\n";
        assert!(lint_exposition(bad).unwrap_err().contains("duplicate TYPE"));
        // Sample before its family header.
        let bad = "x 1\n# TYPE x counter\n";
        assert!(lint_exposition(bad).unwrap_err().contains("undeclared"));
        // Non-cumulative buckets.
        let bad = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(lint_exposition(bad).unwrap_err().contains("not cumulative"));
        // +Inf bucket disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(lint_exposition(bad).unwrap_err().contains("!= count"));
        // Unparseable garbage.
        assert!(lint_exposition("1bad{ 3\n").is_err());
    }
}

//! Prometheus text exposition for the counters the cluster already keeps.
//!
//! The subsystems (transport, query scheduler, membership, subscriptions)
//! all count things — into `Stats` named counters, detector peer states,
//! node-level gauges — but until now those numbers were only reachable
//! from Rust. [`MetricsRegistry`] is the rendezvous point: the daemon
//! snapshots every layer into one registry per `/metrics` scrape and
//! renders it in the Prometheus text format (version 0.0.4), so any
//! standard scraper can watch a live cluster.
//!
//! The registry is a plain value, not a global: it holds one scrape's
//! samples, insertion-ordered, grouped into families (`# HELP`/`# TYPE`
//! emitted once per family even when samples carry different labels).

use std::fmt::Write as _;

/// Prometheus metric kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

struct Sample {
    labels: Vec<(String, String)>,
    value: f64,
}

struct Family {
    name: String,
    help: &'static str,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// One scrape's worth of metrics, renderable as Prometheus text.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records a counter sample.
    pub fn counter(&mut self, name: &str, help: &'static str, value: u64) {
        self.sample(name, help, MetricKind::Counter, &[], value as f64);
    }

    /// Records a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &'static str, value: f64) {
        self.sample(name, help, MetricKind::Gauge, &[], value);
    }

    /// Records a labelled counter sample (same name may be recorded many
    /// times with different labels; they join one family).
    pub fn counter_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        self.sample(name, help, MetricKind::Counter, labels, value as f64);
    }

    /// Records a labelled gauge sample.
    pub fn gauge_with(
        &mut self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.sample(name, help, MetricKind::Gauge, labels, value);
    }

    fn sample(
        &mut self,
        name: &str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let sample = Sample {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            value,
        };
        if let Some(f) = self.families.iter_mut().find(|f| f.name == name) {
            f.samples.push(sample);
            return;
        }
        self.families.push(Family {
            name: name.to_owned(),
            help,
            kind,
            samples: vec![sample],
        });
    }

    /// How many samples the registry holds (tests, sanity gates).
    pub fn sample_count(&self) -> usize {
        self.families.iter().map(|f| f.samples.len()).sum()
    }

    /// Renders the Prometheus text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            for s in &f.samples {
                out.push_str(&f.name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                    }
                    out.push('}');
                }
                // Prometheus accepts integer or float renderings; keep
                // integers exact (counters are u64-sourced).
                if s.value.fract() == 0.0 && s.value.abs() < 9e15 {
                    let _ = writeln!(out, " {}", s.value as i64);
                } else {
                    let _ = writeln!(out, " {}", s.value);
                }
            }
        }
        out
    }
}

/// Label-value escaping per the exposition format: backslash, quote,
/// newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples() {
        let mut reg = MetricsRegistry::new();
        reg.counter("moara_messages_sent_total", "Messages sent.", 42);
        reg.gauge("moara_members_alive", "Members believed alive.", 3.0);
        let text = reg.render();
        assert!(text.contains("# HELP moara_messages_sent_total Messages sent.\n"));
        assert!(text.contains("# TYPE moara_messages_sent_total counter\n"));
        assert!(text.contains("moara_messages_sent_total 42\n"));
        assert!(text.contains("# TYPE moara_members_alive gauge\n"));
        assert!(text.contains("moara_members_alive 3\n"));
    }

    #[test]
    fn labelled_samples_share_one_family_header() {
        let mut reg = MetricsRegistry::new();
        reg.counter_with(
            "moara_http_requests_total",
            "Requests.",
            &[("endpoint", "query")],
            7,
        );
        reg.counter_with(
            "moara_http_requests_total",
            "Requests.",
            &[("endpoint", "watch")],
            2,
        );
        let text = reg.render();
        assert_eq!(text.matches("# TYPE moara_http_requests_total").count(), 1);
        assert!(text.contains("moara_http_requests_total{endpoint=\"query\"} 7\n"));
        assert!(text.contains("moara_http_requests_total{endpoint=\"watch\"} 2\n"));
    }

    #[test]
    fn label_values_escape() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_with("g", "G.", &[("q", "a\"b\\c\nd")], 1.0);
        assert!(reg.render().contains("g{q=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn floats_render_as_floats() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g", "G.", 0.5);
        assert!(reg.render().contains("g 0.5\n"));
    }
}

//! The gateway server: accept loop, worker pool, routing, SSE streaming.
//!
//! Threading model (mirrors the daemon's control plane): the acceptor
//! thread hands sockets to a fixed worker pool; each worker parses HTTP,
//! translates it into a [`GwRequest`], and pushes a [`GwJob`] through an
//! MPSC channel into the daemon's event loop — protocol state is only
//! ever touched by that single loop. One-shot endpoints block on the
//! reply channel; `/v1/watch` flips the connection into a Server-Sent
//! Events stream that forwards [`GwReply::Update`] frames until either
//! side hangs up. A long-lived SSE stream occupies its worker for its
//! whole life, so at most half the pool may hold streams — further
//! watch requests answer 503 immediately, keeping the other half free
//! for one-shots (`/healthz` must stay reachable under watcher
//! overload). The acceptor's hand-off queue is bounded too: when it
//! fills, new connections are closed at accept instead of queueing fds
//! without limit. Writes carry a timeout so a client that stops
//! *reading* cannot pin a worker in `write_all` forever.
//!
//! Hang-up plumbing: the worker drops its reply receiver when the client
//! disconnects; the daemon notices on its next send (updates or the
//! periodic keepalive probe) and cancels the standing subscription, so
//! peers GC the watch's in-network state promptly.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::QueryCache;
use crate::http::{read_request, HttpError, HttpRequest, HttpResponse};
use crate::json;

/// How a watch's updates surface to the SSE client (string-typed twin of
/// the subscription plane's `DeliveryPolicy`; the daemon converts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WatchPolicy {
    /// Every change to the merged result (the default).
    OnChange,
    /// A snapshot every N milliseconds, changed or not (N must be
    /// positive; enforced at parse time).
    PeriodMs(u64),
    /// Threshold-crossing alerts around the value.
    Threshold(f64),
}

/// What the HTTP layer asks the daemon to do.
#[derive(Clone, Debug, PartialEq)]
pub enum GwRequest {
    /// `GET /v1/query?q=…` — run a composite query.
    Query {
        /// Query text (either syntax the parser accepts).
        q: String,
    },
    /// `POST /v1/attrs` — set local attributes. Values are raw strings;
    /// the daemon applies its `parse_value` typing rules.
    SetAttrs {
        /// Name/value pairs in body order.
        attrs: Vec<(String, String)>,
    },
    /// `GET /v1/watch?q=…` — install a standing query and stream deltas.
    Watch {
        /// Query text.
        q: String,
        /// Delivery policy.
        policy: WatchPolicy,
        /// Subscription lease in milliseconds (daemon-renewed while the
        /// socket stays open).
        lease_ms: u64,
    },
    /// `GET /metrics` — snapshot every subsystem into Prometheus text.
    Metrics,
    /// `GET /healthz` — prove the daemon event loop is serving.
    Health,
    /// `GET /v1/traces` — recent sampled traces on this daemon.
    Traces {
        /// Maximum summaries to return.
        limit: usize,
    },
    /// `GET /v1/trace/{id}` — one trace's span tree, merged across the
    /// cluster by the daemon (scatter-gather over control sockets). The
    /// id stays a raw string here: the daemon owns trace-id parsing, and
    /// this crate stays dependency-free.
    Trace {
        /// Trace id as it appeared in the path (hex or decimal).
        id: String,
    },
}

/// What the daemon answers.
#[derive(Clone, Debug, PartialEq)]
pub enum GwReply {
    /// Query finished.
    Answer {
        /// Rendered aggregate.
        result: String,
        /// False if some branch timed out or failed.
        complete: bool,
        /// `X-Moara-Cache` value (`miss` / `coalesced`); `None` when the
        /// result cache is disabled. (`hit` answers never round-trip to
        /// the daemon — workers serve them from [`QueryCache`] directly.)
        cache: Option<&'static str>,
    },
    /// Attributes applied.
    AttrsSet {
        /// How many pairs were set.
        count: usize,
    },
    /// Rendered `/metrics` exposition.
    Metrics {
        /// Prometheus text.
        text: String,
    },
    /// Liveness report.
    Health {
        /// This daemon's node id.
        node: u32,
        /// Members known (alive or dead).
        members: u32,
        /// Members believed alive.
        alive: u32,
    },
    /// One standing-query update (streamed; many per watch).
    Update {
        /// Rendered merged result.
        result: String,
        /// True for the watch's first update.
        initial: bool,
        /// False while some pinned tree has not reported yet.
        complete: bool,
    },
    /// Pre-rendered JSON (trace endpoints: the daemon builds the body).
    Json {
        /// The response body, already valid JSON.
        body: String,
    },
    /// Liveness probe for quiescent watch streams: rendered as an SSE
    /// comment, exists so a hung-up client is detected without a delta.
    Keepalive,
    /// Request failed (status is an HTTP code).
    Error {
        /// HTTP status to answer with.
        status: u16,
        /// Safe-to-echo description.
        msg: String,
    },
}

/// One in-flight gateway request: the parsed request plus the channel the
/// worker blocks on (or streams from) for replies.
pub struct GwJob {
    /// What to do.
    pub req: GwRequest,
    /// Where replies go. For watches the daemon holds this sender for
    /// the life of the subscription.
    pub reply: Sender<GwReply>,
}

/// Bucket upper bounds (microseconds) for the gateway's request-latency
/// histograms. Log-ish spacing from sub-millisecond one-shots out to the
/// engine's front timeout; the final implicit bucket is `+Inf`.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A lock-free fixed-bucket histogram over [`LATENCY_BOUNDS_US`].
/// Workers `observe` concurrently; the daemon's scrape thread snapshots
/// cumulative counts in the exact shape `MetricsRegistry::histogram_with`
/// wants. Tearing between buckets/sum under concurrent observes is
/// tolerated — Prometheus histograms are sampled, not transactional.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one observation in microseconds.
    pub fn observe(&self, us: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// `(cumulative bucket counts incl. +Inf, sum_us, count)` — the
    /// arguments `MetricsRegistry::histogram_with` takes verbatim.
    pub fn snapshot(&self) -> (Vec<u64>, u64, u64) {
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for b in &self.buckets {
            running += b.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        (
            cumulative,
            self.sum.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// Request-latency histograms, one per endpoint class. Watch streams
/// observe their whole stream lifetime (headers to hang-up), one-shots
/// the read-to-written span.
#[derive(Debug, Default)]
pub struct EndpointLatency {
    /// `/v1/query`.
    pub query: AtomicHistogram,
    /// `/v1/attrs`.
    pub attrs: AtomicHistogram,
    /// `/v1/watch` (stream lifetime).
    pub watch: AtomicHistogram,
    /// `/metrics`.
    pub metrics: AtomicHistogram,
    /// `/healthz`.
    pub health: AtomicHistogram,
    /// `/v1/traces` and `/v1/trace/{id}`.
    pub traces: AtomicHistogram,
    /// Everything else (404s, OPTIONS, parse failures).
    pub other: AtomicHistogram,
}

impl EndpointLatency {
    /// The histogram for an endpoint class label.
    pub fn of(&self, class: &str) -> &AtomicHistogram {
        match class {
            "query" => &self.query,
            "attrs" => &self.attrs,
            "watch" => &self.watch,
            "metrics" => &self.metrics,
            "health" => &self.health,
            "traces" => &self.traces,
            _ => &self.other,
        }
    }

    /// All classes, label first — iteration order is the scrape order.
    pub fn families(&self) -> [(&'static str, &AtomicHistogram); 7] {
        [
            ("query", &self.query),
            ("attrs", &self.attrs),
            ("watch", &self.watch),
            ("metrics", &self.metrics),
            ("health", &self.health),
            ("traces", &self.traces),
            ("other", &self.other),
        ]
    }
}

/// Live counters the gateway keeps about itself (lock-free; scraped into
/// `/metrics` alongside the subsystem counters).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Requests accepted, by coarse endpoint class.
    pub queries: AtomicU64,
    /// `POST /v1/attrs` requests.
    pub attr_sets: AtomicU64,
    /// Watches opened (SSE streams started).
    pub watches_opened: AtomicU64,
    /// SSE data frames written.
    pub sse_frames: AtomicU64,
    /// `/metrics` scrapes served.
    pub scrapes: AtomicU64,
    /// `/healthz` probes served.
    pub health_checks: AtomicU64,
    /// Trace endpoint requests (`/v1/traces`, `/v1/trace/{id}`).
    pub traces: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// SSE streams currently holding a pool slot (reserved at routing
    /// time, released when the stream ends — so mid-setup streams
    /// count, and the half-pool cap cannot be raced past).
    pub open_streams: AtomicI64,
    /// Request latency by endpoint class.
    pub latency: EndpointLatency,
}

/// Where access-log lines go: the daemon passes a sink (stderr, a file)
/// and the gateway calls it once per finished request with one JSON line
/// (no trailing newline). Must be cheap and non-blocking-ish: workers
/// call it inline.
pub type AccessLogSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Renders one access-log line as a single JSON object. Pure — the
/// caller supplies the timestamp — so tests can assert the exact line.
pub fn access_log_line(
    ts_ms: u64,
    method: &str,
    path: &str,
    status: u16,
    duration_us: u64,
    bytes: usize,
    peer: &str,
) -> String {
    format!(
        "{{\"ts_ms\":{ts_ms},\"method\":{},\"path\":{},\"status\":{status},\
         \"duration_us\":{duration_us},\"bytes\":{bytes},\"peer\":{}}}",
        json::escape(method),
        json::escape(path),
        json::escape(peer)
    )
}

/// A running gateway: address, stats, and the stop switch.
pub struct GatewayHandle {
    addr: SocketAddr,
    stats: Arc<GatewayStats>,
    stop: Arc<AtomicBool>,
}

impl GatewayHandle {
    /// Where the gateway listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's own counters.
    pub fn stats(&self) -> &Arc<GatewayStats> {
        &self.stats
    }

    /// Stops accepting new connections (in-flight requests finish; open
    /// SSE streams end when the daemon drops their reply senders).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor blocked in accept() so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(50));
    }
}

/// Spawns the accept loop and `workers` connection workers on
/// `listener`. Jobs flow into `tx`; the daemon's event loop must drain
/// them (see `Daemon::step`).
///
/// # Panics
///
/// Panics if the listener's local address cannot be read or threads
/// cannot spawn — both are boot-time process failures.
pub fn spawn_gateway(listener: TcpListener, tx: Sender<GwJob>, workers: usize) -> GatewayHandle {
    spawn_gateway_opts(listener, tx, workers, None, None)
}

/// [`spawn_gateway`] with options: an optional access-log sink that
/// receives one JSON line per finished request (and per ended SSE
/// stream), and the optional shared result cache — when present,
/// workers answer `/v1/query` hits from it inline, never entering the
/// daemon's event loop (the cache's mutating side stays with the
/// daemon, which shares the same `Arc`).
pub fn spawn_gateway_opts(
    listener: TcpListener,
    tx: Sender<GwJob>,
    workers: usize,
    access_log: Option<AccessLogSink>,
    cache: Option<Arc<QueryCache>>,
) -> GatewayHandle {
    let addr = listener.local_addr().expect("gateway listener addr");
    let stats = Arc::new(GatewayStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);
    // Half the pool may hold SSE streams; the rest stays free for
    // one-shot requests, so a burst of watchers can never starve
    // `/healthz` (a load balancer that cannot reach the health endpoint
    // would pull a healthy daemon out of rotation).
    let max_streams = (workers / 2).max(1) as i64;
    // Bounded hand-off: when every worker is busy and the backlog is
    // full, new connections are dropped at accept (the client sees a
    // reset immediately) instead of queueing fds and latency without
    // limit.
    let (conn_tx, conn_rx) = std::sync::mpsc::sync_channel::<TcpStream>(workers * 2);
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    for i in 0..workers {
        let conn_rx = Arc::clone(&conn_rx);
        let tx = tx.clone();
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let access_log = access_log.clone();
        let cache = cache.clone();
        std::thread::Builder::new()
            .name(format!("moara-gw-worker-{i}"))
            .spawn(move || loop {
                let conn = match conn_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => return,
                };
                let Ok(stream) = conn else { return };
                serve_connection(stream, &tx, &stats, &stop, max_streams, &access_log, &cache);
            })
            .expect("spawn gateway worker");
    }

    {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("moara-gw-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = stream.set_nodelay(true);
                    match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        // Backlog full: drop (= close) the connection.
                        Err(std::sync::mpsc::TrySendError::Full(_)) => {}
                        Err(std::sync::mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
            })
            .expect("spawn gateway acceptor");
    }

    GatewayHandle { addr, stats, stop }
}

/// How long a one-shot endpoint waits for the daemon's answer (queries
/// are bounded by the engine's front timeout, well under this).
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// How long one socket write may stall before the connection is declared
/// dead. Without this, a client that stops *reading* while keeping the
/// socket open would block its worker in `write_all` forever once the
/// TCP send buffer fills.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a keep-alive connection may sit idle (no request bytes)
/// before its worker closes it. Without this, a handful of clients
/// holding idle keep-alive connections would pin every pool worker and
/// starve `/healthz` — the non-streaming twin of the SSE cap.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Times one finished request into the per-endpoint histogram and, when
/// a sink is configured, emits one access-log line.
#[allow(clippy::too_many_arguments)]
fn finish_request(
    stats: &GatewayStats,
    access_log: &Option<AccessLogSink>,
    class: &'static str,
    method: &str,
    path: &str,
    status: u16,
    started: std::time::Instant,
    bytes: usize,
    peer: &str,
) {
    let duration_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    stats.latency.of(class).observe(duration_us);
    if let Some(sink) = access_log {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        sink(&access_log_line(
            ts_ms,
            method,
            path,
            status,
            duration_us,
            bytes,
            peer,
        ));
    }
}

/// The latency/access-log endpoint class of a routed request.
fn endpoint_class(req: &GwRequest) -> &'static str {
    match req {
        GwRequest::Query { .. } => "query",
        GwRequest::SetAttrs { .. } => "attrs",
        GwRequest::Watch { .. } => "watch",
        GwRequest::Metrics => "metrics",
        GwRequest::Health => "health",
        GwRequest::Traces { .. } | GwRequest::Trace { .. } => "traces",
    }
}

/// Serves one connection: requests in, responses out, until the client
/// hangs up, sends `Connection: close`, goes idle past [`IDLE_TIMEOUT`],
/// or upgrades to an SSE stream.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    tx: &Sender<GwJob>,
    stats: &GatewayStats,
    stop: &AtomicBool,
    max_streams: i64,
    access_log: &Option<AccessLogSink>,
    cache: &Option<Arc<QueryCache>>,
) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "-".into());
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Closed) => return,
            // Includes the idle timeout (WouldBlock/TimedOut): close and
            // free the worker.
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Bad(why)) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let response = HttpResponse::error(400, why);
                finish_request(
                    stats,
                    access_log,
                    "other",
                    "-",
                    "-",
                    response.status,
                    std::time::Instant::now(),
                    response.body.len(),
                    &peer,
                );
                let _ = response.write_to(&mut writer, false);
                return;
            }
        };
        let started = std::time::Instant::now();
        if stop.load(Ordering::SeqCst) {
            let _ = HttpResponse::error(503, "shutting down").write_to(&mut writer, false);
            return;
        }
        let keep_alive = req.keep_alive;
        // OPTIONS is answered at this layer: it exists for probes and
        // CORS-less tooling, not the daemon.
        if req.method == "OPTIONS" {
            let response = HttpResponse::text(200, "text/plain; charset=utf-8", "")
                .with_allow(ALLOWED_METHODS);
            finish_request(
                stats,
                access_log,
                "other",
                &req.method,
                &req.path,
                response.status,
                started,
                0,
                &peer,
            );
            if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                return;
            }
            continue;
        }
        // HEAD is GET with the body suppressed (RFC 9110): route it like
        // GET, write headers only. Load-balancer health checks commonly
        // probe with HEAD.
        let head_only = req.method == "HEAD";
        match route(&req) {
            Ok(GwRequest::Watch {
                q,
                policy,
                lease_ms,
            }) => {
                // Atomic slot reservation (increment-then-check): a
                // burst of simultaneous watch requests must not all
                // slip past a yet-unincremented gauge and oversubscribe
                // the pool.
                if stats.open_streams.fetch_add(1, Ordering::SeqCst) >= max_streams {
                    stats.open_streams.fetch_sub(1, Ordering::SeqCst);
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let response = HttpResponse::error(503, "too many watch streams");
                    finish_request(
                        stats,
                        access_log,
                        "watch",
                        &req.method,
                        &req.path,
                        response.status,
                        started,
                        response.body.len(),
                        &peer,
                    );
                    let _ = response.write_to(&mut writer, false);
                    return;
                }
                stats.watches_opened.fetch_add(1, Ordering::Relaxed);
                serve_watch(
                    &mut writer,
                    &mut reader,
                    tx,
                    stats,
                    GwRequest::Watch {
                        q,
                        policy,
                        lease_ms,
                    },
                );
                stats.open_streams.fetch_sub(1, Ordering::SeqCst);
                // One line per stream, at stream end: duration is the
                // stream's whole lifetime, bytes are not tracked frame
                // by frame.
                finish_request(
                    stats,
                    access_log,
                    "watch",
                    &req.method,
                    &req.path,
                    200,
                    started,
                    0,
                    &peer,
                );
                return; // SSE streams never keep-alive into a next request
            }
            Ok(gw_req) => {
                let counter = match &gw_req {
                    GwRequest::Query { .. } => &stats.queries,
                    GwRequest::SetAttrs { .. } => &stats.attr_sets,
                    GwRequest::Metrics => &stats.scrapes,
                    GwRequest::Health => &stats.health_checks,
                    GwRequest::Traces { .. } | GwRequest::Trace { .. } => &stats.traces,
                    GwRequest::Watch { .. } => unreachable!("handled above"),
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let class = endpoint_class(&gw_req);
                // The materialized-view fast path: a fresh standing
                // result answers right here in the worker thread — the
                // daemon's event loop (and its transport-poll cadence)
                // is never entered, which is what makes hits
                // sub-millisecond.
                let cached = match (&gw_req, cache) {
                    (GwRequest::Query { q }, Some(c)) => c.lookup(q, std::time::Instant::now()),
                    _ => None,
                };
                let response = match cached {
                    Some((result, complete)) => {
                        HttpResponse::json(200, answer_body(&result, complete)).with_cache("hit")
                    }
                    None => one_shot(tx, gw_req),
                };
                if response.status >= 400 {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                let body_bytes = if head_only { 0 } else { response.body.len() };
                finish_request(
                    stats,
                    access_log,
                    class,
                    &req.method,
                    &req.path,
                    response.status,
                    started,
                    body_bytes,
                    &peer,
                );
                let sent = if head_only {
                    response.write_head_to(&mut writer, keep_alive)
                } else {
                    response.write_to(&mut writer, keep_alive)
                };
                if sent.is_err() || !keep_alive {
                    return;
                }
            }
            Err(response) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let body_bytes = if head_only { 0 } else { response.body.len() };
                finish_request(
                    stats,
                    access_log,
                    "other",
                    &req.method,
                    &req.path,
                    response.status,
                    started,
                    body_bytes,
                    &peer,
                );
                let sent = if head_only {
                    response.write_head_to(&mut writer, keep_alive)
                } else {
                    response.write_to(&mut writer, keep_alive)
                };
                if sent.is_err() || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// What the gateway speaks, for `Allow` headers.
const ALLOWED_METHODS: &str = "GET, HEAD, POST, OPTIONS";

/// Maps a parsed HTTP request onto the gateway API.
fn route(req: &HttpRequest) -> Result<GwRequest, HttpResponse> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET" | "HEAD", "/v1/query") => {
            let q = req
                .param("q")
                .ok_or_else(|| HttpResponse::error(400, "missing query parameter q"))?;
            Ok(GwRequest::Query { q: q.to_owned() })
        }
        ("POST", "/v1/attrs") => {
            let body = std::str::from_utf8(&req.body)
                .map_err(|_| HttpResponse::error(400, "body is not UTF-8"))?;
            let attrs = parse_attr_body(body).map_err(|e| HttpResponse::error(400, e))?;
            if attrs.is_empty() {
                return Err(HttpResponse::error(400, "no attributes in body"));
            }
            Ok(GwRequest::SetAttrs { attrs })
        }
        ("GET", "/v1/watch") => {
            let q = req
                .param("q")
                .ok_or_else(|| HttpResponse::error(400, "missing query parameter q"))?;
            let policy = parse_policy(req.param("policy").unwrap_or("on-change"))
                .map_err(|e| HttpResponse::error(400, e))?;
            let lease_ms = match req.param("lease_ms") {
                None => 30_000,
                Some(v) => v
                    .parse()
                    .map_err(|_| HttpResponse::error(400, "lease_ms must be an integer"))?,
            };
            Ok(GwRequest::Watch {
                q: q.to_owned(),
                policy,
                lease_ms,
            })
        }
        // HEAD cannot open a stream; point the prober at GET.
        ("HEAD", "/v1/watch") => {
            Err(HttpResponse::error(405, "watch streams require GET").with_allow("GET"))
        }
        ("GET" | "HEAD", "/metrics") => Ok(GwRequest::Metrics),
        ("GET" | "HEAD", "/healthz") => Ok(GwRequest::Health),
        ("GET" | "HEAD", "/v1/traces") => {
            let limit = match req.param("limit") {
                None => 50,
                Some(v) => v
                    .parse()
                    .map_err(|_| HttpResponse::error(400, "limit must be an integer"))?,
            };
            Ok(GwRequest::Traces { limit })
        }
        ("GET" | "HEAD", path) if path.starts_with("/v1/trace/") => {
            let id = &path["/v1/trace/".len()..];
            if id.is_empty() {
                return Err(HttpResponse::error(400, "missing trace id"));
            }
            Ok(GwRequest::Trace { id: id.to_owned() })
        }
        ("GET" | "HEAD" | "POST", _) => Err(HttpResponse::error(404, "no such endpoint")),
        _ => Err(HttpResponse::error(405, "method not allowed").with_allow(ALLOWED_METHODS)),
    }
}

/// Parses the `policy` query parameter: `on-change`, `period:MILLIS`, or
/// `threshold:VALUE`.
fn parse_policy(s: &str) -> Result<WatchPolicy, &'static str> {
    if s == "on-change" {
        return Ok(WatchPolicy::OnChange);
    }
    if let Some(ms) = s.strip_prefix("period:") {
        let ms: u64 = ms.parse().map_err(|_| "period wants period:MILLIS")?;
        if ms == 0 {
            return Err("period must be positive");
        }
        return Ok(WatchPolicy::PeriodMs(ms));
    }
    if let Some(v) = s.strip_prefix("threshold:") {
        let v: f64 = v.parse().map_err(|_| "threshold wants threshold:VALUE")?;
        if v.is_nan() {
            return Err("threshold must not be NaN");
        }
        return Ok(WatchPolicy::Threshold(v));
    }
    Err("policy must be on-change, period:MILLIS, or threshold:VALUE")
}

/// Parses a `/v1/attrs` body: form pairs (`A=1&B=2`) or the `--attrs`
/// comma syntax (`A=1,B=2`).
///
/// Precedence: a body containing `&` is always form data. Otherwise the
/// comma syntax applies only when *every* comma-separated piece is a
/// `k=v` pair; a body like `note=a,b` (one pair whose value holds a
/// comma) falls back to a single pair. The one genuinely ambiguous
/// spelling, `A=1,B=2` with a literal-comma intent, needs the comma
/// encoded (`%2C`) or form syntax.
fn parse_attr_body(body: &str) -> Result<Vec<(String, String)>, &'static str> {
    let body = body.trim();
    let decode = |k: &str, v: &str| -> Result<(String, String), &'static str> {
        let k = crate::http::percent_decode(k);
        if k.is_empty() {
            return Err("attribute has an empty name");
        }
        Ok((k, crate::http::percent_decode(v)))
    };
    let split_pairs = |sep: char| -> Option<Vec<(&str, &str)>> {
        body.split(sep)
            .filter(|p| !p.is_empty())
            .map(|part| part.split_once('='))
            .collect()
    };
    let pairs = if body.contains('&') {
        split_pairs('&').ok_or("attribute is not k=v")?
    } else if let Some(pairs) = split_pairs(',') {
        pairs
    } else {
        // Not clean comma syntax: a single pair whose value carries
        // literal commas.
        vec![body.split_once('=').ok_or("attribute is not k=v")?]
    };
    pairs.into_iter().map(|(k, v)| decode(k, v)).collect()
}

/// The `/v1/query` answer body (shared by the daemon round-trip path and
/// the worker-side cache-hit path, so both render byte-identically).
fn answer_body(result: &str, complete: bool) -> String {
    format!(
        "{{\"result\":{},\"complete\":{complete}}}\n",
        json::escape(result)
    )
}

/// Sends one job and renders its single reply.
fn one_shot(tx: &Sender<GwJob>, req: GwRequest) -> HttpResponse {
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    if tx
        .send(GwJob {
            req,
            reply: reply_tx,
        })
        .is_err()
    {
        return HttpResponse::error(503, "daemon shut down");
    }
    match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(reply) => render_reply(reply),
        Err(_) => HttpResponse::error(408, "daemon did not answer in time"),
    }
}

fn render_reply(reply: GwReply) -> HttpResponse {
    match reply {
        GwReply::Answer {
            result,
            complete,
            cache,
        } => {
            let resp = HttpResponse::json(200, answer_body(&result, complete));
            match cache {
                Some(c) => resp.with_cache(c),
                None => resp,
            }
        }
        GwReply::AttrsSet { count } => {
            HttpResponse::json(200, format!("{{\"ok\":true,\"set\":{count}}}\n"))
        }
        GwReply::Metrics { text } => {
            HttpResponse::text(200, "text/plain; version=0.0.4; charset=utf-8", text)
        }
        GwReply::Health {
            node,
            members,
            alive,
        } => HttpResponse::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"node\":{node},\"members\":{members},\"alive\":{alive}}}\n"
            ),
        ),
        GwReply::Json { body } => HttpResponse::json(200, body),
        GwReply::Error { status, msg } => HttpResponse::error(status, &msg),
        GwReply::Update { .. } | GwReply::Keepalive => {
            HttpResponse::error(500, "streaming reply to one-shot request")
        }
    }
}

/// Renders one update as an SSE frame (`data: {json}\n\n`).
pub fn sse_frame(result: &str, initial: bool, complete: bool) -> String {
    format!(
        "data: {{\"result\":{},\"initial\":{initial},\"complete\":{complete}}}\n\n",
        json::escape(result)
    )
}

/// Streams a watch: installs the standing query, writes SSE headers, and
/// forwards updates until hang-up (either direction).
fn serve_watch(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    tx: &Sender<GwJob>,
    stats: &GatewayStats,
    req: GwRequest,
) {
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    if tx
        .send(GwJob {
            req,
            reply: reply_tx,
        })
        .is_err()
    {
        let _ = HttpResponse::error(503, "daemon shut down").write_to(writer, false);
        return;
    }
    // The daemon answers Error before the first Update on a parse
    // failure; wait for the first reply to decide the status line.
    let first = match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(r) => r,
        Err(_) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            let _ =
                HttpResponse::error(408, "daemon did not answer in time").write_to(writer, false);
            return;
        }
    };
    if let GwReply::Error { status, msg } = first {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        let _ = HttpResponse::error(status, &msg).write_to(writer, false);
        return;
    }
    let header = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if writer.write_all(header.as_bytes()).is_err() || writer.flush().is_err() {
        return;
    }
    let mut forward = |reply: GwReply| -> bool {
        let frame = match reply {
            GwReply::Update {
                result,
                initial,
                complete,
            } => {
                stats.sse_frames.fetch_add(1, Ordering::Relaxed);
                sse_frame(&result, initial, complete)
            }
            GwReply::Keepalive => ": keepalive\n\n".to_owned(),
            GwReply::Error { msg, .. } => {
                let _ = writer.write_all(
                    format!("event: error\ndata: {}\n\n", json::escape(&msg)).as_bytes(),
                );
                let _ = writer.flush();
                return false;
            }
            _ => return true, // one-shot replies cannot appear mid-stream
        };
        writer.write_all(frame.as_bytes()).is_ok() && writer.flush().is_ok()
    };
    let mut alive = forward(first);
    while alive {
        match reply_rx.recv_timeout(Duration::from_secs(1)) {
            Ok(reply) => alive = forward(reply),
            Err(RecvTimeoutError::Timeout) => {
                // A quiescent watch emits nothing for long stretches;
                // probe the socket so a hung-up client releases the
                // worker (and, by dropping reply_rx, the subscription).
                alive = crate::http::socket_alive(reader.get_mut());
            }
            Err(RecvTimeoutError::Disconnected) => break, // daemon cancelled
        }
    }
    // Dropping reply_rx here is the hang-up signal the daemon observes;
    // the caller releases the open-streams reservation.
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead as _, Read as _};

    /// Boots a gateway backed by a scripted responder thread.
    fn test_gateway(
        respond: impl Fn(GwRequest, Sender<GwReply>) + Send + 'static,
    ) -> GatewayHandle {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<GwJob>();
        std::thread::spawn(move || {
            for job in rx {
                respond(job.req, job.reply);
            }
        });
        spawn_gateway(listener, tx, 2)
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn query_roundtrips_as_json() {
        let gw = test_gateway(|req, reply| {
            assert_eq!(
                req,
                GwRequest::Query {
                    q: "SELECT count(*) WHERE A = 1".into()
                }
            );
            let _ = reply.send(GwReply::Answer {
                result: "2".into(),
                complete: true,
                cache: None,
            });
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=SELECT%20count(*)%20WHERE%20A%20%3D%201 HTTP/1.1\r\n\
             Connection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(
            resp.contains("{\"result\":\"2\",\"complete\":true}"),
            "{resp}"
        );
        assert!(!resp.contains("X-Moara-Cache"), "no cache, no header");
        assert_eq!(gw.stats().queries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cache_markers_render_as_response_headers() {
        let gw = test_gateway(|_req, reply| {
            let _ = reply.send(GwReply::Answer {
                result: "2".into(),
                complete: true,
                cache: Some("coalesced"),
            });
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("X-Moara-Cache: coalesced\r\n"), "{resp}");
    }

    /// A warm cache answers in the worker thread: the daemon side sees
    /// no job at all, and the response carries `X-Moara-Cache: hit`.
    #[test]
    fn cache_hits_are_served_without_entering_the_daemon() {
        use crate::cache::{CacheConfig, QueryCache};
        let cache = Arc::new(QueryCache::new(CacheConfig {
            promote_after: 1,
            ..CacheConfig::default()
        }));
        // Warm: first lookup promotes, then the "daemon" installs and
        // syncs the standing result.
        assert!(cache
            .lookup("SELECT count(*)", std::time::Instant::now())
            .is_none());
        let (key, _) = cache.take_pending_promotions().remove(0);
        assert!(cache.promoted(&key, 1));
        cache.on_update(1, "42".into(), true);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<GwJob>();
        let daemon_jobs = Arc::new(AtomicU64::new(0));
        let daemon_jobs2 = Arc::clone(&daemon_jobs);
        std::thread::spawn(move || {
            for job in rx {
                daemon_jobs2.fetch_add(1, Ordering::SeqCst);
                let _ = job.reply.send(GwReply::Answer {
                    result: "slow".into(),
                    complete: true,
                    cache: Some("miss"),
                });
            }
        });
        let gw = spawn_gateway_opts(listener, tx, 2, None, Some(Arc::clone(&cache)));
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=SELECT%20count(*) HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("X-Moara-Cache: hit\r\n"), "{resp}");
        assert!(
            resp.contains("{\"result\":\"42\",\"complete\":true}"),
            "{resp}"
        );
        assert_eq!(daemon_jobs.load(Ordering::SeqCst), 0, "no daemon trip");
        assert_eq!(cache.hits(), 1);
        // A different query misses straight through to the daemon.
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=other HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("X-Moara-Cache: miss\r\n"), "{resp}");
        assert!(resp.contains("\"result\":\"slow\""), "{resp}");
        assert_eq!(daemon_jobs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn attrs_post_parses_both_body_styles() {
        let gw = test_gateway(|req, reply| match req {
            GwRequest::SetAttrs { attrs } => {
                let n = attrs.len();
                assert!(attrs.iter().any(|(k, v)| k == "A" && v == "1"));
                let _ = reply.send(GwReply::AttrsSet { count: n });
            }
            other => panic!("unexpected {other:?}"),
        });
        for body in ["A=1&B=two", "A=1,B=two"] {
            let resp = roundtrip(
                gw.addr(),
                &format!(
                    "POST /v1/attrs HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
            );
            assert!(resp.contains("{\"ok\":true,\"set\":2}"), "{resp}");
        }
    }

    #[test]
    fn watch_streams_sse_frames_until_daemon_drops() {
        let gw = test_gateway(|req, reply| {
            match req {
                GwRequest::Watch {
                    policy: WatchPolicy::PeriodMs(1500),
                    lease_ms: 5000,
                    ..
                } => {}
                other => panic!("unexpected {other:?}"),
            }
            let _ = reply.send(GwReply::Update {
                result: "1".into(),
                initial: true,
                complete: true,
            });
            let _ = reply.send(GwReply::Keepalive);
            let _ = reply.send(GwReply::Update {
                result: "2".into(),
                initial: false,
                complete: true,
            });
            // reply dropped here: stream must end.
        });
        let mut s = TcpStream::connect(gw.addr()).unwrap();
        s.write_all(
            b"GET /v1/watch?q=SELECT%20count(*)&policy=period:1500&lease_ms=5000 HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(s);
        let mut header = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            header.push_str(&line);
            if line == "\r\n" {
                break;
            }
        }
        assert!(header.contains("text/event-stream"), "{header}");
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        assert!(
            rest.contains("data: {\"result\":\"1\",\"initial\":true,\"complete\":true}\n\n"),
            "{rest}"
        );
        assert!(rest.contains(": keepalive\n\n"), "{rest}");
        assert!(rest.contains("data: {\"result\":\"2\""), "{rest}");
        assert_eq!(gw.stats().sse_frames.load(Ordering::Relaxed), 2);
        assert_eq!(gw.stats().open_streams.load(Ordering::Relaxed), 0);
    }

    /// Half the pool is reserved for one-shot requests: with 2 workers
    /// the stream cap is 1, so a second concurrent watch answers 503
    /// fast instead of queueing behind a worker that will never free.
    #[test]
    fn watch_streams_beyond_the_cap_answer_503() {
        let held: Arc<Mutex<Vec<Sender<GwReply>>>> = Arc::new(Mutex::new(Vec::new()));
        let held2 = Arc::clone(&held);
        let gw = test_gateway(move |req, reply| {
            if matches!(req, GwRequest::Watch { .. }) {
                let _ = reply.send(GwReply::Update {
                    result: "1".into(),
                    initial: true,
                    complete: true,
                });
                held2.lock().unwrap().push(reply); // keep the stream open
            } else if matches!(req, GwRequest::Health) {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 1,
                    alive: 1,
                });
            }
        });
        let mut s1 = TcpStream::connect(gw.addr()).unwrap();
        s1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s1.write_all(b"GET /v1/watch?q=x HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(s1.try_clone().unwrap());
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.starts_with("data: ") {
                break; // stream 1 is fully open and counted
            }
        }
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/watch?q=x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503 "), "{resp}");
        // One-shot endpoints still get the remaining worker.
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    }

    #[test]
    fn bad_requests_answer_4xx() {
        let gw = test_gateway(|_req, _reply| {});
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
        let resp = roundtrip(gw.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "DELETE /v1/query HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/watch?q=x&policy=sometimes HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
        assert_eq!(gw.stats().errors.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 3,
                    alive: 3,
                });
            }
        });
        let mut s = TcpStream::connect(gw.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        for _ in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, "HTTP/1.1 200 OK\r\n");
            // Drain headers + body by Content-Length.
            let mut len = 0usize;
            loop {
                let mut l = String::new();
                reader.read_line(&mut l).unwrap();
                if let Some(v) = l.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().unwrap();
                }
                if l == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("\"alive\":3"));
        }
        assert_eq!(gw.stats().health_checks.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stop_refuses_new_connections() {
        let gw = test_gateway(|_req, _reply| {});
        gw.stop();
        std::thread::sleep(Duration::from_millis(100));
        // The acceptor has exited; a fresh connection is never served.
        let mut s = match TcpStream::connect(gw.addr()) {
            Ok(s) => s,
            Err(_) => return, // listener already closed: also fine
        };
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(
            out.is_empty() || out.starts_with("HTTP/1.1 503"),
            "stopped gateway must not serve: {out}"
        );
    }

    #[test]
    fn head_and_options_serve_probes() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 3,
                    alive: 3,
                });
            }
        });
        // HEAD /healthz: GET's headers (Content-Length included), no body.
        let resp = roundtrip(
            gw.addr(),
            "HEAD /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("Content-Length:"), "{resp}");
        assert!(resp.ends_with("\r\n\r\n"), "no body after headers: {resp}");
        // OPTIONS: 200 with the allowed-methods surface.
        let resp = roundtrip(
            gw.addr(),
            "OPTIONS /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
        assert!(resp.contains("Allow: GET, HEAD, POST, OPTIONS"), "{resp}");
        // HEAD cannot open a stream; the 405 points at GET.
        let resp = roundtrip(
            gw.addr(),
            "HEAD /v1/watch?q=x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");
        assert!(resp.contains("Allow: GET\r\n"), "{resp}");
    }

    #[test]
    fn attr_bodies_parse_form_comma_and_literal_comma_values() {
        let ok = |body: &str| parse_attr_body(body).unwrap();
        assert_eq!(
            ok("A=1&B=two"),
            vec![("A".into(), "1".into()), ("B".into(), "two".into())]
        );
        assert_eq!(
            ok("A=1,B=two"),
            vec![("A".into(), "1".into()), ("B".into(), "two".into())]
        );
        // A single form pair whose value holds a comma must survive.
        assert_eq!(ok("note=a,b"), vec![("note".into(), "a,b".into())]);
        // Encoded commas are always literal.
        assert_eq!(ok("note=a%2Cb"), vec![("note".into(), "a,b".into())]);
        // Form syntax keeps commas literal even with multiple pairs.
        assert_eq!(
            ok("A=1,2&B=3"),
            vec![("A".into(), "1,2".into()), ("B".into(), "3".into())]
        );
        assert!(parse_attr_body("justnonsense").is_err());
        assert!(parse_attr_body("=v&A=1").is_err());
    }

    #[test]
    fn trace_endpoints_route_and_render_json() {
        let gw = test_gateway(|req, reply| match req {
            GwRequest::Traces { limit } => {
                assert_eq!(limit, 5);
                let _ = reply.send(GwReply::Json {
                    body: "{\"traces\":[]}\n".into(),
                });
            }
            GwRequest::Trace { id } => {
                assert_eq!(id, "00000002-0000002a");
                let _ = reply.send(GwReply::Json {
                    body: "{\"trace_id\":\"00000002-0000002a\",\"spans\":[]}\n".into(),
                });
            }
            other => panic!("unexpected {other:?}"),
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/traces?limit=5 HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("{\"traces\":[]}"), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/trace/00000002-0000002a HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(
            resp.contains("\"trace_id\":\"00000002-0000002a\""),
            "{resp}"
        );
        assert_eq!(gw.stats().traces.load(Ordering::Relaxed), 2);
        // Both requests landed in the traces latency histogram.
        let (_, _, count) = gw.stats().latency.traces.snapshot();
        assert_eq!(count, 2);
        // An empty id is a client error, not a daemon round-trip.
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/trace/ HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    }

    #[test]
    fn access_log_emits_one_json_line_per_request() {
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<GwJob>();
        std::thread::spawn(move || {
            for job in rx {
                if let GwRequest::Health = job.req {
                    let _ = job.reply.send(GwReply::Health {
                        node: 7,
                        members: 1,
                        alive: 1,
                    });
                }
            }
        });
        let sink: AccessLogSink = Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_owned());
        });
        let gw = spawn_gateway_opts(listener, tx, 2, Some(sink), None);
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
        let resp = roundtrip(gw.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("\"method\":\"GET\"")
                && lines[0].contains("\"path\":\"/healthz\"")
                && lines[0].contains("\"status\":200"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"path\":\"/nope\"") && lines[1].contains("\"status\":404"),
            "{}",
            lines[1]
        );
        for line in lines.iter() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"duration_us\":"), "{line}");
            assert!(line.contains("\"bytes\":"), "{line}");
            assert!(line.contains("\"peer\":\"127.0.0.1:"), "{line}");
        }
    }

    #[test]
    fn access_log_line_is_exact_and_escapes() {
        let line = access_log_line(
            1700000000123,
            "GET",
            "/v1/query",
            200,
            4321,
            17,
            "10.0.0.9:55123",
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1700000000123,\"method\":\"GET\",\"path\":\"/v1/query\",\
             \"status\":200,\"duration_us\":4321,\"bytes\":17,\"peer\":\"10.0.0.9:55123\"}"
        );
        // Hostile path characters must come out escaped, keeping the line
        // one valid JSON object.
        let line = access_log_line(1, "GET", "/v1/query?q=\"x\"\n", 400, 1, 0, "-");
        assert!(line.contains("\\\"x\\\"\\n"), "{line}");
    }

    #[test]
    fn atomic_histogram_buckets_cumulate() {
        let h = AtomicHistogram::default();
        h.observe(50); // <= 100
        h.observe(150); // <= 250
        h.observe(2_000_000); // +Inf
        let (cumulative, sum, count) = h.snapshot();
        assert_eq!(count, 3);
        assert_eq!(sum, 50 + 150 + 2_000_000);
        assert_eq!(cumulative.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[1], 2);
        assert_eq!(*cumulative.last().unwrap(), 3);
        // Monotone non-decreasing throughout.
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn policy_parser_covers_all_spellings() {
        assert_eq!(parse_policy("on-change"), Ok(WatchPolicy::OnChange));
        assert_eq!(parse_policy("period:250"), Ok(WatchPolicy::PeriodMs(250)));
        assert_eq!(
            parse_policy("threshold:2.5"),
            Ok(WatchPolicy::Threshold(2.5))
        );
        assert!(parse_policy("period:0").is_err());
        assert!(parse_policy("period:x").is_err());
        assert!(parse_policy("threshold:NaN").is_err());
        assert!(parse_policy("whenever").is_err());
    }
}

//! The gateway's protocol surface: request/reply types, routing,
//! response rendering, stats, and the spawn entry points.
//!
//! Threading model (since the reactor rewrite): the acceptor thread
//! hands nonblocking sockets to a small set of `epoll` shard threads
//! (`reactor.rs`); each shard drives per-connection state machines that
//! parse HTTP incrementally, translate requests into [`GwRequest`]s,
//! and push [`GwJob`]s through an MPSC channel into the daemon's event
//! loop — protocol state is only ever touched by that single loop.
//! Replies come back through a per-shard mailbox (a queue plus an
//! `eventfd` wake), addressed by connection id and request generation;
//! `/v1/watch` flips its connection's state machine into a Server-Sent
//! Events stream that forwards [`GwReply::Update`] frames until either
//! side hangs up. Nothing in the HTTP path blocks, so one daemon holds
//! tens of thousands of keep-alive and SSE connections on a handful of
//! threads.
//!
//! Hang-up plumbing: every job carries a [`ReplySink`]. When the
//! connection closes, the sink's sends start failing, which the daemon
//! observes on its next update or keepalive probe and cancels the
//! standing subscription — peers GC the watch's in-network state
//! promptly. Symmetrically, when the *daemon* drops a sink without a
//! terminal reply (subscription cancelled, shutdown), the sink's `Drop`
//! posts a hang-up to the reactor and the SSE stream ends.
//!
//! Middleware on the reactor path: per-peer-IP token-bucket rate
//! limiting (429), a per-request deadline (408), and per-connection
//! panic isolation — see [`GatewayOpts`] and `docs/gateway.md`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use crate::cache::QueryCache;
use crate::http::{HttpRequest, HttpResponse};
use crate::json;
use crate::reactor::{Mail, Mailbox};

/// How a watch's updates surface to the SSE client (string-typed twin of
/// the subscription plane's `DeliveryPolicy`; the daemon converts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WatchPolicy {
    /// Every change to the merged result (the default).
    OnChange,
    /// A snapshot every N milliseconds, changed or not (N must be
    /// positive; enforced at parse time).
    PeriodMs(u64),
    /// Threshold-crossing alerts around the value.
    Threshold(f64),
}

/// What the HTTP layer asks the daemon to do.
#[derive(Clone, Debug, PartialEq)]
pub enum GwRequest {
    /// `GET /v1/query?q=…` — run a composite query.
    Query {
        /// Query text (either syntax the parser accepts).
        q: String,
    },
    /// `POST /v1/attrs` — set local attributes. Values are raw strings;
    /// the daemon applies its `parse_value` typing rules.
    SetAttrs {
        /// Name/value pairs in body order.
        attrs: Vec<(String, String)>,
    },
    /// `GET /v1/watch?q=…` — install a standing query and stream deltas.
    Watch {
        /// Query text.
        q: String,
        /// Delivery policy.
        policy: WatchPolicy,
        /// Subscription lease in milliseconds (daemon-renewed while the
        /// socket stays open).
        lease_ms: u64,
    },
    /// `GET /metrics` — snapshot every subsystem into Prometheus text.
    Metrics,
    /// `GET /healthz` — prove the daemon event loop is serving.
    Health,
    /// `GET /v1/traces` — recent sampled traces on this daemon.
    Traces {
        /// Maximum summaries to return.
        limit: usize,
    },
    /// `GET /v1/trace/{id}` — one trace's span tree, merged across the
    /// cluster by the daemon (scatter-gather over control sockets). The
    /// id stays a raw string here: the daemon owns trace-id parsing, and
    /// this crate stays dependency-free.
    Trace {
        /// Trace id as it appeared in the path (hex or decimal).
        id: String,
    },
    /// `GET /v1/cluster/health` — the answering daemon's merged member
    /// health table (self-sample plus digests gossiped on SWIM traffic).
    /// Served from local state; never blocks on peers.
    ClusterHealth,
    /// `GET /v1/cluster/metrics` — cluster-wide Prometheus exposition:
    /// the daemon fetches every alive peer's scrape over the control
    /// plane and federates the texts under `instance` labels.
    ClusterMetrics,
    /// `GET /v1/alerts` — the alert rules currently firing on this
    /// daemon.
    Alerts,
    /// `GET /v1/history?metric=…&range=…` — one metric's series from
    /// this daemon's flight-recorder history rings.
    History {
        /// Health-sample metric name.
        metric: String,
        /// How far back, in seconds (picks the ring tier).
        range_s: u32,
    },
    /// `GET /v1/cluster/history?metric=…&range=…` — every reachable
    /// member's series for one metric, federated over the control plane
    /// like `/v1/cluster/metrics`.
    ClusterHistory {
        /// Health-sample metric name.
        metric: String,
        /// How far back, in seconds.
        range_s: u32,
    },
    /// `GET /v1/events?kind=…&limit=…` — the newest entries of this
    /// daemon's structured event journal.
    Events {
        /// Only events of this kind; `None` returns every kind.
        kind: Option<String>,
        /// Maximum events to return (newest win).
        limit: usize,
    },
}

/// What the daemon answers.
#[derive(Clone, Debug, PartialEq)]
pub enum GwReply {
    /// Query finished.
    Answer {
        /// Rendered aggregate.
        result: String,
        /// False if some branch timed out or failed.
        complete: bool,
        /// `X-Moara-Cache` value (`miss` / `coalesced`); `None` when the
        /// result cache is disabled. (`hit` answers never round-trip to
        /// the daemon — the reactor serves them from [`QueryCache`]
        /// directly.)
        cache: Option<&'static str>,
    },
    /// Attributes applied.
    AttrsSet {
        /// How many pairs were set.
        count: usize,
    },
    /// Rendered `/metrics` exposition.
    Metrics {
        /// Prometheus text.
        text: String,
    },
    /// Liveness report.
    Health {
        /// This daemon's node id.
        node: u32,
        /// Members known (alive or dead).
        members: u32,
        /// Members believed alive.
        alive: u32,
    },
    /// One standing-query update (streamed; many per watch).
    Update {
        /// Rendered merged result.
        result: String,
        /// True for the watch's first update.
        initial: bool,
        /// False while some pinned tree has not reported yet.
        complete: bool,
    },
    /// Pre-rendered JSON (trace endpoints: the daemon builds the body).
    Json {
        /// The response body, already valid JSON.
        body: String,
    },
    /// Liveness probe for quiescent watch streams: rendered as an SSE
    /// comment, exists so a hung-up client is detected without a delta.
    Keepalive,
    /// Request failed (status is an HTTP code).
    Error {
        /// HTTP status to answer with.
        status: u16,
        /// Safe-to-echo description.
        msg: String,
    },
}

enum SinkInner {
    /// A plain channel (daemon-internal callers and tests).
    Channel(Sender<GwReply>),
    /// A reactor connection: replies post to the owning shard's mailbox,
    /// addressed by connection id and request generation.
    Reactor {
        mailbox: Arc<Mailbox>,
        conn: u64,
        gen: u64,
        closed: Arc<AtomicBool>,
    },
}

/// The receiving side of a [`ReplySink`] is gone: the connection was
/// closed or the channel dropped. The caller should stop producing —
/// for a watch, cancel the subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkClosed;

impl std::fmt::Display for SinkClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("reply sink closed")
    }
}

impl std::error::Error for SinkClosed {}

/// Where gateway replies go. The daemon holds a sink for the life of a
/// request (or, for watches, the life of the subscription) and calls
/// [`ReplySink::send`] once per reply.
///
/// Hang-up semantics, both directions:
/// * client gone → `send` returns `Err` (the reactor marked the
///   connection closed), which tells the daemon to cancel the watch;
/// * daemon gone → dropping the sink without a terminal reply posts a
///   hang-up to the reactor and the SSE stream ends.
///
/// Deliberately not `Clone`: the drop of *the* sink is a protocol
/// signal, and copies would fire it spuriously.
pub struct ReplySink {
    inner: SinkInner,
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            SinkInner::Channel(_) => f.write_str("ReplySink::Channel"),
            SinkInner::Reactor { conn, gen, .. } => {
                write!(f, "ReplySink::Reactor {{ conn: {conn}, gen: {gen} }}")
            }
        }
    }
}

impl ReplySink {
    /// A sink backed by a plain channel — for daemon-internal reply
    /// paths and tests; the reactor never sees these.
    pub fn channel(tx: Sender<GwReply>) -> ReplySink {
        ReplySink {
            inner: SinkInner::Channel(tx),
        }
    }

    pub(crate) fn reactor(
        mailbox: Arc<Mailbox>,
        conn: u64,
        gen: u64,
        closed: Arc<AtomicBool>,
    ) -> ReplySink {
        ReplySink {
            inner: SinkInner::Reactor {
                mailbox,
                conn,
                gen,
                closed,
            },
        }
    }

    /// Delivers one reply; `Err(SinkClosed)` means the receiving side
    /// is gone (connection closed / channel dropped) and the caller
    /// should stop producing — for a watch, cancel the subscription.
    pub fn send(&self, reply: GwReply) -> Result<(), SinkClosed> {
        match &self.inner {
            SinkInner::Channel(tx) => tx.send(reply).map_err(|_| SinkClosed),
            SinkInner::Reactor {
                mailbox,
                conn,
                gen,
                closed,
            } => {
                if closed.load(Ordering::Acquire) {
                    return Err(SinkClosed);
                }
                mailbox.post(*conn, *gen, Mail::Reply(reply));
                Ok(())
            }
        }
    }
}

impl Drop for ReplySink {
    fn drop(&mut self) {
        if let SinkInner::Reactor {
            mailbox,
            conn,
            gen,
            closed,
        } = &self.inner
        {
            // The reactor ignores hang-ups for requests that already got
            // their terminal reply (the mailbox preserves order), so
            // this only ends streams whose daemon side went away.
            if !closed.load(Ordering::Acquire) {
                mailbox.post(*conn, *gen, Mail::Hangup);
            }
        }
    }
}

/// One in-flight gateway request: the parsed request plus the sink the
/// daemon answers into.
pub struct GwJob {
    /// What to do.
    pub req: GwRequest,
    /// Where replies go. For watches the daemon holds this sink for
    /// the life of the subscription.
    pub reply: ReplySink,
}

/// Bucket upper bounds (microseconds) for the gateway's request-latency
/// histograms. Log-ish spacing from sub-millisecond one-shots out to the
/// engine's front timeout; the final implicit bucket is `+Inf`.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A lock-free fixed-bucket histogram over [`LATENCY_BOUNDS_US`].
/// Shards `observe` concurrently; the daemon's scrape thread snapshots
/// cumulative counts in the exact shape `MetricsRegistry::histogram_with`
/// wants. Tearing between buckets/sum under concurrent observes is
/// tolerated — Prometheus histograms are sampled, not transactional.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one observation in microseconds.
    pub fn observe(&self, us: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// `(cumulative bucket counts incl. +Inf, sum_us, count)` — the
    /// arguments `MetricsRegistry::histogram_with` takes verbatim.
    pub fn snapshot(&self) -> (Vec<u64>, u64, u64) {
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for b in &self.buckets {
            running += b.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        (
            cumulative,
            self.sum.load(Ordering::Relaxed),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// Request-latency histograms, one per endpoint class. Watch streams
/// observe their whole stream lifetime (headers to hang-up), one-shots
/// the read-to-written span.
#[derive(Debug, Default)]
pub struct EndpointLatency {
    /// `/v1/query`.
    pub query: AtomicHistogram,
    /// `/v1/attrs`.
    pub attrs: AtomicHistogram,
    /// `/v1/watch` (stream lifetime).
    pub watch: AtomicHistogram,
    /// `/metrics`.
    pub metrics: AtomicHistogram,
    /// `/healthz`.
    pub health: AtomicHistogram,
    /// `/v1/traces` and `/v1/trace/{id}`.
    pub traces: AtomicHistogram,
    /// Everything else (404s, OPTIONS, parse failures).
    pub other: AtomicHistogram,
}

impl EndpointLatency {
    /// The histogram for an endpoint class label.
    pub fn of(&self, class: &str) -> &AtomicHistogram {
        match class {
            "query" => &self.query,
            "attrs" => &self.attrs,
            "watch" => &self.watch,
            "metrics" => &self.metrics,
            "health" => &self.health,
            "traces" => &self.traces,
            _ => &self.other,
        }
    }

    /// All classes, label first — iteration order is the scrape order.
    pub fn families(&self) -> [(&'static str, &AtomicHistogram); 7] {
        [
            ("query", &self.query),
            ("attrs", &self.attrs),
            ("watch", &self.watch),
            ("metrics", &self.metrics),
            ("health", &self.health),
            ("traces", &self.traces),
            ("other", &self.other),
        ]
    }
}

/// Live counters the gateway keeps about itself (lock-free; scraped into
/// `/metrics` alongside the subsystem counters).
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Requests accepted, by coarse endpoint class.
    pub queries: AtomicU64,
    /// `POST /v1/attrs` requests.
    pub attr_sets: AtomicU64,
    /// Watches opened (SSE streams started).
    pub watches_opened: AtomicU64,
    /// SSE data frames written.
    pub sse_frames: AtomicU64,
    /// `/metrics` scrapes served.
    pub scrapes: AtomicU64,
    /// `/healthz` probes served.
    pub health_checks: AtomicU64,
    /// Trace endpoint requests (`/v1/traces`, `/v1/trace/{id}`).
    pub traces: AtomicU64,
    /// Responses with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Requests answered 429 by the per-peer-IP token bucket.
    pub rate_limited: AtomicU64,
    /// Requests answered 408 (per-request deadline or slowloris header
    /// timeout).
    pub request_timeouts: AtomicU64,
    /// Panics caught by per-connection isolation (each one killed its
    /// connection only).
    pub panics_caught: AtomicU64,
    /// Connections accepted over the gateway's lifetime.
    pub conns_accepted: AtomicU64,
    /// Connections refused at accept because the connection cap was hit.
    pub conns_rejected: AtomicU64,
    /// Connections currently registered with a shard (gauge).
    pub open_conns: AtomicI64,
    /// SSE streams currently holding a slot (reserved at routing time,
    /// released when the stream ends — so mid-setup streams count, and
    /// the cap cannot be raced past).
    pub open_streams: AtomicI64,
    /// GwJobs handed to the daemon channel and not yet drained (gauge:
    /// shards increment at send, the daemon decrements per drained
    /// batch). The health plane's event-loop backpressure signal.
    pub queued_jobs: AtomicI64,
    /// Request latency by endpoint class.
    pub latency: EndpointLatency,
}

/// Where access-log lines go: the daemon passes a sink (stderr, a file)
/// and the gateway calls it once per finished request with one JSON line
/// (no trailing newline). Must be cheap and non-blocking-ish: shards
/// call it inline.
pub type AccessLogSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Renders one access-log line as a single JSON object via the shared
/// [`json::JsonLine`] writer (same escaping as every other stderr
/// sink). Pure — the caller supplies the timestamp — so tests can
/// assert the exact line.
pub fn access_log_line(
    ts_ms: u64,
    method: &str,
    path: &str,
    status: u16,
    duration_us: u64,
    bytes: usize,
    peer: &str,
) -> String {
    json::JsonLine::new()
        .u64("ts_ms", ts_ms)
        .str("method", method)
        .str("path", path)
        .u64("status", u64::from(status))
        .u64("duration_us", duration_us)
        .u64("bytes", bytes as u64)
        .str("peer", peer)
        .finish()
}

/// Tuning and middleware knobs for [`spawn_gateway_opts`]. Start from
/// `GatewayOpts::default()` and override what the deployment needs.
#[derive(Clone)]
pub struct GatewayOpts {
    /// Reactor shard threads; `0` picks `available_parallelism` capped
    /// at 8.
    pub shards: usize,
    /// Per-peer-IP sustained requests/second; `0.0` disables rate
    /// limiting.
    pub rate_limit: f64,
    /// Token-bucket burst capacity; `0.0` picks `2 × rate_limit`.
    pub rate_burst: f64,
    /// How long a request may wait on the daemon before the gateway
    /// answers 408 and closes the connection.
    pub request_timeout: Duration,
    /// How long a keep-alive connection may sit idle (no request bytes)
    /// before it is closed.
    pub idle_timeout: Duration,
    /// How long a partial request head may dribble in before the
    /// connection is answered 408 (slowloris defense).
    pub header_timeout: Duration,
    /// Most concurrent SSE streams; further `/v1/watch` requests answer
    /// 503 immediately.
    pub max_sse_streams: i64,
    /// Most concurrent connections; further accepts are closed
    /// immediately (and counted in `conns_rejected`).
    pub max_conns: i64,
    /// Optional access-log sink: one JSON line per finished request (and
    /// per ended SSE stream).
    pub access_log: Option<AccessLogSink>,
    /// Optional shared result cache — when present, shards answer
    /// `/v1/query` hits from it inline, never entering the daemon's
    /// event loop (the cache's mutating side stays with the daemon,
    /// which shares the same `Arc`).
    pub cache: Option<Arc<QueryCache>>,
    /// Test hook: a request for exactly this path panics inside the
    /// connection handler, to prove panic isolation. `None` in
    /// production, always.
    pub panic_on_path: Option<String>,
}

impl Default for GatewayOpts {
    fn default() -> GatewayOpts {
        GatewayOpts {
            shards: 0,
            rate_limit: 0.0,
            rate_burst: 0.0,
            request_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            header_timeout: Duration::from_secs(10),
            max_sse_streams: 1024,
            max_conns: 50_000,
            access_log: None,
            cache: None,
            panic_on_path: None,
        }
    }
}

/// A running gateway: address, stats, and the stop switch.
pub struct GatewayHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) stats: Arc<GatewayStats>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) wakes: Vec<Arc<Mailbox>>,
}

impl GatewayHandle {
    /// Where the gateway listens.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's own counters.
    pub fn stats(&self) -> &Arc<GatewayStats> {
        &self.stats
    }

    /// Stops accepting new connections and tears down the shards; open
    /// connections (SSE streams included) are closed, which fails the
    /// daemon's next send into their sinks.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor blocked in accept() so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(50));
        // And every shard blocked in epoll_wait.
        for wake in &self.wakes {
            wake.wake();
        }
    }
}

/// Spawns the gateway's acceptor and reactor shards on `listener` with
/// default options. Jobs flow into `tx`; the daemon's event loop must
/// drain them (see `Daemon::step`).
///
/// # Panics
///
/// Panics if the listener's local address cannot be read, `epoll` setup
/// fails, or threads cannot spawn — all boot-time process failures.
pub fn spawn_gateway(listener: TcpListener, tx: Sender<GwJob>) -> GatewayHandle {
    spawn_gateway_opts(listener, tx, GatewayOpts::default())
}

/// [`spawn_gateway`] with explicit [`GatewayOpts`].
///
/// # Panics
///
/// Same boot-time failures as [`spawn_gateway`].
pub fn spawn_gateway_opts(
    listener: TcpListener,
    tx: Sender<GwJob>,
    opts: GatewayOpts,
) -> GatewayHandle {
    crate::reactor::spawn_reactor(listener, tx, opts)
}

/// Times one finished request into the per-endpoint histogram and, when
/// a sink is configured, emits one access-log line.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_request(
    stats: &GatewayStats,
    access_log: &Option<AccessLogSink>,
    class: &'static str,
    method: &str,
    path: &str,
    status: u16,
    started: std::time::Instant,
    bytes: usize,
    peer: &str,
) {
    let duration_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    stats.latency.of(class).observe(duration_us);
    if let Some(sink) = access_log {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        sink(&access_log_line(
            ts_ms,
            method,
            path,
            status,
            duration_us,
            bytes,
            peer,
        ));
    }
}

/// The latency/access-log endpoint class of a routed request.
pub(crate) fn endpoint_class(req: &GwRequest) -> &'static str {
    match req {
        GwRequest::Query { .. } => "query",
        GwRequest::SetAttrs { .. } => "attrs",
        GwRequest::Watch { .. } => "watch",
        GwRequest::Metrics
        | GwRequest::ClusterMetrics
        | GwRequest::History { .. }
        | GwRequest::ClusterHistory { .. } => "metrics",
        GwRequest::Health
        | GwRequest::ClusterHealth
        | GwRequest::Alerts
        | GwRequest::Events { .. } => "health",
        GwRequest::Traces { .. } | GwRequest::Trace { .. } => "traces",
    }
}

/// Parses the `range` query parameter of the history endpoints:
/// seconds by default (`120`, `120s`) or minutes (`2m`).
fn parse_range_s(s: &str) -> Result<u32, &'static str> {
    let (digits, mult) = if let Some(d) = s.strip_suffix('m') {
        (d, 60)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1)
    } else {
        (s, 1)
    };
    let n: u32 = digits
        .parse()
        .map_err(|_| "range wants SECONDS, Ns, or Nm")?;
    if n == 0 {
        return Err("range must be positive");
    }
    Ok(n.saturating_mul(mult))
}

/// Shared query-parameter parsing for `/v1/history` and
/// `/v1/cluster/history`.
fn history_params(req: &HttpRequest) -> Result<(String, u32), HttpResponse> {
    let metric = req
        .param("metric")
        .ok_or_else(|| HttpResponse::error(400, "missing query parameter metric"))?;
    let range_s = match req.param("range") {
        None => 120,
        Some(v) => parse_range_s(v).map_err(|e| HttpResponse::error(400, e))?,
    };
    Ok((metric.to_owned(), range_s))
}

/// What the gateway speaks, for `Allow` headers.
pub(crate) const ALLOWED_METHODS: &str = "GET, HEAD, POST, OPTIONS";

/// Maps a parsed HTTP request onto the gateway API.
pub(crate) fn route(req: &HttpRequest) -> Result<GwRequest, HttpResponse> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET" | "HEAD", "/v1/query") => {
            let q = req
                .param("q")
                .ok_or_else(|| HttpResponse::error(400, "missing query parameter q"))?;
            Ok(GwRequest::Query { q: q.to_owned() })
        }
        ("POST", "/v1/attrs") => {
            let body = std::str::from_utf8(&req.body)
                .map_err(|_| HttpResponse::error(400, "body is not UTF-8"))?;
            let attrs = parse_attr_body(body).map_err(|e| HttpResponse::error(400, e))?;
            if attrs.is_empty() {
                return Err(HttpResponse::error(400, "no attributes in body"));
            }
            Ok(GwRequest::SetAttrs { attrs })
        }
        ("GET", "/v1/watch") => {
            let q = req
                .param("q")
                .ok_or_else(|| HttpResponse::error(400, "missing query parameter q"))?;
            let policy = parse_policy(req.param("policy").unwrap_or("on-change"))
                .map_err(|e| HttpResponse::error(400, e))?;
            let lease_ms = match req.param("lease_ms") {
                None => 30_000,
                Some(v) => v
                    .parse()
                    .map_err(|_| HttpResponse::error(400, "lease_ms must be an integer"))?,
            };
            Ok(GwRequest::Watch {
                q: q.to_owned(),
                policy,
                lease_ms,
            })
        }
        // HEAD cannot open a stream; point the prober at GET.
        ("HEAD", "/v1/watch") => {
            Err(HttpResponse::error(405, "watch streams require GET").with_allow("GET"))
        }
        ("GET" | "HEAD", "/metrics") => Ok(GwRequest::Metrics),
        ("GET" | "HEAD", "/healthz") => Ok(GwRequest::Health),
        ("GET" | "HEAD", "/v1/cluster/health") => Ok(GwRequest::ClusterHealth),
        ("GET" | "HEAD", "/v1/cluster/metrics") => Ok(GwRequest::ClusterMetrics),
        ("GET" | "HEAD", "/v1/alerts") => Ok(GwRequest::Alerts),
        ("GET" | "HEAD", "/v1/history") => {
            let (metric, range_s) = history_params(req)?;
            Ok(GwRequest::History { metric, range_s })
        }
        ("GET" | "HEAD", "/v1/cluster/history") => {
            let (metric, range_s) = history_params(req)?;
            Ok(GwRequest::ClusterHistory { metric, range_s })
        }
        ("GET" | "HEAD", "/v1/events") => {
            let kind = req.param("kind").map(|k| k.to_owned());
            let limit = match req.param("limit") {
                None => 100,
                Some(v) => v
                    .parse()
                    .map_err(|_| HttpResponse::error(400, "limit must be an integer"))?,
            };
            Ok(GwRequest::Events { kind, limit })
        }
        ("GET" | "HEAD", "/v1/traces") => {
            let limit = match req.param("limit") {
                None => 50,
                Some(v) => v
                    .parse()
                    .map_err(|_| HttpResponse::error(400, "limit must be an integer"))?,
            };
            Ok(GwRequest::Traces { limit })
        }
        ("GET" | "HEAD", path) if path.starts_with("/v1/trace/") => {
            let id = &path["/v1/trace/".len()..];
            if id.is_empty() {
                return Err(HttpResponse::error(400, "missing trace id"));
            }
            Ok(GwRequest::Trace { id: id.to_owned() })
        }
        ("GET" | "HEAD" | "POST", _) => Err(HttpResponse::error(404, "no such endpoint")),
        _ => Err(HttpResponse::error(405, "method not allowed").with_allow(ALLOWED_METHODS)),
    }
}

/// Parses the `policy` query parameter: `on-change`, `period:MILLIS`, or
/// `threshold:VALUE`.
fn parse_policy(s: &str) -> Result<WatchPolicy, &'static str> {
    if s == "on-change" {
        return Ok(WatchPolicy::OnChange);
    }
    if let Some(ms) = s.strip_prefix("period:") {
        let ms: u64 = ms.parse().map_err(|_| "period wants period:MILLIS")?;
        if ms == 0 {
            return Err("period must be positive");
        }
        return Ok(WatchPolicy::PeriodMs(ms));
    }
    if let Some(v) = s.strip_prefix("threshold:") {
        let v: f64 = v.parse().map_err(|_| "threshold wants threshold:VALUE")?;
        if v.is_nan() {
            return Err("threshold must not be NaN");
        }
        return Ok(WatchPolicy::Threshold(v));
    }
    Err("policy must be on-change, period:MILLIS, or threshold:VALUE")
}

/// Parses a `/v1/attrs` body: form pairs (`A=1&B=2`) or the `--attrs`
/// comma syntax (`A=1,B=2`).
///
/// Precedence: a body containing `&` is always form data. Otherwise the
/// comma syntax applies only when *every* comma-separated piece is a
/// `k=v` pair; a body like `note=a,b` (one pair whose value holds a
/// comma) falls back to a single pair. The one genuinely ambiguous
/// spelling, `A=1,B=2` with a literal-comma intent, needs the comma
/// encoded (`%2C`) or form syntax.
fn parse_attr_body(body: &str) -> Result<Vec<(String, String)>, &'static str> {
    let body = body.trim();
    let decode = |k: &str, v: &str| -> Result<(String, String), &'static str> {
        let k = crate::http::percent_decode(k);
        if k.is_empty() {
            return Err("attribute has an empty name");
        }
        Ok((k, crate::http::percent_decode(v)))
    };
    let split_pairs = |sep: char| -> Option<Vec<(&str, &str)>> {
        body.split(sep)
            .filter(|p| !p.is_empty())
            .map(|part| part.split_once('='))
            .collect()
    };
    let pairs = if body.contains('&') {
        split_pairs('&').ok_or("attribute is not k=v")?
    } else if let Some(pairs) = split_pairs(',') {
        pairs
    } else {
        // Not clean comma syntax: a single pair whose value carries
        // literal commas.
        vec![body.split_once('=').ok_or("attribute is not k=v")?]
    };
    pairs.into_iter().map(|(k, v)| decode(k, v)).collect()
}

/// The `/v1/query` answer body (shared by the daemon round-trip path and
/// the reactor-side cache-hit path, so both render byte-identically).
pub(crate) fn answer_body(result: &str, complete: bool) -> String {
    format!(
        "{{\"result\":{},\"complete\":{complete}}}\n",
        json::escape(result)
    )
}

/// Renders one terminal reply as a full HTTP response.
pub(crate) fn render_reply(reply: GwReply) -> HttpResponse {
    match reply {
        GwReply::Answer {
            result,
            complete,
            cache,
        } => {
            let resp = HttpResponse::json(200, answer_body(&result, complete));
            match cache {
                Some(c) => resp.with_cache(c),
                None => resp,
            }
        }
        GwReply::AttrsSet { count } => {
            HttpResponse::json(200, format!("{{\"ok\":true,\"set\":{count}}}\n"))
        }
        GwReply::Metrics { text } => {
            HttpResponse::text(200, "text/plain; version=0.0.4; charset=utf-8", text)
        }
        GwReply::Health {
            node,
            members,
            alive,
        } => HttpResponse::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"node\":{node},\"members\":{members},\"alive\":{alive}}}\n"
            ),
        ),
        GwReply::Json { body } => HttpResponse::json(200, body),
        GwReply::Error { status, msg } => HttpResponse::error(status, &msg),
        GwReply::Update { .. } | GwReply::Keepalive => {
            HttpResponse::error(500, "streaming reply to one-shot request")
        }
    }
}

/// Renders one update as an SSE frame (`data: {json}\n\n`).
pub fn sse_frame(result: &str, initial: bool, complete: bool) -> String {
    format!(
        "data: {{\"result\":{},\"initial\":{initial},\"complete\":{complete}}}\n\n",
        json::escape(result)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    use std::sync::Mutex;

    /// Boots a gateway backed by a scripted responder thread.
    fn test_gateway(respond: impl Fn(GwRequest, ReplySink) + Send + 'static) -> GatewayHandle {
        test_gateway_opts(GatewayOpts::default(), respond)
    }

    fn test_gateway_opts(
        opts: GatewayOpts,
        respond: impl Fn(GwRequest, ReplySink) + Send + 'static,
    ) -> GatewayHandle {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<GwJob>();
        std::thread::spawn(move || {
            for job in rx {
                respond(job.req, job.reply);
            }
        });
        spawn_gateway_opts(listener, tx, opts)
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn query_roundtrips_as_json() {
        let gw = test_gateway(|req, reply| {
            assert_eq!(
                req,
                GwRequest::Query {
                    q: "SELECT count(*) WHERE A = 1".into()
                }
            );
            let _ = reply.send(GwReply::Answer {
                result: "2".into(),
                complete: true,
                cache: None,
            });
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=SELECT%20count(*)%20WHERE%20A%20%3D%201 HTTP/1.1\r\n\
             Connection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(
            resp.contains("{\"result\":\"2\",\"complete\":true}"),
            "{resp}"
        );
        assert!(!resp.contains("X-Moara-Cache"), "no cache, no header");
        assert_eq!(gw.stats().queries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cache_markers_render_as_response_headers() {
        let gw = test_gateway(|_req, reply| {
            let _ = reply.send(GwReply::Answer {
                result: "2".into(),
                complete: true,
                cache: Some("coalesced"),
            });
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("X-Moara-Cache: coalesced\r\n"), "{resp}");
    }

    /// A warm cache answers on the reactor shard: the daemon side sees
    /// no job at all, and the response carries `X-Moara-Cache: hit`.
    #[test]
    fn cache_hits_are_served_without_entering_the_daemon() {
        use crate::cache::{CacheConfig, QueryCache};
        let cache = Arc::new(QueryCache::new(CacheConfig {
            promote_after: 1,
            ..CacheConfig::default()
        }));
        // Warm: first lookup promotes, then the "daemon" installs and
        // syncs the standing result.
        assert!(cache
            .lookup("SELECT count(*)", std::time::Instant::now())
            .is_none());
        let (key, _) = cache.take_pending_promotions().remove(0);
        assert!(cache.promoted(&key, 1));
        cache.on_update(1, "42".into(), true);

        let daemon_jobs = Arc::new(AtomicU64::new(0));
        let daemon_jobs2 = Arc::clone(&daemon_jobs);
        let gw = test_gateway_opts(
            GatewayOpts {
                cache: Some(Arc::clone(&cache)),
                ..GatewayOpts::default()
            },
            move |_req, reply| {
                daemon_jobs2.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(GwReply::Answer {
                    result: "slow".into(),
                    complete: true,
                    cache: Some("miss"),
                });
            },
        );
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=SELECT%20count(*) HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("X-Moara-Cache: hit\r\n"), "{resp}");
        assert!(
            resp.contains("{\"result\":\"42\",\"complete\":true}"),
            "{resp}"
        );
        assert_eq!(daemon_jobs.load(Ordering::SeqCst), 0, "no daemon trip");
        assert_eq!(cache.hits(), 1);
        // A different query misses straight through to the daemon.
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=other HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("X-Moara-Cache: miss\r\n"), "{resp}");
        assert!(resp.contains("\"result\":\"slow\""), "{resp}");
        assert_eq!(daemon_jobs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn attrs_post_parses_both_body_styles() {
        let gw = test_gateway(|req, reply| match req {
            GwRequest::SetAttrs { attrs } => {
                let n = attrs.len();
                assert!(attrs.iter().any(|(k, v)| k == "A" && v == "1"));
                let _ = reply.send(GwReply::AttrsSet { count: n });
            }
            other => panic!("unexpected {other:?}"),
        });
        for body in ["A=1&B=two", "A=1,B=two"] {
            let resp = roundtrip(
                gw.addr(),
                &format!(
                    "POST /v1/attrs HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
            );
            assert!(resp.contains("{\"ok\":true,\"set\":2}"), "{resp}");
        }
    }

    #[test]
    fn watch_streams_sse_frames_until_daemon_drops() {
        let gw = test_gateway(|req, reply| {
            match req {
                GwRequest::Watch {
                    policy: WatchPolicy::PeriodMs(1500),
                    lease_ms: 5000,
                    ..
                } => {}
                other => panic!("unexpected {other:?}"),
            }
            let _ = reply.send(GwReply::Update {
                result: "1".into(),
                initial: true,
                complete: true,
            });
            let _ = reply.send(GwReply::Keepalive);
            let _ = reply.send(GwReply::Update {
                result: "2".into(),
                initial: false,
                complete: true,
            });
            // reply dropped here: stream must end.
        });
        let mut s = TcpStream::connect(gw.addr()).unwrap();
        s.write_all(
            b"GET /v1/watch?q=SELECT%20count(*)&policy=period:1500&lease_ms=5000 HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(s);
        let mut header = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            header.push_str(&line);
            if line == "\r\n" {
                break;
            }
        }
        assert!(header.contains("text/event-stream"), "{header}");
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        assert!(
            rest.contains("data: {\"result\":\"1\",\"initial\":true,\"complete\":true}\n\n"),
            "{rest}"
        );
        assert!(rest.contains(": keepalive\n\n"), "{rest}");
        assert!(rest.contains("data: {\"result\":\"2\""), "{rest}");
        assert_eq!(gw.stats().sse_frames.load(Ordering::Relaxed), 2);
        // The stream ended and released its slot.
        assert_eq!(gw.stats().open_streams.load(Ordering::SeqCst), 0);
    }

    /// Beyond `max_sse_streams`, further watch requests answer 503 fast
    /// — and one-shot endpoints keep working (`/healthz` must stay
    /// reachable under watcher overload).
    #[test]
    fn watch_streams_beyond_the_cap_answer_503() {
        let held: Arc<Mutex<Vec<ReplySink>>> = Arc::new(Mutex::new(Vec::new()));
        let held2 = Arc::clone(&held);
        let gw = test_gateway_opts(
            GatewayOpts {
                max_sse_streams: 1,
                ..GatewayOpts::default()
            },
            move |req, reply| {
                if matches!(req, GwRequest::Watch { .. }) {
                    let _ = reply.send(GwReply::Update {
                        result: "1".into(),
                        initial: true,
                        complete: true,
                    });
                    held2.lock().unwrap().push(reply); // keep the stream open
                } else if matches!(req, GwRequest::Health) {
                    let _ = reply.send(GwReply::Health {
                        node: 0,
                        members: 1,
                        alive: 1,
                    });
                }
            },
        );
        let mut s1 = TcpStream::connect(gw.addr()).unwrap();
        s1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s1.write_all(b"GET /v1/watch?q=x HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(s1.try_clone().unwrap());
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.starts_with("data: ") {
                break; // stream 1 is fully open and counted
            }
        }
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/watch?q=x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503 "), "{resp}");
        // One-shot endpoints still work beside the saturated stream cap.
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    }

    #[test]
    fn bad_requests_answer_4xx() {
        let gw = test_gateway(|_req, _reply| {});
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
        let resp = roundtrip(gw.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "DELETE /v1/query HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/watch?q=x&policy=sometimes HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
        assert_eq!(gw.stats().errors.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 3,
                    alive: 3,
                });
            }
        });
        let mut s = TcpStream::connect(gw.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        for _ in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, "HTTP/1.1 200 OK\r\n");
            // Drain headers + body by Content-Length.
            let mut len = 0usize;
            loop {
                let mut l = String::new();
                reader.read_line(&mut l).unwrap();
                if let Some(v) = l.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().unwrap();
                }
                if l == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains("\"alive\":3"));
        }
        assert_eq!(gw.stats().health_checks.load(Ordering::Relaxed), 3);
    }

    /// Two requests written in one TCP segment are both answered, in
    /// order — the reactor parses pipelined input off one buffer.
    #[test]
    fn pipelined_requests_answer_in_order() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 1,
                    alive: 1,
                });
            }
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(resp.matches("HTTP/1.1 200 OK\r\n").count(), 2, "{resp}");
        assert_eq!(gw.stats().health_checks.load(Ordering::Relaxed), 2);
    }

    /// The smuggling defense, end to end: a `Transfer-Encoding` request
    /// whose chunked body embeds a fake second request is answered 501
    /// and the connection closed — the embedded request is never routed
    /// (with the old ignore-the-header behavior, the chunked body stayed
    /// in the buffer and `GET /v1/query?q=evil` would have executed).
    #[test]
    fn transfer_encoding_desync_is_rejected_not_smuggled() {
        let jobs = Arc::new(AtomicU64::new(0));
        let jobs2 = Arc::clone(&jobs);
        let gw = test_gateway(move |_req, _reply| {
            jobs2.fetch_add(1, Ordering::SeqCst);
        });
        let resp = roundtrip(
            gw.addr(),
            "POST /v1/attrs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             5\r\nA=1&B\r\n0\r\n\r\n\
             GET /v1/query?q=evil HTTP/1.1\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 501 "), "{resp}");
        // Exactly one response: the connection closed before the
        // embedded request could be parsed.
        assert_eq!(resp.matches("HTTP/1.1").count(), 1, "{resp}");
        assert_eq!(jobs.load(Ordering::SeqCst), 0, "nothing was routed");
        assert_eq!(gw.stats().queries.load(Ordering::Relaxed), 0);
    }

    /// Conflicting duplicate `Content-Length` headers (the CL.CL
    /// smuggling vector) are rejected and the connection closed.
    #[test]
    fn conflicting_content_length_closes_the_connection() {
        let gw = test_gateway(|_req, _reply| {});
        let resp = roundtrip(
            gw.addr(),
            "POST /v1/attrs HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 30\r\n\r\nA=1",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
        assert_eq!(resp.matches("HTTP/1.1").count(), 1, "{resp}");
    }

    /// A rejected request (404 route) with a body must not leave the
    /// body bytes in the buffer: the parser consumes head *and* body, so
    /// the next pipelined request on the keep-alive connection parses
    /// cleanly instead of desyncing.
    #[test]
    fn rejected_request_with_body_does_not_desync_keep_alive() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 1,
                    alive: 1,
                });
            }
        });
        let resp = roundtrip(
            gw.addr(),
            "POST /nope HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello\
             GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
        assert!(resp.contains("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        assert_eq!(gw.stats().health_checks.load(Ordering::Relaxed), 1);
    }

    /// Middleware: the per-peer token bucket answers 429 once the burst
    /// is spent, and counts it.
    #[test]
    fn rate_limit_answers_429_and_counts() {
        let gw = test_gateway_opts(
            GatewayOpts {
                rate_limit: 1.0,
                rate_burst: 2.0,
                ..GatewayOpts::default()
            },
            |req, reply| {
                if let GwRequest::Health = req {
                    let _ = reply.send(GwReply::Health {
                        node: 0,
                        members: 1,
                        alive: 1,
                    });
                }
            },
        );
        let mut statuses = Vec::new();
        for _ in 0..3 {
            let resp = roundtrip(
                gw.addr(),
                "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            );
            statuses.push(resp.split_whitespace().nth(1).unwrap_or("?").to_owned());
        }
        assert_eq!(statuses[0], "200", "{statuses:?}");
        assert_eq!(statuses[1], "200", "{statuses:?}");
        assert_eq!(statuses[2], "429", "{statuses:?}");
        assert_eq!(gw.stats().rate_limited.load(Ordering::Relaxed), 1);
        assert!(gw.stats().errors.load(Ordering::Relaxed) >= 1);
    }

    /// Middleware: a request the daemon never answers times out with 408
    /// after `request_timeout`, counted in `request_timeouts`.
    #[test]
    fn unanswered_request_times_out_with_408() {
        let held: Arc<Mutex<Vec<ReplySink>>> = Arc::new(Mutex::new(Vec::new()));
        let held2 = Arc::clone(&held);
        let gw = test_gateway_opts(
            GatewayOpts {
                request_timeout: Duration::from_millis(50),
                ..GatewayOpts::default()
            },
            move |_req, reply| {
                held2.lock().unwrap().push(reply); // never answer
            },
        );
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 408 "), "{resp}");
        assert_eq!(gw.stats().request_timeouts.load(Ordering::Relaxed), 1);
        // The daemon's held sink now fails its sends: hang-up observed.
        let sink = held.lock().unwrap().pop().unwrap();
        assert!(sink.send(GwReply::Keepalive).is_err());
    }

    /// Middleware: a poisoned request kills its own connection only —
    /// the shard survives and keeps serving others.
    #[test]
    fn panics_are_isolated_to_their_connection() {
        let gw = test_gateway_opts(
            GatewayOpts {
                panic_on_path: Some("/boom".into()),
                ..GatewayOpts::default()
            },
            |req, reply| {
                if let GwRequest::Health = req {
                    let _ = reply.send(GwReply::Health {
                        node: 0,
                        members: 1,
                        alive: 1,
                    });
                }
            },
        );
        let poisoned = roundtrip(gw.addr(), "GET /boom HTTP/1.1\r\n\r\n");
        assert!(poisoned.is_empty(), "poisoned conn just closes: {poisoned}");
        assert_eq!(gw.stats().panics_caught.load(Ordering::Relaxed), 1);
        // The shard is alive and serving.
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    }

    /// Slowloris: a client dribbling header bytes is answered 408 after
    /// `header_timeout` — and because nothing blocks per connection,
    /// other clients are served the whole time.
    #[test]
    fn slowloris_headers_time_out_without_blocking_others() {
        let gw = test_gateway_opts(
            GatewayOpts {
                header_timeout: Duration::from_millis(200),
                ..GatewayOpts::default()
            },
            |req, reply| {
                if let GwRequest::Health = req {
                    let _ = reply.send(GwReply::Health {
                        node: 0,
                        members: 1,
                        alive: 1,
                    });
                }
            },
        );
        let mut slow = TcpStream::connect(gw.addr()).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        slow.write_all(b"GET /healthz HT").unwrap(); // dribble, never finish
                                                     // While the slow client dangles, fast clients are unaffected.
        for _ in 0..3 {
            let resp = roundtrip(
                gw.addr(),
                "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
            );
            assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
        }
        let mut out = String::new();
        let _ = slow.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 408 "), "{out}");
    }

    /// Hundreds of idle keep-alive connections coexist with live traffic
    /// — the reactor's whole point. (The 10k-connection version runs as
    /// an e2e test against a real `moarad` for fd-limit headroom.)
    #[test]
    fn idle_keep_alive_connections_do_not_starve_requests() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 1,
                    alive: 1,
                });
            }
        });
        let idle: Vec<TcpStream> = (0..300)
            .map(|_| TcpStream::connect(gw.addr()).unwrap())
            .collect();
        // All idle conns held open; requests still answer immediately.
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
        // And the idle conns themselves are live, not just parked.
        let mut one = idle.into_iter().next().unwrap();
        one.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        one.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        let _ = one.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 200 "), "{out}");
        assert!(gw.stats().conns_accepted.load(Ordering::Relaxed) >= 300);
    }

    /// The connection cap rejects (closes) accepts beyond `max_conns`
    /// and counts them.
    #[test]
    fn connection_cap_rejects_excess_accepts() {
        let gw = test_gateway_opts(
            GatewayOpts {
                max_conns: 2,
                ..GatewayOpts::default()
            },
            |_req, _reply| {},
        );
        let _a = TcpStream::connect(gw.addr()).unwrap();
        let _b = TcpStream::connect(gw.addr()).unwrap();
        // Give the reactor a beat to register both.
        std::thread::sleep(Duration::from_millis(100));
        let mut c = TcpStream::connect(gw.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = String::new();
        let _ = c.read_to_string(&mut out);
        assert!(out.is_empty(), "over-cap conn is closed, not served");
        assert!(gw.stats().conns_rejected.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn stop_refuses_new_connections() {
        let gw = test_gateway(|_req, _reply| {});
        gw.stop();
        std::thread::sleep(Duration::from_millis(100));
        // The acceptor has exited; a fresh connection is never served.
        let mut s = match TcpStream::connect(gw.addr()) {
            Ok(s) => s,
            Err(_) => return, // listener already closed: also fine
        };
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(
            out.is_empty() || out.starts_with("HTTP/1.1 503"),
            "stopped gateway must not serve: {out}"
        );
    }

    #[test]
    fn head_and_options_serve_probes() {
        let gw = test_gateway(|req, reply| {
            if let GwRequest::Health = req {
                let _ = reply.send(GwReply::Health {
                    node: 0,
                    members: 3,
                    alive: 3,
                });
            }
        });
        // HEAD /healthz: GET's headers (Content-Length included), no body.
        let resp = roundtrip(
            gw.addr(),
            "HEAD /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("Content-Length:"), "{resp}");
        assert!(resp.ends_with("\r\n\r\n"), "no body after headers: {resp}");
        // OPTIONS: 200 with the allowed-methods surface.
        let resp = roundtrip(
            gw.addr(),
            "OPTIONS /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
        assert!(resp.contains("Allow: GET, HEAD, POST, OPTIONS"), "{resp}");
        // HEAD cannot open a stream; the 405 points at GET.
        let resp = roundtrip(
            gw.addr(),
            "HEAD /v1/watch?q=x HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");
        assert!(resp.contains("Allow: GET\r\n"), "{resp}");
    }

    #[test]
    fn attr_bodies_parse_form_comma_and_literal_comma_values() {
        let ok = |body: &str| parse_attr_body(body).unwrap();
        assert_eq!(
            ok("A=1&B=two"),
            vec![("A".into(), "1".into()), ("B".into(), "two".into())]
        );
        assert_eq!(
            ok("A=1,B=two"),
            vec![("A".into(), "1".into()), ("B".into(), "two".into())]
        );
        // A single form pair whose value holds a comma must survive.
        assert_eq!(ok("note=a,b"), vec![("note".into(), "a,b".into())]);
        // Encoded commas are always literal.
        assert_eq!(ok("note=a%2Cb"), vec![("note".into(), "a,b".into())]);
        // Form syntax keeps commas literal even with multiple pairs.
        assert_eq!(
            ok("A=1,2&B=3"),
            vec![("A".into(), "1,2".into()), ("B".into(), "3".into())]
        );
        assert!(parse_attr_body("justnonsense").is_err());
        assert!(parse_attr_body("=v&A=1").is_err());
    }

    #[test]
    fn trace_endpoints_route_and_render_json() {
        let gw = test_gateway(|req, reply| match req {
            GwRequest::Traces { limit } => {
                assert_eq!(limit, 5);
                let _ = reply.send(GwReply::Json {
                    body: "{\"traces\":[]}\n".into(),
                });
            }
            GwRequest::Trace { id } => {
                assert_eq!(id, "00000002-0000002a");
                let _ = reply.send(GwReply::Json {
                    body: "{\"trace_id\":\"00000002-0000002a\",\"spans\":[]}\n".into(),
                });
            }
            other => panic!("unexpected {other:?}"),
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/traces?limit=5 HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("{\"traces\":[]}"), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/trace/00000002-0000002a HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(
            resp.contains("\"trace_id\":\"00000002-0000002a\""),
            "{resp}"
        );
        assert_eq!(gw.stats().traces.load(Ordering::Relaxed), 2);
        // Both requests landed in the traces latency histogram.
        let (_, _, count) = gw.stats().latency.traces.snapshot();
        assert_eq!(count, 2);
        // An empty id is a client error, not a daemon round-trip.
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/trace/ HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
    }

    #[test]
    fn access_log_emits_one_json_line_per_request() {
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let sink: AccessLogSink = Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_owned());
        });
        let gw = test_gateway_opts(
            GatewayOpts {
                access_log: Some(sink),
                ..GatewayOpts::default()
            },
            |req, reply| {
                if let GwRequest::Health = req {
                    let _ = reply.send(GwReply::Health {
                        node: 7,
                        members: 1,
                        alive: 1,
                    });
                }
            },
        );
        let resp = roundtrip(
            gw.addr(),
            "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
        let resp = roundtrip(gw.addr(), "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("\"method\":\"GET\"")
                && lines[0].contains("\"path\":\"/healthz\"")
                && lines[0].contains("\"status\":200"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"path\":\"/nope\"") && lines[1].contains("\"status\":404"),
            "{}",
            lines[1]
        );
        for line in lines.iter() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"duration_us\":"), "{line}");
            assert!(line.contains("\"bytes\":"), "{line}");
            assert!(line.contains("\"peer\":\"127.0.0.1:"), "{line}");
        }
    }

    #[test]
    fn cluster_endpoints_route_count_and_track_queue_depth() {
        let gw = test_gateway(|req, reply| match req {
            GwRequest::ClusterHealth => {
                let _ = reply.send(GwReply::Json {
                    body: "{\"node\":0,\"members\":[],\"alerts\":[]}\n".into(),
                });
            }
            GwRequest::ClusterMetrics => {
                let _ = reply.send(GwReply::Metrics {
                    text: "# TYPE moara_up gauge\nmoara_up{instance=\"n0\"} 1\n".into(),
                });
            }
            GwRequest::Alerts => {
                let _ = reply.send(GwReply::Json {
                    body: "{\"node\":0,\"firing\":[]}\n".into(),
                });
            }
            other => panic!("unexpected {other:?}"),
        });
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/cluster/health HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("\"members\":[]"), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/cluster/metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("text/plain"), "{resp}");
        assert!(resp.contains("instance=\"n0\""), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/alerts HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.contains("\"firing\":[]"), "{resp}");
        // Health-table and alert reads count as health checks, the
        // federated scrape as a scrape; all three land in histograms.
        assert_eq!(gw.stats().health_checks.load(Ordering::Relaxed), 2);
        assert_eq!(gw.stats().scrapes.load(Ordering::Relaxed), 1);
        let (_, _, health_count) = gw.stats().latency.health.snapshot();
        assert_eq!(health_count, 2);
        let (_, _, metrics_count) = gw.stats().latency.metrics.snapshot();
        assert_eq!(metrics_count, 1);
        // The test harness never decrements (that's the daemon's drain
        // loop), so the gauge equals the jobs handed over.
        assert_eq!(gw.stats().queued_jobs.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn daemon_shutdown_503_lands_in_histogram_and_access_log() {
        // A gateway whose daemon is gone: the job channel's receiver is
        // dropped, so every hand-off fails and the shard answers 503
        // inline. Those inline answers must still be timed and logged —
        // the regression this pins down.
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let sink: AccessLogSink = Arc::new(move |line: &str| {
            sink_lines.lock().unwrap().push(line.to_owned());
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<GwJob>();
        drop(rx);
        let gw = spawn_gateway_opts(
            listener,
            tx,
            GatewayOpts {
                access_log: Some(sink),
                ..GatewayOpts::default()
            },
        );
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/query?q=SELECT%20count(*) HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503 "), "{resp}");
        let resp = roundtrip(
            gw.addr(),
            "GET /v1/watch?q=SELECT%20count(*) HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 503 "), "{resp}");
        let (_, _, query_count) = gw.stats().latency.query.snapshot();
        assert_eq!(query_count, 1, "503 must land in the query histogram");
        let (_, _, watch_count) = gw.stats().latency.watch.snapshot();
        assert_eq!(watch_count, 1, "503 must land in the watch histogram");
        // The failed hand-offs never queued anything...
        assert_eq!(gw.stats().queued_jobs.load(Ordering::Relaxed), 0);
        // ...and the reserved stream slot was released.
        assert_eq!(gw.stats().open_streams.load(Ordering::Relaxed), 0);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2, "{lines:?}");
        for line in lines.iter() {
            assert!(line.contains("\"status\":503"), "{line}");
            assert!(line.contains("\"duration_us\":"), "{line}");
        }
    }

    #[test]
    fn access_log_line_is_exact_and_escapes() {
        let line = access_log_line(
            1700000000123,
            "GET",
            "/v1/query",
            200,
            4321,
            17,
            "10.0.0.9:55123",
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1700000000123,\"method\":\"GET\",\"path\":\"/v1/query\",\
             \"status\":200,\"duration_us\":4321,\"bytes\":17,\"peer\":\"10.0.0.9:55123\"}"
        );
        // Hostile path characters must come out escaped, keeping the line
        // one valid JSON object.
        let line = access_log_line(1, "GET", "/v1/query?q=\"x\"\n", 400, 1, 0, "-");
        assert!(line.contains("\\\"x\\\"\\n"), "{line}");
    }

    #[test]
    fn atomic_histogram_buckets_cumulate() {
        let h = AtomicHistogram::default();
        h.observe(50); // <= 100
        h.observe(150); // <= 250
        h.observe(2_000_000); // +Inf
        let (cumulative, sum, count) = h.snapshot();
        assert_eq!(count, 3);
        assert_eq!(sum, 50 + 150 + 2_000_000);
        assert_eq!(cumulative.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[1], 2);
        assert_eq!(*cumulative.last().unwrap(), 3);
        // Monotone non-decreasing throughout.
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn policy_parser_covers_all_spellings() {
        assert_eq!(parse_policy("on-change"), Ok(WatchPolicy::OnChange));
        assert_eq!(parse_policy("period:250"), Ok(WatchPolicy::PeriodMs(250)));
        assert_eq!(
            parse_policy("threshold:2.5"),
            Ok(WatchPolicy::Threshold(2.5))
        );
        assert!(parse_policy("period:0").is_err());
        assert!(parse_policy("period:x").is_err());
        assert!(parse_policy("threshold:NaN").is_err());
        assert!(parse_policy("whenever").is_err());
    }
}

//! The one JSON string encoder.
//!
//! Three hand-rolled escapers had grown independently (the bench report,
//! `moara-cli`'s `--json` output, and the gateway's response encoding all
//! need one); this module is the shared superset they now delegate to.

use std::fmt::Write as _;

/// Renders `s` as a JSON string literal, quotes included.
///
/// Escapes quotes, backslashes, the common whitespace escapes (`\n`,
/// `\r`, `\t`), and all other control characters as `\u00XX`. Non-ASCII
/// characters pass through verbatim (JSON is UTF-8; no `\u` round-trip
/// needed).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_gain_only_quotes() {
        assert_eq!(escape("hello"), "\"hello\"");
        assert_eq!(escape(""), "\"\"");
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("\\\""), "\"\\\\\\\"\"");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("a\rb"), "\"a\\rb\"");
        assert_eq!(escape("a\tb"), "\"a\\tb\"");
        assert_eq!(escape("a\x00b"), "\"a\\u0000b\"");
        assert_eq!(escape("\x1f"), "\"\\u001f\"");
        assert_eq!(escape("\x07"), "\"\\u0007\"");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(escape("héllo"), "\"héllo\"");
        assert_eq!(escape("日本語"), "\"日本語\"");
        assert_eq!(escape("emoji 🦀"), "\"emoji 🦀\"");
    }
}

//! The one JSON string encoder.
//!
//! Three hand-rolled escapers had grown independently (the bench report,
//! `moara-cli`'s `--json` output, and the gateway's response encoding all
//! need one); this module is the shared superset they now delegate to.

use std::fmt::Write as _;

/// Renders `s` as a JSON string literal, quotes included.
///
/// Escapes quotes, backslashes, the common whitespace escapes (`\n`,
/// `\r`, `\t`), and all other control characters as `\u00XX`. Non-ASCII
/// characters pass through verbatim (JSON is UTF-8; no `\u` round-trip
/// needed).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builder for one flat JSON object rendered on a single line — the
/// shared writer behind every stderr log sink (access log, slow-query
/// lines, alert transitions) and the crash-dump format, so they all
/// escape identically and stay machine-parsable.
///
/// Keys are written verbatim: callers pass identifier-like literals
/// (`"ts_ms"`, `"path"`), never untrusted input. Values go through
/// [`escape`] (strings) or plain `Display` (numbers, bools).
pub struct JsonLine {
    buf: String,
}

impl JsonLine {
    pub fn new() -> JsonLine {
        JsonLine {
            buf: String::with_capacity(128),
        }
    }

    fn key(&mut self, k: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// An escaped string field.
    pub fn str(mut self, k: &str, v: &str) -> JsonLine {
        self.key(k);
        self.buf.push_str(&escape(v));
        self
    }

    /// An unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> JsonLine {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// A float field, rendered via `Display` (so `1.0` prints as `1`,
    /// matching the historical hand-rolled alert lines).
    pub fn f64(mut self, k: &str, v: f64) -> JsonLine {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// A boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> JsonLine {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// A pre-rendered JSON value (already valid JSON — caller's duty).
    pub fn raw(mut self, k: &str, v: &str) -> JsonLine {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// The finished `{...}` line (no trailing newline).
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonLine {
    fn default() -> Self {
        JsonLine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_builds_flat_objects_in_field_order() {
        let line = JsonLine::new()
            .u64("ts_ms", 1_700_000_000_123)
            .str("path", "/v1/query?q=\"x\"")
            .bool("ok", true)
            .f64("value", 1.0)
            .f64("ratio", 0.25)
            .raw("nested", "null")
            .finish();
        assert_eq!(
            line,
            "{\"ts_ms\":1700000000123,\"path\":\"/v1/query?q=\\\"x\\\"\",\
             \"ok\":true,\"value\":1,\"ratio\":0.25,\"nested\":null}"
        );
        assert_eq!(JsonLine::new().finish(), "{}");
    }

    #[test]
    fn plain_strings_gain_only_quotes() {
        assert_eq!(escape("hello"), "\"hello\"");
        assert_eq!(escape(""), "\"\"");
    }

    #[test]
    fn quotes_and_backslashes_escape() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("\\\""), "\"\\\\\\\"\"");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("a\rb"), "\"a\\rb\"");
        assert_eq!(escape("a\tb"), "\"a\\tb\"");
        assert_eq!(escape("a\x00b"), "\"a\\u0000b\"");
        assert_eq!(escape("\x1f"), "\"\\u001f\"");
        assert_eq!(escape("\x07"), "\"\\u0007\"");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(escape("héllo"), "\"héllo\"");
        assert_eq!(escape("日本語"), "\"日本語\"");
        assert_eq!(escape("emoji 🦀"), "\"emoji 🦀\"");
    }
}

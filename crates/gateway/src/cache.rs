//! Materialized-view query cache: hot `GET /v1/query` texts are promoted
//! to standing subscriptions and served straight from memory.
//!
//! The cache sits between the gateway worker pool and the daemon event
//! loop. Workers call [`QueryCache::lookup`] before pushing a job — a hit
//! is answered in the worker thread without touching the event loop at
//! all, which is what buys sub-millisecond reads. Everything that owns
//! protocol state (installing the standing subscription, draining its
//! updates, releasing leases) stays on the daemon's single-threaded loop,
//! which drains the pending-promotion / pending-demotion queues this
//! structure accumulates.
//!
//! Consistency model: a cached entry is **invalidated by the incoming
//! `SubDelta`, never by a TTL**. When the standing result changes, the
//! entry turns stale and the next read falls through to a real tree walk
//! (reported as a miss); the walk's answer revalidates the entry if no
//! further delta arrived while it ran (a generation counter guards the
//! race). Served answers are therefore never staler than one delta
//! propagation, and the observable header sequence around a write is
//! `hit → miss → hit`.
//!
//! Keys are *normalized* query text (whitespace runs outside `'...'`
//! string literals collapse to single spaces; literal contents are kept
//! verbatim, exactly as the query lexer treats them); the original text
//! is kept alongside for the subscription install, so normalization can
//! never change what is actually subscribed or walked.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs for [`QueryCache`] (the `--cache-*` daemon flags).
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Lookups of one key within [`CacheConfig::window`] that trigger
    /// promotion to a standing subscription (K in the design docs).
    pub promote_after: u32,
    /// The sliding window the promotion threshold counts over.
    pub window: Duration,
    /// Most keys tracked at once (cold counters and promoted entries
    /// combined); the least-recently-used entry is evicted at the cap.
    pub max_entries: usize,
    /// Promoted entries unused this long are demoted (their standing
    /// subscription is cancelled and its lease released).
    pub idle_after: Duration,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            promote_after: 3,
            window: Duration::from_secs(10),
            max_entries: 256,
            idle_after: Duration::from_secs(60),
        }
    }
}

/// One tracked query key.
struct Entry {
    /// Recent lookup instants while cold (bounded by `promote_after`).
    recent: VecDeque<Instant>,
    /// Last lookup (drives idle demotion).
    last_used: Instant,
    /// LRU clock value of the last lookup (drives capacity eviction).
    lru: u64,
    state: State,
}

enum State {
    /// Counting lookups toward promotion.
    Cold,
    /// Queued for the event loop to install a subscription.
    Promoting,
    /// Backed by a standing subscription.
    Promoted {
        /// The watch id of the standing subscription (opaque here; the
        /// daemon unsubscribes by it).
        token: u64,
        /// The standing result and its completeness, absent until the
        /// subscription's initial sync lands.
        result: Option<(String, bool)>,
        /// Set when a delta superseded the served result; a stale entry
        /// misses until a fresh tree walk revalidates it.
        stale: bool,
        /// Bumped on every standing update; walks capture it at start so
        /// a delta racing the walk keeps the entry stale.
        gen: u64,
    },
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// Watch token → key, for routing standing updates back.
    by_token: HashMap<u64, String>,
    /// Keys whose promotion the event loop must install: (key, original
    /// query text — the text that gets parsed and subscribed).
    pending_promotions: Vec<(String, String)>,
    /// Watch tokens of capacity-evicted entries the event loop must
    /// unsubscribe.
    pending_demotions: Vec<u64>,
    /// Monotonic LRU clock.
    tick: u64,
}

/// The shared materialized-view cache (see the module docs). All methods
/// take `&self`; gateway workers and the daemon loop share one `Arc`.
pub struct QueryCache {
    cfg: CacheConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    invalidations: AtomicU64,
    coalesced: AtomicU64,
}

/// Collapses whitespace runs to single spaces and trims — the cache key.
/// Whitespace inside `'...'` string literals is significant to the query
/// lexer, so literal spans (including an unterminated trailing one) are
/// copied verbatim: `name = 'a  b'` and `name = 'a b'` must never share
/// a key. Only used for keying; the original text is what gets parsed,
/// so two texts sharing a key differ at most in insignificant
/// whitespace.
pub fn normalize(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    let mut pending_space = false;
    let mut chars = q.trim().chars();
    while let Some(ch) = chars.next() {
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        out.push(ch);
        if ch == '\'' {
            // The lexer has no escape sequences: the next quote (if any)
            // terminates the literal.
            for c in chars.by_ref() {
                out.push(c);
                if c == '\'' {
                    break;
                }
            }
        }
    }
    out
}

impl QueryCache {
    /// An empty cache with the given tuning.
    pub fn new(cfg: CacheConfig) -> QueryCache {
        QueryCache {
            cfg,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                by_token: HashMap::new(),
                pending_promotions: Vec::new(),
                pending_demotions: Vec::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Answers a query from the standing result if it is fresh and
    /// complete, else records the lookup toward promotion and returns
    /// `None` (the caller walks the tree). Returns `(result, complete)`.
    pub fn lookup(&self, q: &str, now: Instant) -> Option<(String, bool)> {
        let key = normalize(q);
        let mut g = self.inner.lock().expect("cache lock");
        let g = &mut *g;
        g.tick += 1;
        let tick = g.tick;
        if let Some(e) = g.entries.get_mut(&key) {
            e.last_used = now;
            e.lru = tick;
            if let State::Promoted {
                result: Some((body, true)),
                stale: false,
                ..
            } = &e.state
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some((body.clone(), true));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            if matches!(e.state, State::Cold) {
                e.recent.push_back(now);
                while e
                    .recent
                    .front()
                    .is_some_and(|t| now.duration_since(*t) > self.cfg.window)
                {
                    e.recent.pop_front();
                }
                while e.recent.len() > self.cfg.promote_after as usize {
                    e.recent.pop_front();
                }
                if e.recent.len() >= self.cfg.promote_after.max(1) as usize {
                    e.recent.clear();
                    e.state = State::Promoting;
                    g.pending_promotions.push((key, q.to_owned()));
                }
            }
            return None;
        }
        // First sighting of this key.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if g.entries.len() >= self.cfg.max_entries.max(1) {
            evict_lru(g, &self.demotions);
        }
        let mut e = Entry {
            recent: VecDeque::new(),
            last_used: now,
            lru: tick,
            state: State::Cold,
        };
        e.recent.push_back(now);
        if self.cfg.promote_after <= 1 {
            e.recent.clear();
            e.state = State::Promoting;
            g.pending_promotions.push((key.clone(), q.to_owned()));
        }
        g.entries.insert(key, e);
        None
    }

    /// Promotions queued by [`QueryCache::lookup`] that the event loop
    /// must install: `(key, original query text)` pairs.
    pub fn take_pending_promotions(&self) -> Vec<(String, String)> {
        std::mem::take(&mut self.inner.lock().expect("cache lock").pending_promotions)
    }

    /// Watch tokens of capacity-evicted promoted entries; the event loop
    /// must unsubscribe each.
    pub fn take_pending_demotions(&self) -> Vec<u64> {
        std::mem::take(&mut self.inner.lock().expect("cache lock").pending_demotions)
    }

    /// The event loop installed a standing subscription for `key`.
    /// Returns false when the entry was evicted while the install was in
    /// flight — the caller must unsubscribe `token` right back.
    pub fn promoted(&self, key: &str, token: u64) -> bool {
        let mut g = self.inner.lock().expect("cache lock");
        match g.entries.get_mut(key) {
            Some(e) if matches!(e.state, State::Promoting) => {
                e.state = State::Promoted {
                    token,
                    result: None,
                    stale: false,
                    gen: 0,
                };
                g.by_token.insert(token, key.to_owned());
                self.promotions.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The promotion could not be installed (the text failed to parse);
    /// the key drops back to cold counting.
    pub fn promotion_failed(&self, key: &str) {
        let mut g = self.inner.lock().expect("cache lock");
        if let Some(e) = g.entries.get_mut(key) {
            if matches!(e.state, State::Promoting) {
                e.state = State::Cold;
            }
        }
    }

    /// Folds one standing-subscription update into its entry. The first
    /// update arms the entry; later ones supersede what was being served,
    /// so the entry turns stale until a walk revalidates it.
    pub fn on_update(&self, token: u64, body: String, complete: bool) {
        let mut g = self.inner.lock().expect("cache lock");
        let g = &mut *g;
        let Some(key) = g.by_token.get(&token) else {
            return;
        };
        if let Some(e) = g.entries.get_mut(key) {
            if let State::Promoted {
                result, stale, gen, ..
            } = &mut e.state
            {
                *gen += 1;
                let had_result = result.is_some();
                *result = Some((body, complete));
                if had_result {
                    *stale = true;
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                } else {
                    *stale = false;
                }
            }
        }
    }

    /// The entry's current generation, captured by the event loop when a
    /// walk for `key` starts ([`QueryCache::revalidate`] checks it).
    /// `None` when the key is not promoted.
    pub fn gen_of(&self, key: &str) -> Option<u64> {
        let g = self.inner.lock().expect("cache lock");
        match g.entries.get(key).map(|e| &e.state) {
            Some(State::Promoted { gen, .. }) => Some(*gen),
            _ => None,
        }
    }

    /// A tree walk for `key` finished with `body`. Clears staleness only
    /// if the entry saw no standing update since the walk started
    /// (`gen_at_start` still current) and its initial sync has landed —
    /// otherwise the walk's answer may itself already be superseded.
    pub fn revalidate(&self, key: &str, gen_at_start: u64, body: &str, complete: bool) {
        if !complete {
            return; // never serve partial answers from memory
        }
        let mut g = self.inner.lock().expect("cache lock");
        if let Some(e) = g.entries.get_mut(key) {
            if let State::Promoted {
                result, stale, gen, ..
            } = &mut e.state
            {
                if *gen == gen_at_start && result.is_some() {
                    *result = Some((body.to_owned(), true));
                    *stale = false;
                }
            }
        }
    }

    /// Demotes promoted entries idle past the configured window (and
    /// forgets idle cold counters). Returns the watch tokens to
    /// unsubscribe.
    pub fn demote_idle(&self, now: Instant) -> Vec<u64> {
        let mut g = self.inner.lock().expect("cache lock");
        let idle_after = self.cfg.idle_after;
        let mut tokens = Vec::new();
        g.entries.retain(|_, e| {
            if now.saturating_duration_since(e.last_used) <= idle_after {
                return true;
            }
            match e.state {
                State::Promoted { token, .. } => {
                    tokens.push(token);
                    false
                }
                State::Cold => false,
                // Let the in-flight install land first; the next sweep
                // catches it as a promoted entry.
                State::Promoting => true,
            }
        });
        for t in &tokens {
            g.by_token.remove(t);
        }
        self.demotions
            .fetch_add(tokens.len() as u64, Ordering::Relaxed);
        tokens
    }

    /// Every live standing-subscription token (shutdown cancels them all
    /// so peers GC the leases instead of waiting them out).
    pub fn tokens(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("cache lock")
            .by_token
            .keys()
            .copied()
            .collect()
    }

    /// Whether `token` is a live cache-held standing subscription (the
    /// event loop filters its dirty-watch hints through this before
    /// draining, so it never steals a client watch's updates).
    pub fn has_token(&self, token: u64) -> bool {
        self.inner
            .lock()
            .expect("cache lock")
            .by_token
            .contains_key(&token)
    }

    /// Counts one coalesced (single-flight) waiter.
    pub fn note_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads served from the standing result.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Reads that fell through to a tree walk.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Keys promoted to standing subscriptions.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Promoted entries demoted (idle or capacity-evicted).
    pub fn demotions(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }

    /// Standing updates that superseded a served result.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Waiters that shared another request's in-flight tree walk.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Keys currently tracked (cold and promoted).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// True when no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently backed by a standing subscription.
    pub fn promoted_len(&self) -> usize {
        self.inner.lock().expect("cache lock").by_token.len()
    }
}

/// Evicts the least-recently-used entry, preferring cold entries, then
/// promoted ones (a promoted entry's token goes to the demotion queue so
/// the event loop releases its lease), and only as a last resort an
/// in-flight promotion — so the map never outgrows `max_entries` even
/// when every entry is `Promoting`. Evicting a `Promoting` entry is
/// safe: when its install lands, [`QueryCache::promoted`] finds no entry
/// and returns false, and the caller unsubscribes the orphan.
fn evict_lru(g: &mut Inner, demotions: &AtomicU64) {
    fn rank(s: &State) -> u8 {
        match s {
            State::Cold => 0,
            State::Promoted { .. } => 1,
            State::Promoting => 2,
        }
    }
    let victim = g
        .entries
        .iter()
        .min_by_key(|(_, e)| (rank(&e.state), e.lru))
        .map(|(k, _)| k.clone());
    let Some(key) = victim else { return };
    if let Some(e) = g.entries.remove(&key) {
        if let State::Promoted { token, .. } = e.state {
            g.by_token.remove(&token);
            g.pending_demotions.push(token);
            demotions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(promote_after: u32, max_entries: usize) -> CacheConfig {
        CacheConfig {
            promote_after,
            window: Duration::from_secs(10),
            max_entries,
            idle_after: Duration::from_secs(60),
        }
    }

    /// Drives a key through promotion: K misses, install, initial sync.
    fn warm(cache: &QueryCache, q: &str, token: u64, body: &str) {
        let now = Instant::now();
        for _ in 0..8 {
            if !cache.take_pending_promotions().is_empty() {
                break;
            }
            assert!(cache.lookup(q, now).is_none());
        }
        assert!(cache.promoted(&normalize(q), token));
        cache.on_update(token, body.to_owned(), true);
    }

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize("  SELECT   count(*) \t WHERE A = 1 "),
            "SELECT count(*) WHERE A = 1"
        );
        assert_eq!(normalize("a"), "a");
        assert_eq!(normalize(""), "");
        assert_ne!(normalize("A = 1"), normalize("A = 2"));
    }

    #[test]
    fn normalization_preserves_string_literals_verbatim() {
        // The lexer keeps whitespace inside '...' verbatim, so distinct
        // literals must yield distinct keys.
        assert_ne!(
            normalize("WHERE name = 'a  b'"),
            normalize("WHERE name = 'a b'")
        );
        assert_ne!(
            normalize("WHERE name = 'a\tb'"),
            normalize("WHERE name = 'a b'")
        );
        assert_eq!(normalize("WHERE  name =  'a  b' "), "WHERE name = 'a  b'");
        // Whitespace around (but not inside) literals still collapses.
        assert_eq!(
            normalize("count 'x  y'   AND  'p q'"),
            "count 'x  y' AND 'p q'"
        );
        // An unterminated literal is copied verbatim, never collapsed
        // into a terminated lookalike's key.
        assert_ne!(normalize("name = 'a  b"), normalize("name = 'a b"));
    }

    #[test]
    fn promotion_needs_k_hits_within_window() {
        let cache = QueryCache::new(cfg(3, 16));
        let now = Instant::now();
        assert!(cache.lookup("q", now).is_none());
        assert!(cache.lookup("q", now).is_none());
        assert!(
            cache.take_pending_promotions().is_empty(),
            "below threshold"
        );
        assert!(cache.lookup("q", now).is_none());
        let pending = cache.take_pending_promotions();
        assert_eq!(pending, vec![("q".to_owned(), "q".to_owned())]);
        // Two lookups inside the window plus one far outside it must NOT
        // promote: the window slid past the old ones.
        let later = now + Duration::from_secs(60);
        assert!(cache.lookup("r", now).is_none());
        assert!(cache.lookup("r", now).is_none());
        assert!(cache.lookup("r", later).is_none());
        assert!(cache.take_pending_promotions().is_empty(), "window slid");
    }

    #[test]
    fn hit_serves_only_fresh_complete_results() {
        let cache = QueryCache::new(cfg(2, 16));
        let now = Instant::now();
        assert!(cache.lookup("q", now).is_none());
        assert!(cache.lookup("q", now).is_none());
        let pending = cache.take_pending_promotions();
        assert_eq!(pending.len(), 1);
        assert!(cache.promoted("q", 7));
        // Promoted but no initial sync yet: still a miss.
        assert!(cache.lookup("q", now).is_none());
        cache.on_update(7, "5".to_owned(), true);
        assert_eq!(cache.lookup("q", now), Some(("5".to_owned(), true)));
        assert_eq!(cache.hits(), 1);
        // Whitespace variants share the entry.
        assert_eq!(cache.lookup("  q ", now), Some(("5".to_owned(), true)));
        // An incomplete standing result is never served.
        cache.on_update(7, "4".to_owned(), false);
        assert!(cache.lookup("q", now).is_none());
    }

    #[test]
    fn delta_invalidates_and_walk_revalidates() {
        let cache = QueryCache::new(cfg(2, 16));
        warm(&cache, "q", 7, "5");
        let now = Instant::now();
        assert!(cache.lookup("q", now).is_some(), "serving");
        // A delta supersedes the served result: stale, so the next read
        // walks (miss), observing hit -> miss -> hit.
        cache.on_update(7, "6".to_owned(), true);
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.lookup("q", now).is_none(), "stale entry misses");
        let gen = cache.gen_of("q").expect("promoted");
        cache.revalidate("q", gen, "6", true);
        assert_eq!(cache.lookup("q", now), Some(("6".to_owned(), true)));
    }

    #[test]
    fn racing_delta_keeps_entry_stale_until_a_clean_walk() {
        let cache = QueryCache::new(cfg(2, 16));
        warm(&cache, "q", 7, "5");
        cache.on_update(7, "6".to_owned(), true); // stale now
        let gen = cache.gen_of("q").expect("promoted");
        // Another delta lands while the walk runs: its answer may be
        // stale itself, so revalidation must not stick.
        cache.on_update(7, "7".to_owned(), true);
        cache.revalidate("q", gen, "6", true);
        assert!(cache.lookup("q", Instant::now()).is_none(), "still stale");
        let gen = cache.gen_of("q").expect("promoted");
        cache.revalidate("q", gen, "7", true);
        assert_eq!(
            cache.lookup("q", Instant::now()),
            Some(("7".to_owned(), true))
        );
        // An incomplete walk answer never revalidates.
        cache.on_update(7, "8".to_owned(), true);
        let gen = cache.gen_of("q").expect("promoted");
        cache.revalidate("q", gen, "8", false);
        assert!(cache.lookup("q", Instant::now()).is_none());
    }

    #[test]
    fn capacity_eviction_prefers_cold_lru_and_demotes_promoted() {
        let cache = QueryCache::new(cfg(2, 2));
        let now = Instant::now();
        warm(&cache, "hot", 1, "1");
        assert!(cache.lookup("cold1", now).is_none());
        // Inserting a third key evicts the LRU cold entry, not the
        // promoted one.
        assert!(cache
            .lookup("cold2", now + Duration::from_millis(1))
            .is_none());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("hot", now).is_some(), "promoted survived");
        assert!(cache.take_pending_demotions().is_empty());
        // With only promoted entries left, the cap demotes the LRU one.
        warm(&cache, "hot2", 2, "2");
        assert_eq!(cache.len(), 2, "cold2 evicted for hot2's slot");
        assert!(cache.lookup("hot", now).is_some());
        assert!(cache.lookup("hot2", now).is_some());
        assert!(cache.lookup("newkey", now).is_none());
        let demoted = cache.take_pending_demotions();
        assert_eq!(demoted.len(), 1, "a promoted entry lost its slot");
        assert_eq!(cache.promoted_len(), 1);
    }

    #[test]
    fn all_promoting_entries_still_respect_the_capacity_cap() {
        // --cache-promote-after 1 turns every first sighting into a
        // Promoting entry; a burst of distinct keys must not grow the
        // map past max_entries between event-loop drains.
        let cache = QueryCache::new(cfg(1, 2));
        let now = Instant::now();
        for i in 0..8 {
            assert!(cache.lookup(&format!("q{i}"), now).is_none());
            assert!(cache.len() <= 2, "cap held at insert {i}");
        }
        // The evicted keys' installs land on nothing: promoted() reports
        // false so the caller unsubscribes the orphan token.
        assert!(!cache.promoted("q0", 1));
        assert_eq!(cache.promoted_len(), 0);
        // A surviving key's install still lands normally.
        assert!(cache.promoted("q7", 2));
        assert!(cache.has_token(2));
        assert!(!cache.has_token(1));
        assert_eq!(cache.promoted_len(), 1);
    }

    #[test]
    fn idle_entries_demote_and_release_tokens() {
        let cache = QueryCache::new(cfg(2, 16));
        warm(&cache, "q", 9, "5");
        assert_eq!(cache.tokens(), vec![9]);
        // Not idle yet: nothing demoted.
        assert!(cache.demote_idle(Instant::now()).is_empty());
        let tokens = cache.demote_idle(Instant::now() + Duration::from_secs(120));
        assert_eq!(tokens, vec![9]);
        assert_eq!(cache.demotions(), 1);
        assert!(cache.is_empty());
        assert!(cache.tokens().is_empty());
        // Updates for a demoted token are ignored, not resurrected.
        cache.on_update(9, "6".to_owned(), true);
        assert!(cache.is_empty());
    }

    #[test]
    fn promoted_install_races_eviction_safely() {
        let cache = QueryCache::new(cfg(1, 16));
        assert!(cache.lookup("q", Instant::now()).is_none());
        let pending = cache.take_pending_promotions();
        assert_eq!(pending.len(), 1, "promote_after=1 promotes immediately");
        // Both eviction paths spare in-flight promotions, so the idle
        // sweep leaves the entry for the install to land on ...
        let _ = cache.demote_idle(Instant::now() + Duration::from_secs(120));
        assert!(cache.promoted("q", 3), "install lands after the sweep");
        assert_eq!(cache.promoted_len(), 1);
        // ... but an install for a key the cache never tracked (or that
        // failed back to cold) reports false so the caller unsubscribes.
        assert!(!cache.promoted("never-tracked", 4));
        assert_eq!(cache.promoted_len(), 1);
    }

    #[test]
    fn promotion_failure_returns_to_cold() {
        let cache = QueryCache::new(cfg(1, 16));
        assert!(cache.lookup("not a query", Instant::now()).is_none());
        let pending = cache.take_pending_promotions();
        assert_eq!(pending.len(), 1);
        cache.promotion_failed("not a query");
        // The key keeps counting (and re-queues) instead of wedging.
        assert!(cache.lookup("not a query", Instant::now()).is_none());
        assert_eq!(cache.take_pending_promotions().len(), 1);
    }

    #[test]
    fn counters_track_hits_misses_and_coalesces() {
        let cache = QueryCache::new(cfg(2, 16));
        warm(&cache, "q", 1, "5");
        let now = Instant::now();
        assert!(cache.lookup("q", now).is_some());
        assert!(cache.lookup("q", now).is_some());
        assert!(cache.lookup("other", now).is_none());
        cache.note_coalesced();
        assert_eq!(cache.hits(), 2);
        // 2 cold misses warming "q" + 1 for "other".
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.promotions(), 1);
        assert_eq!(cache.coalesced(), 1);
    }
}

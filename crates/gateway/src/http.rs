//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Deliberately small: request line + headers + optional
//! `Content-Length` body, percent-decoded query parameters, keep-alive.
//! No chunked transfer, no TLS, no multipart — the gateway's endpoints
//! need none of them, and any `Transfer-Encoding` header is rejected
//! outright (501) rather than ignored: a body the parser does not
//! consume would desync the next request on the keep-alive connection
//! (request smuggling, RFC 7230 §3.3.2). Hard caps on line length,
//! header count, and body size keep a hostile client from ballooning
//! memory, the same hardening posture as the wire codec's frame and
//! nesting caps.
//!
//! The core entry point is [`parse_request`], an *incremental* parser
//! over a byte buffer: it never blocks and never consumes a partial
//! request, which is what lets the reactor (`reactor.rs`) run it on
//! whatever bytes have arrived so far and simply wait for more on
//! [`ParseStep::Incomplete`]. [`read_request`] wraps it for blocking
//! `BufRead` callers (tests, mostly).

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string stripped (`/v1/query`).
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub params: Vec<(String, String)>,
    /// Header names lower-cased; values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// False for `HTTP/1.0` or an explicit `Connection: close`.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A header value (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before (or mid-) request.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed or unsupported request; `msg` is safe to echo in the
    /// error body, `status` is the HTTP code to answer with (400 for
    /// malformed, 413 over-limit, 501 unsupported).
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Safe-to-echo description.
        msg: &'static str,
    },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Outcome of one [`parse_request`] call over a byte buffer.
#[derive(Debug)]
pub enum ParseStep {
    /// The buffer does not yet hold a complete request; read more bytes
    /// and call again. Nothing was consumed.
    Incomplete,
    /// One full request parsed; the first `consumed` bytes of the
    /// buffer belong to it (headers *and* body — a rejected route never
    /// leaves an unread body behind to desync the next request).
    Done {
        /// The parsed request.
        req: Box<HttpRequest>,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// Malformed or unsupported request. The connection cannot be
    /// resynchronized (the body boundary is unknown), so the caller
    /// must answer `status` and close.
    Reject {
        /// HTTP status to answer with.
        status: u16,
        /// Safe-to-echo description.
        msg: &'static str,
    },
}

fn reject(status: u16, msg: &'static str) -> ParseStep {
    ParseStep::Reject { status, msg }
}

/// Incrementally parses one request off the front of `buf`.
///
/// Returns [`ParseStep::Incomplete`] until the buffer holds the full
/// head *and* `Content-Length` body; the caller keeps appending bytes
/// and re-calling. On [`ParseStep::Done`] the caller drains `consumed`
/// bytes — anything after them is pipelined input for the next call.
///
/// Smuggling defenses (RFC 7230 §3.3.2 / §3.3.3):
/// * duplicate `Content-Length` headers (or comma-separated values)
///   that disagree are rejected — the last value must not silently win,
///   or a front proxy and this parser can frame the body differently;
/// * any `Transfer-Encoding` header is rejected with 501 — this parser
///   does not implement chunked framing, and ignoring the header would
///   leave the chunked body in the buffer to be parsed as the *next*
///   request.
pub fn parse_request(buf: &[u8]) -> ParseStep {
    // Split the head into lines as bytes arrive. `pos` tracks the scan
    // cursor; the head ends at the first empty line.
    let mut pos = 0usize;
    let mut lines: Vec<&str> = Vec::new();
    let head_end = loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            if buf.len() - pos > MAX_LINE {
                return reject(400, "line too long");
            }
            return ParseStep::Incomplete;
        };
        let mut line = &buf[pos..pos + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE {
            return reject(400, "line too long");
        }
        if line.is_empty() {
            if lines.is_empty() {
                return reject(400, "empty request line");
            }
            break pos + nl + 1;
        }
        // +1: the request line rides in front of the header lines.
        if lines.len() > MAX_HEADERS {
            return reject(400, "too many headers");
        }
        let Ok(text) = std::str::from_utf8(line) else {
            return reject(400, "non-UTF-8 request");
        };
        lines.push(text);
        pos += nl + 1;
    };

    let mut parts = lines[0].split_ascii_whitespace();
    let Some(method) = parts.next() else {
        return reject(400, "empty request line");
    };
    let method = method.to_ascii_uppercase();
    let Some(target) = parts.next() else {
        return reject(400, "missing request path");
    };
    let Some(version) = parts.next() else {
        return reject(400, "missing HTTP version");
    };
    if !version.starts_with("HTTP/1.") {
        return reject(400, "unsupported HTTP version");
    }
    let mut keep_alive = version != "HTTP/1.0";

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode_path(raw_path);
    let params = raw_query.map(parse_query).unwrap_or_default();

    let mut headers = Vec::with_capacity(lines.len() - 1);
    let mut content_length: Option<usize> = None;
    for line in &lines[1..] {
        let Some((name, value)) = line.split_once(':') else {
            return reject(400, "bad header");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        match name.as_str() {
            "content-length" => {
                // A header repeated across lines arrives here once per
                // line; a comma-joined repeat arrives as one value.
                // Either way every element must agree (identical
                // repeats are legal per RFC 7230 §3.3.2's proxy
                // allowance; *conflicting* ones are an attack).
                for piece in value.split(',') {
                    let Ok(n) = piece.trim().parse::<usize>() else {
                        return reject(400, "bad content-length");
                    };
                    match content_length {
                        Some(prev) if prev != n => {
                            return reject(400, "conflicting content-length");
                        }
                        _ => content_length = Some(n),
                    }
                }
            }
            "transfer-encoding" => {
                return reject(501, "transfer-encoding not supported");
            }
            "connection" => {
                // Comma-separated token list, case-insensitive whole
                // tokens only: `Connection: not-close-really` must not
                // match `close`.
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return reject(413, "body too large");
    }
    if buf.len() < head_end + content_length {
        return ParseStep::Incomplete;
    }
    let body = buf[head_end..head_end + content_length].to_vec();

    ParseStep::Done {
        req: Box::new(HttpRequest {
            method,
            path,
            params,
            headers,
            body,
            keep_alive,
        }),
        consumed: head_end + content_length,
    }
}

/// Parses one request off a blocking reader — [`parse_request`] fed one
/// byte at a time (the reader is buffered, so this is cheap). Used by
/// tests and simple clients; the reactor calls [`parse_request`]
/// directly. [`HttpError::Closed`] on a clean EOF between requests.
pub fn read_request(reader: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let mut buf = Vec::new();
    loop {
        match parse_request(&buf) {
            ParseStep::Done { req, .. } => return Ok(*req),
            ParseStep::Reject { status, msg } => return Err(HttpError::Bad { status, msg }),
            ParseStep::Incomplete => {}
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(_) => buf.push(byte[0]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// One response, rendered by [`HttpResponse::write_to`].
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Optional `Allow` header (405 and OPTIONS responses carry one).
    pub allow: Option<&'static str>,
    /// Optional `X-Moara-Cache` header (`hit` / `miss` / `coalesced` on
    /// query responses when the result cache is enabled).
    pub cache: Option<&'static str>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            allow: None,
            cache: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type,
            body: body.into().into_bytes(),
            allow: None,
            cache: None,
        }
    }

    /// Attaches an `Allow` header (builder-style).
    pub fn with_allow(mut self, allow: &'static str) -> HttpResponse {
        self.allow = Some(allow);
        self
    }

    /// Attaches an `X-Moara-Cache` header (builder-style).
    pub fn with_cache(mut self, cache: &'static str) -> HttpResponse {
        self.cache = Some(cache);
        self
    }

    /// The standard JSON error envelope.
    pub fn error(status: u16, msg: &str) -> HttpResponse {
        HttpResponse::json(
            status,
            format!("{{\"error\":{}}}\n", crate::json::escape(msg)),
        )
    }

    /// The canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes status line, headers, and body.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        self.write_inner(out, keep_alive, true)
    }

    /// Writes status line and headers only — the `HEAD` rendering:
    /// identical headers (`Content-Length` included) without the body.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_head_to(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        self.write_inner(out, keep_alive, false)
    }

    fn write_inner(
        &self,
        out: &mut impl Write,
        keep_alive: bool,
        include_body: bool,
    ) -> std::io::Result<()> {
        let conn = if keep_alive { "keep-alive" } else { "close" };
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        )?;
        if let Some(allow) = self.allow {
            write!(out, "Allow: {allow}\r\n")?;
        }
        if let Some(cache) = self.cache {
            write!(out, "X-Moara-Cache: {cache}\r\n")?;
        }
        write!(out, "Connection: {conn}\r\n\r\n")?;
        if include_body {
            out.write_all(&self.body)?;
        }
        out.flush()
    }
}

/// Probes whether the peer of a streaming (write-mostly) socket is still
/// connected: reads one byte with a 1 ms timeout. EOF or a hard error
/// means the peer hung up; a timeout (nothing to read) or stray bytes
/// mean it is still there. Used by the daemon's control-plane watch
/// loop — quiescent streams have no writes to fail, so this is their
/// only hang-up signal. Leaves the socket's read timeout at 1 ms.
pub fn socket_alive(stream: &mut std::net::TcpStream) -> bool {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(1)));
    let mut probe = [0u8; 1];
    match stream.read(&mut probe) {
        Ok(0) => false, // EOF: peer gone
        Ok(_) => true,  // stray bytes: ignore
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            true
        }
        Err(_) => false,
    }
}

/// Decodes `%XX` escapes and `+`-as-space — the `x-www-form-urlencoded`
/// rules, correct for query strings and form bodies only. For request
/// paths use [`percent_decode_path`].
pub fn percent_decode(s: &str) -> String {
    decode_inner(s, true)
}

/// Decodes `%XX` escapes, leaving `+` alone: RFC 3986 gives `+` no
/// special meaning in path segments, so `/v1/attrs/a+b` names `a+b`,
/// not `a b` (encode a literal space as `%20`).
pub fn percent_decode_path(s: &str) -> String {
    decode_inner(s, false)
}

fn decode_inner(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits `a=1&b=two` into decoded pairs (also used for form bodies).
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query_params() {
        let req = parse(
            "GET /v1/query?q=SELECT%20count(*)%20WHERE%20A+%3D%201&x=y HTTP/1.1\r\n\
             Host: localhost\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.param("q"), Some("SELECT count(*) WHERE A = 1"));
        assert_eq!(req.param("x"), Some("y"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req =
            parse("POST /v1/attrs HTTP/1.1\r\nContent-Length: 7\r\n\r\nA=1&B=2extra-not-read")
                .unwrap();
        assert_eq!(req.body, b"A=1&B=2");
    }

    #[test]
    fn http10_and_connection_close_disable_keep_alive() {
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn connection_header_matches_whole_tokens_not_substrings() {
        // `not-close-really` contains the substring `close` but is not
        // the `close` token: keep-alive must survive.
        let req = parse("GET / HTTP/1.1\r\nConnection: not-close-really\r\n\r\n").unwrap();
        assert!(req.keep_alive, "substring must not match");
        // Tokens are matched case-insensitively within comma lists.
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: x-upgrade, CLOSE\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        // HTTP/1.0 with an explicit keep-alive token opts back in.
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        // `keepalive-ish` is not the keep-alive token.
        assert!(
            !parse("GET / HTTP/1.0\r\nConnection: keepalive-ish\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn conflicting_content_length_headers_are_rejected() {
        // Two headers that disagree: classic CL.CL smuggling vector.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        // Comma-joined values that disagree.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 5, 6\r\n\r\nhello!"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        // Identical repeats are legal (some proxies fold headers).
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.body, b"hello");
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn transfer_encoding_is_rejected_with_501() {
        // Ignoring Transfer-Encoding would leave the chunked body in the
        // buffer to be parsed as the next request (smuggling); the
        // parser refuses up front instead.
        for te in ["chunked", "gzip, chunked", "identity"] {
            let raw = format!("POST / HTTP/1.1\r\nTransfer-Encoding: {te}\r\n\r\n");
            assert!(
                matches!(
                    parse(&raw),
                    Err(HttpError::Bad {
                        status: 501,
                        msg: "transfer-encoding not supported"
                    })
                ),
                "{te}"
            );
        }
    }

    #[test]
    fn incremental_parse_waits_for_full_head_and_body() {
        let raw = b"POST /v1/attrs HTTP/1.1\r\nContent-Length: 7\r\n\r\nA=1&B=2";
        // Every strict prefix is Incomplete; the full buffer is Done.
        for cut in 0..raw.len() {
            assert!(
                matches!(parse_request(&raw[..cut]), ParseStep::Incomplete),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        match parse_request(raw) {
            ParseStep::Done { req, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(req.body, b"A=1&B=2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_parse_leaves_pipelined_bytes() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = match parse_request(raw) {
            ParseStep::Done { req, consumed } => (req, consumed),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(first.path, "/healthz");
        match parse_request(&raw[consumed..]) {
            ParseStep::Done { req, consumed } => {
                assert_eq!(req.path, "/metrics");
                assert_eq!(consumed, raw.len() - 25);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(matches!(
            parse(&huge),
            Err(HttpError::Bad { status: 400, .. })
        ));
        // An over-long line is rejected even before its newline arrives
        // (a slowloris must not buffer without bound).
        let unterminated = vec![b'x'; MAX_LINE + 2];
        assert!(matches!(
            parse_request(&unterminated),
            ParseStep::Reject { status: 400, .. }
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Err(HttpError::Bad { status: 413, .. })
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Bad { status: 400, .. })
        ));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: 1\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(
            parse(&many),
            Err(HttpError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn socket_alive_detects_peer_hangup() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        assert!(socket_alive(&mut server), "connected peer reads alive");
        drop(client);
        assert!(!socket_alive(&mut server), "hung-up peer reads dead");
    }

    #[test]
    fn percent_decoding_handles_edge_cases() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%E6%97%A5"), "日");
    }

    #[test]
    fn path_decoding_preserves_literal_plus() {
        // RFC 3986: `+` means itself in a path segment; only query
        // strings and form bodies use `+`-as-space.
        assert_eq!(percent_decode_path("/v1/attrs/a+b"), "/v1/attrs/a+b");
        assert_eq!(percent_decode_path("/v1/attrs/a%2Bb"), "/v1/attrs/a+b");
        assert_eq!(percent_decode_path("/v1/attrs/a%20b"), "/v1/attrs/a b");
        let req = parse("GET /v1/trace/a+b?q=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/trace/a+b", "path `+` survives");
        assert_eq!(req.param("q"), Some("a b"), "query `+` is a space");
    }

    #[test]
    fn response_renders_with_length_and_connection() {
        let mut out = Vec::new();
        HttpResponse::json(200, "{\"ok\":true}")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn cache_header_renders_when_set() {
        let mut out = Vec::new();
        HttpResponse::json(200, "{}")
            .with_cache("hit")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("X-Moara-Cache: hit\r\n"));
        let mut out = Vec::new();
        HttpResponse::json(200, "{}")
            .write_to(&mut out, true)
            .unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("X-Moara-Cache"));
    }
}

//! Minimal HTTP/1.1 request parsing and response writing on `std::io`.
//!
//! Deliberately small: request line + headers + optional
//! `Content-Length` body, percent-decoded query parameters, keep-alive.
//! No chunked transfer, no TLS, no multipart — the gateway's endpoints
//! need none of them. Hard caps on line length, header count, and body
//! size keep a hostile client from ballooning memory, the same hardening
//! posture as the wire codec's frame and nesting caps.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string stripped (`/v1/query`).
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub params: Vec<(String, String)>,
    /// Header names lower-cased; values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// False for `HTTP/1.0` or an explicit `Connection: close`.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A header value (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before (or mid-) request.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed or over-limit request; the description is safe to echo
    /// in a 400 body.
    Bad(&'static str),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one line (CRLF or bare LF terminated), bounded by [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Closed);
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::Bad("line too long"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Bad("non-UTF-8 request"))
}

/// Parses one request off `reader`. [`HttpError::Closed`] on a clean EOF
/// between requests (keep-alive connections end this way).
pub fn read_request(reader: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(HttpError::Bad("missing request path"))?;
    let version = parts.next().ok_or(HttpError::Bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad("unsupported HTTP version"));
    }
    let mut keep_alive = version != "HTTP/1.0";

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode_path(raw_path);
    let params = raw_query.map(parse_query).unwrap_or_default();

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Bad("too many headers"));
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::Bad("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Bad("bad content-length"))?;
            if content_length > MAX_BODY {
                return Err(HttpError::Bad("body too large"));
            }
        }
        if name == "connection" {
            let v = value.to_ascii_lowercase();
            if v.contains("close") {
                keep_alive = false;
            } else if v.contains("keep-alive") {
                keep_alive = true;
            }
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }

    Ok(HttpRequest {
        method,
        path,
        params,
        headers,
        body,
        keep_alive,
    })
}

/// One response, rendered by [`HttpResponse::write_to`].
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Optional `Allow` header (405 and OPTIONS responses carry one).
    pub allow: Option<&'static str>,
    /// Optional `X-Moara-Cache` header (`hit` / `miss` / `coalesced` on
    /// query responses when the result cache is enabled).
    pub cache: Option<&'static str>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            allow: None,
            cache: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type,
            body: body.into().into_bytes(),
            allow: None,
            cache: None,
        }
    }

    /// Attaches an `Allow` header (builder-style).
    pub fn with_allow(mut self, allow: &'static str) -> HttpResponse {
        self.allow = Some(allow);
        self
    }

    /// Attaches an `X-Moara-Cache` header (builder-style).
    pub fn with_cache(mut self, cache: &'static str) -> HttpResponse {
        self.cache = Some(cache);
        self
    }

    /// The standard JSON error envelope.
    pub fn error(status: u16, msg: &str) -> HttpResponse {
        HttpResponse::json(
            status,
            format!("{{\"error\":{}}}\n", crate::json::escape(msg)),
        )
    }

    /// The canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes status line, headers, and body.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        self.write_inner(out, keep_alive, true)
    }

    /// Writes status line and headers only — the `HEAD` rendering:
    /// identical headers (`Content-Length` included) without the body.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_head_to(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        self.write_inner(out, keep_alive, false)
    }

    fn write_inner(
        &self,
        out: &mut impl Write,
        keep_alive: bool,
        include_body: bool,
    ) -> std::io::Result<()> {
        let conn = if keep_alive { "keep-alive" } else { "close" };
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        )?;
        if let Some(allow) = self.allow {
            write!(out, "Allow: {allow}\r\n")?;
        }
        if let Some(cache) = self.cache {
            write!(out, "X-Moara-Cache: {cache}\r\n")?;
        }
        write!(out, "Connection: {conn}\r\n\r\n")?;
        if include_body {
            out.write_all(&self.body)?;
        }
        out.flush()
    }
}

/// Probes whether the peer of a streaming (write-mostly) socket is still
/// connected: reads one byte with a 1 ms timeout. EOF or a hard error
/// means the peer hung up; a timeout (nothing to read) or stray bytes
/// mean it is still there. Shared by the gateway's SSE loop and the
/// daemon's control-plane watch loop — quiescent streams have no writes
/// to fail, so this is their only hang-up signal. Leaves the socket's
/// read timeout at 1 ms.
pub fn socket_alive(stream: &mut std::net::TcpStream) -> bool {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(1)));
    let mut probe = [0u8; 1];
    match stream.read(&mut probe) {
        Ok(0) => false, // EOF: peer gone
        Ok(_) => true,  // stray bytes: ignore
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            true
        }
        Err(_) => false,
    }
}

/// Decodes `%XX` escapes and `+`-as-space — the `x-www-form-urlencoded`
/// rules, correct for query strings and form bodies only. For request
/// paths use [`percent_decode_path`].
pub fn percent_decode(s: &str) -> String {
    decode_inner(s, true)
}

/// Decodes `%XX` escapes, leaving `+` alone: RFC 3986 gives `+` no
/// special meaning in path segments, so `/v1/attrs/a+b` names `a+b`,
/// not `a b` (encode a literal space as `%20`).
pub fn percent_decode_path(s: &str) -> String {
    decode_inner(s, false)
}

fn decode_inner(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits `a=1&b=two` into decoded pairs (also used for form bodies).
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query_params() {
        let req = parse(
            "GET /v1/query?q=SELECT%20count(*)%20WHERE%20A+%3D%201&x=y HTTP/1.1\r\n\
             Host: localhost\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.param("q"), Some("SELECT count(*) WHERE A = 1"));
        assert_eq!(req.param("x"), Some("y"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req =
            parse("POST /v1/attrs HTTP/1.1\r\nContent-Length: 7\r\n\r\nA=1&B=2extra-not-read")
                .unwrap();
        assert_eq!(req.body, b"A=1&B=2");
    }

    #[test]
    fn http10_and_connection_close_disable_keep_alive() {
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(parse("nonsense\r\n\r\n"), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(matches!(parse(&huge), Err(HttpError::Bad(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn socket_alive_detects_peer_hangup() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        assert!(socket_alive(&mut server), "connected peer reads alive");
        drop(client);
        assert!(!socket_alive(&mut server), "hung-up peer reads dead");
    }

    #[test]
    fn percent_decoding_handles_edge_cases() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%E6%97%A5"), "日");
    }

    #[test]
    fn path_decoding_preserves_literal_plus() {
        // RFC 3986: `+` means itself in a path segment; only query
        // strings and form bodies use `+`-as-space.
        assert_eq!(percent_decode_path("/v1/attrs/a+b"), "/v1/attrs/a+b");
        assert_eq!(percent_decode_path("/v1/attrs/a%2Bb"), "/v1/attrs/a+b");
        assert_eq!(percent_decode_path("/v1/attrs/a%20b"), "/v1/attrs/a b");
        let req = parse("GET /v1/trace/a+b?q=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/trace/a+b", "path `+` survives");
        assert_eq!(req.param("q"), Some("a b"), "query `+` is a space");
    }

    #[test]
    fn response_renders_with_length_and_connection() {
        let mut out = Vec::new();
        HttpResponse::json(200, "{\"ok\":true}")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn cache_header_renders_when_set() {
        let mut out = Vec::new();
        HttpResponse::json(200, "{}")
            .with_cache("hit")
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("X-Moara-Cache: hit\r\n"));
        let mut out = Vec::new();
        HttpResponse::json(200, "{}")
            .write_to(&mut out, true)
            .unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("X-Moara-Cache"));
    }
}

//! The gateway's event-driven core: a sharded `epoll` readiness loop.
//!
//! The previous edge pinned one blocking worker thread per connection —
//! a 16-thread hard ceiling on concurrent keep-alive and SSE clients.
//! This module replaces it with reactors: every accepted socket is put
//! in nonblocking mode and registered with one of a few shard threads,
//! each running `epoll_wait` over thousands of connections and driving
//! a small per-connection state machine (incremental request parse →
//! route → await daemon reply → buffered response write → back to
//! parsing, or flip into an SSE stream). One daemon now holds tens of
//! thousands of open connections with a handful of threads.
//!
//! `epoll` is reached through raw `extern "C"` declarations (the same
//! no-new-deps pattern as `signal()` in `moarad`); Linux-only, like the
//! rest of the deployment story.
//!
//! What blocks where:
//! * the **acceptor** thread blocks in `accept()`, applies the
//!   connection cap, and round-robins sockets to shards;
//! * **shards** never block except in `epoll_wait` (bounded by the
//!   sweep interval). Cache hits, OPTIONS, routing errors, 429s are
//!   answered inline on the shard; everything needing protocol state
//!   crosses the existing [`GwJob`] channel into the daemon's event
//!   loop, which posts replies back through a per-shard [`Mailbox`]
//!   whose eventfd wakes the shard immediately;
//! * the **daemon** is unchanged: single-threaded, sole owner of
//!   protocol state.
//!
//! Middleware rides the same state machine: per-IP token buckets answer
//! 429 before routing, per-request deadlines answer 408 (checked both
//! by the periodic sweep and when a late reply lands), and every
//! connection event runs inside `catch_unwind` so one poisoned request
//! kills its connection, not the daemon.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{parse_request, HttpResponse, ParseStep};
use crate::server::{
    endpoint_class, finish_request, render_reply, route, sse_frame, AccessLogSink, GatewayHandle,
    GatewayOpts, GatewayStats, GwJob, GwReply, GwRequest, ReplySink,
};

/// Raw Linux syscall surface: `epoll` + `eventfd`, no libc crate.
mod sys {
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;

    /// Matches the kernel ABI: packed on x86-64 (the kernel declares
    /// the struct `__attribute__((packed))` there), natural alignment
    /// elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// The epoll data value reserved for a shard's wake eventfd (connection
/// ids start at 1).
const WAKE_TOKEN: u64 = 0;

/// How often a shard sweeps for idle/stalled/deadline-passed
/// connections; also bounds `epoll_wait` so the stop flag is observed.
const SWEEP_EVERY: Duration = Duration::from_millis(100);

/// Read chunk per readiness event.
const READ_CHUNK: usize = 16 * 1024;

/// Most buffered-but-unread input per connection (a full body plus
/// generous pipelining headroom) before the connection is dropped.
const IN_BUF_CAP: usize = crate::http::MAX_BODY + 64 * 1024;

/// Most unsent output buffered per connection before it is declared a
/// dead slow consumer (an SSE client that stopped reading must not
/// grow a frame queue without bound).
const OUT_BUF_CAP: usize = 1024 * 1024;

/// How long a connection with pending output may make zero write
/// progress before it is closed (the reactor's version of the old
/// worker-pool write timeout).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// An `eventfd` used to interrupt a shard's `epoll_wait` from other
/// threads (the daemon posting replies, the acceptor handing off
/// connections, `stop()`).
#[derive(Debug)]
struct WakeFd(RawFd);

impl WakeFd {
    fn new() -> WakeFd {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        assert!(fd >= 0, "eventfd failed");
        WakeFd(fd)
    }

    fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { sys::write(self.0, (&one as *const u64).cast(), 8) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        while unsafe { sys::read(self.0, buf.as_mut_ptr(), 8) } > 0 {}
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

/// One message from the daemon (or a dropped [`ReplySink`]) to a shard.
#[derive(Debug)]
pub(crate) enum Mail {
    /// A reply for connection `conn`'s request generation `gen`.
    Reply(GwReply),
    /// The daemon dropped the sink without a terminal reply — for an
    /// SSE stream this is the cancel signal (mirrors the old worker
    /// noticing its reply channel disconnect).
    Hangup,
}

/// A shard's inbound queue: the daemon's event loop posts replies here
/// and the eventfd wakes the shard out of `epoll_wait`, so reply
/// latency is syscall-bounded, not poll-interval-bounded.
#[derive(Debug)]
pub(crate) struct Mailbox {
    queue: Mutex<Vec<(u64, u64, Mail)>>,
    wake: WakeFd,
}

impl Mailbox {
    fn new() -> Arc<Mailbox> {
        Arc::new(Mailbox {
            queue: Mutex::new(Vec::new()),
            wake: WakeFd::new(),
        })
    }

    pub(crate) fn post(&self, conn: u64, gen: u64, mail: Mail) {
        self.queue.lock().unwrap().push((conn, gen, mail));
        self.wake.wake();
    }

    pub(crate) fn wake(&self) {
        self.wake.wake();
    }

    fn take(&self) -> Vec<(u64, u64, Mail)> {
        std::mem::take(&mut *self.queue.lock().unwrap())
    }
}

/// Where a connection's state machine currently is.
enum Phase {
    /// Parsing (or waiting for) the next request.
    Ready,
    /// A one-shot request is with the daemon.
    Await(Pending),
    /// A watch request is with the daemon; the first reply decides
    /// between SSE headers and an error status.
    SseAwait(Pending),
    /// Streaming Server-Sent Events until either side hangs up.
    Sse {
        started: Instant,
        method: String,
        path: String,
    },
}

/// Bookkeeping for a request handed to the daemon.
struct Pending {
    gen: u64,
    class: &'static str,
    method: String,
    path: String,
    started: Instant,
    deadline: Instant,
    head_only: bool,
    keep_alive: bool,
}

/// One connection owned by a shard.
struct Conn {
    /// This connection's key in the shard map — [`ReplySink`]s address
    /// mailbox posts with it.
    id: u64,
    stream: TcpStream,
    peer: String,
    ip: IpAddr,
    buf_in: Vec<u8>,
    buf_out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// Bumped per request handed to the daemon; a reply whose gen does
    /// not match the live request is stale (e.g. arrived after its 408)
    /// and is dropped.
    gen: u64,
    /// Shared with [`ReplySink`]s: once true, daemon sends fail, which
    /// is the hang-up signal that GCs watch subscriptions.
    closed: Arc<AtomicBool>,
    close_after_write: bool,
    dead: bool,
    interest_out: bool,
    last_activity: Instant,
    /// When the currently-buffered partial request head started
    /// arriving (drives the slowloris header timeout).
    header_started: Option<Instant>,
    /// When pending output last made zero progress.
    write_stalled_since: Option<Instant>,
}

/// Shard context shared by the connection-handling helpers (split from
/// the connection map so helpers can borrow a `Conn` mutably alongside
/// it).
struct Ctx {
    tx: Sender<GwJob>,
    stats: Arc<GatewayStats>,
    mailbox: Arc<Mailbox>,
    limiter: Option<Arc<crate::middleware::TokenBuckets>>,
    cache: Option<Arc<crate::cache::QueryCache>>,
    access_log: Option<AccessLogSink>,
    request_timeout: Duration,
    idle_timeout: Duration,
    header_timeout: Duration,
    max_sse: i64,
    panic_on_path: Option<String>,
}

struct Shard {
    epfd: RawFd,
    mailbox: Arc<Mailbox>,
    incoming: Arc<Mutex<Vec<TcpStream>>>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    stop: Arc<AtomicBool>,
    ctx: Ctx,
}

/// Boots the acceptor and shard threads on `listener`; jobs flow into
/// `tx` (drained by the daemon's event loop).
///
/// # Panics
///
/// Panics if the listener address cannot be read, `epoll`/`eventfd`
/// creation fails, or threads cannot spawn — all boot-time process
/// failures.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    tx: Sender<GwJob>,
    opts: GatewayOpts,
) -> GatewayHandle {
    let addr = listener.local_addr().expect("gateway listener addr");
    let stats = Arc::new(GatewayStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let shard_count = if opts.shards > 0 {
        opts.shards
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    };
    let limiter = (opts.rate_limit > 0.0).then(|| {
        let burst = if opts.rate_burst > 0.0 {
            opts.rate_burst
        } else {
            (opts.rate_limit * 2.0).max(1.0)
        };
        Arc::new(crate::middleware::TokenBuckets::new(opts.rate_limit, burst))
    });

    let mut mailboxes = Vec::with_capacity(shard_count);
    let mut queues = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        let mailbox = Mailbox::new();
        let incoming: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        assert!(epfd >= 0, "epoll_create1 failed");
        let shard = Shard {
            epfd,
            mailbox: Arc::clone(&mailbox),
            incoming: Arc::clone(&incoming),
            conns: HashMap::new(),
            next_id: 1,
            stop: Arc::clone(&stop),
            ctx: Ctx {
                tx: tx.clone(),
                stats: Arc::clone(&stats),
                mailbox: Arc::clone(&mailbox),
                limiter: limiter.clone(),
                cache: opts.cache.clone(),
                access_log: opts.access_log.clone(),
                request_timeout: opts.request_timeout,
                idle_timeout: opts.idle_timeout,
                header_timeout: opts.header_timeout,
                max_sse: opts.max_sse_streams,
                panic_on_path: opts.panic_on_path.clone(),
            },
        };
        mailboxes.push(mailbox);
        queues.push(incoming);
        std::thread::Builder::new()
            .name(format!("moara-gw-shard-{i}"))
            .spawn(move || shard.run())
            .expect("spawn gateway shard");
    }

    {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let mailboxes = mailboxes.clone();
        let queues = queues.clone();
        let max_conns = opts.max_conns;
        std::thread::Builder::new()
            .name("moara-gw-accept".into())
            .spawn(move || {
                let mut next = 0usize;
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if stats.open_conns.load(Ordering::SeqCst) >= max_conns {
                        // Over the cap: close immediately. Cheaper and
                        // clearer to the client than letting the fd
                        // table fill and accept() start failing.
                        stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stats.open_conns.fetch_add(1, Ordering::SeqCst);
                    stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    queues[next].lock().unwrap().push(stream);
                    mailboxes[next].wake();
                    next = (next + 1) % queues.len();
                }
                // Wake every shard so it observes the stop flag.
                for m in &mailboxes {
                    m.wake();
                }
            })
            .expect("spawn gateway acceptor");
    }

    GatewayHandle {
        addr,
        stats,
        stop,
        wakes: mailboxes,
    }
}

impl Shard {
    fn run(mut self) {
        self.epoll_ctl(
            sys::EPOLL_CTL_ADD,
            self.mailbox.wake.0,
            sys::EPOLLIN,
            WAKE_TOKEN,
        );
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 512];
        let mut next_sweep = Instant::now() + SWEEP_EVERY;
        loop {
            let timeout_ms = next_sweep
                .saturating_duration_since(Instant::now())
                .as_millis()
                .clamp(1, SWEEP_EVERY.as_millis()) as i32;
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.iter().take(n.max(0) as usize) {
                let (bits, id) = (ev.events, ev.data);
                if id == WAKE_TOKEN {
                    self.mailbox.wake.drain();
                    self.adopt_incoming();
                    self.drain_mailbox();
                    continue;
                }
                self.conn_event(id, bits);
            }
            if Instant::now() >= next_sweep {
                self.sweep();
                next_sweep = Instant::now() + SWEEP_EVERY;
            }
        }
        // Stopping: mark every connection closed so daemon-held sinks
        // fail their next send (watch subscriptions GC), then drop the
        // sockets.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close(id);
        }
        unsafe { sys::close(self.epfd) };
    }

    fn epoll_ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) {
        let mut ev = sys::EpollEvent { events, data };
        let _ = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
    }

    /// Registers connections the acceptor handed over.
    fn adopt_incoming(&mut self) {
        let fresh = std::mem::take(&mut *self.incoming.lock().unwrap());
        for stream in fresh {
            let peer = stream.peer_addr().ok();
            let Some(peer_addr) = peer else {
                self.ctx.stats.open_conns.fetch_sub(1, Ordering::SeqCst);
                continue;
            };
            let id = self.next_id;
            self.next_id += 1;
            self.epoll_ctl(
                sys::EPOLL_CTL_ADD,
                stream.as_raw_fd(),
                sys::EPOLLIN | sys::EPOLLRDHUP,
                id,
            );
            self.conns.insert(
                id,
                Conn {
                    id,
                    stream,
                    peer: peer_addr.to_string(),
                    ip: peer_addr.ip(),
                    buf_in: Vec::new(),
                    buf_out: Vec::new(),
                    out_pos: 0,
                    phase: Phase::Ready,
                    gen: 0,
                    closed: Arc::new(AtomicBool::new(false)),
                    close_after_write: false,
                    dead: false,
                    interest_out: false,
                    last_activity: Instant::now(),
                    header_started: None,
                    write_stalled_since: None,
                },
            );
        }
    }

    /// Handles one readiness event for connection `id`, with panic
    /// isolation: a panic while parsing/handling kills this connection
    /// only.
    fn conn_event(&mut self, id: u64, bits: u32) {
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if bits & sys::EPOLLERR != 0 {
                conn.dead = true;
            }
            if !conn.dead && bits & sys::EPOLLOUT != 0 {
                conn.flush();
            }
            if !conn.dead && bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 {
                conn.fill();
                if !conn.dead {
                    advance(&self.ctx, conn);
                }
            }
        }))
        .is_err();
        if panicked {
            self.ctx.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.dead = true;
            }
        }
        self.finalize(id);
    }

    /// Post-event bookkeeping: closes dead connections, syncs EPOLLOUT
    /// interest with pending output.
    fn finalize(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.dead {
            self.close(id);
            return;
        }
        let want_out = conn.out_pos < conn.buf_out.len();
        if want_out != conn.interest_out {
            conn.interest_out = want_out;
            let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
            if want_out {
                events |= sys::EPOLLOUT;
            }
            let fd = conn.stream.as_raw_fd();
            self.epoll_ctl(sys::EPOLL_CTL_MOD, fd, events, id);
        }
    }

    /// Delivers daemon replies (and sink hang-ups) to their connections.
    fn drain_mailbox(&mut self) {
        for (id, gen, mail) in self.mailbox.take() {
            let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                deliver(&self.ctx, conn, gen, mail);
            }))
            .is_err();
            if panicked {
                self.ctx.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.dead = true;
                }
            }
            self.finalize(id);
        }
    }

    /// The periodic scan: idle keep-alive closes, slowloris header
    /// timeouts, per-request deadlines, stalled writes.
    fn sweep(&mut self) {
        let now = Instant::now();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            match &conn.phase {
                Phase::Await(p) | Phase::SseAwait(p) => {
                    if now >= p.deadline {
                        timeout_pending(&self.ctx, conn);
                    }
                }
                Phase::Ready if !conn.close_after_write => {
                    if let Some(t0) = conn.header_started {
                        if now.saturating_duration_since(t0) > self.ctx.header_timeout {
                            // Slowloris: answer 408 and close. The
                            // shard never blocked on these bytes; the
                            // timeout just reclaims the fd.
                            conn.header_started = None;
                            respond(
                                &self.ctx,
                                conn,
                                HttpResponse::error(408, "header timeout"),
                                false,
                                false,
                            );
                            finish_request(
                                &self.ctx.stats,
                                &self.ctx.access_log,
                                "other",
                                "-",
                                "-",
                                408,
                                t0,
                                0,
                                &conn.peer,
                            );
                        }
                    } else if conn.buf_out.is_empty()
                        && now.saturating_duration_since(conn.last_activity) > self.ctx.idle_timeout
                    {
                        conn.dead = true;
                    }
                }
                Phase::Ready | Phase::Sse { .. } => {}
            }
            if let Some(t0) = conn.write_stalled_since {
                if now.saturating_duration_since(t0) > WRITE_STALL_TIMEOUT {
                    conn.dead = true;
                }
            }
            self.finalize(id);
        }
    }

    /// Tears one connection down: epoll deregistration, SSE slot
    /// release, stream-lifetime accounting, the closed flag for
    /// daemon-held sinks.
    fn close(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        conn.closed.store(true, Ordering::Release);
        self.epoll_ctl(sys::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
        self.ctx.stats.open_conns.fetch_sub(1, Ordering::SeqCst);
        match conn.phase {
            Phase::Sse {
                started,
                method,
                path,
            } => {
                self.ctx.stats.open_streams.fetch_sub(1, Ordering::SeqCst);
                // One access-log line per stream, at stream end, the
                // duration spanning its whole life.
                finish_request(
                    &self.ctx.stats,
                    &self.ctx.access_log,
                    "watch",
                    &method,
                    &path,
                    200,
                    started,
                    0,
                    &conn.peer,
                );
            }
            Phase::SseAwait(_) => {
                self.ctx.stats.open_streams.fetch_sub(1, Ordering::SeqCst);
            }
            _ => {}
        }
        // `conn.stream` drops here, closing the fd.
    }
}

impl Conn {
    /// Reads until `WouldBlock`, appending to the input buffer.
    fn fill(&mut self) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    match self.phase {
                        // Mid-stream client bytes on an SSE connection
                        // carry no meaning; discard instead of buffering.
                        Phase::Sse { .. } => {}
                        _ => self.buf_in.extend_from_slice(&chunk[..n]),
                    }
                    if self.buf_in.len() > IN_BUF_CAP {
                        self.dead = true;
                        return;
                    }
                    if n < chunk.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Writes buffered output until `WouldBlock` or drained.
    fn flush(&mut self) {
        while self.out_pos < self.buf_out.len() {
            match self.stream.write(&self.buf_out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.write_stalled_since = None;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.write_stalled_since.is_none() {
                        self.write_stalled_since = Some(Instant::now());
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.out_pos >= self.buf_out.len() {
            self.buf_out.clear();
            self.out_pos = 0;
            self.write_stalled_since = None;
            if self.close_after_write {
                self.dead = true;
            }
        } else if self.buf_out.len() - self.out_pos > OUT_BUF_CAP {
            // Slow consumer: the peer reads slower than we produce
            // (an SSE stream, usually). Cut it loose.
            self.dead = true;
        }
    }
}

/// Queues a rendered response on the connection and flushes what the
/// socket will take now.
fn respond(ctx: &Ctx, conn: &mut Conn, response: HttpResponse, keep_alive: bool, head_only: bool) {
    if response.status >= 400 {
        ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    // Vec writes cannot fail.
    let _ = if head_only {
        response.write_head_to(&mut conn.buf_out, keep_alive)
    } else {
        response.write_to(&mut conn.buf_out, keep_alive)
    };
    if !keep_alive {
        conn.close_after_write = true;
    }
    conn.flush();
}

/// Parses as many complete pipelined requests as the buffer holds (and
/// the state machine allows) and dispatches them.
fn advance(ctx: &Ctx, conn: &mut Conn) {
    loop {
        if conn.dead || conn.close_after_write || !matches!(conn.phase, Phase::Ready) {
            return;
        }
        match parse_request(&conn.buf_in) {
            ParseStep::Incomplete => {
                conn.header_started = if conn.buf_in.is_empty() {
                    None
                } else if conn.header_started.is_none() {
                    Some(Instant::now())
                } else {
                    conn.header_started
                };
                return;
            }
            ParseStep::Reject { status, msg } => {
                // The body boundary is unknowable: answer and close.
                conn.buf_in.clear();
                conn.header_started = None;
                respond(ctx, conn, HttpResponse::error(status, msg), false, false);
                finish_request(
                    &ctx.stats,
                    &ctx.access_log,
                    "other",
                    "-",
                    "-",
                    status,
                    Instant::now(),
                    0,
                    &conn.peer,
                );
                return;
            }
            ParseStep::Done { req, consumed } => {
                conn.buf_in.drain(..consumed);
                conn.header_started = None;
                handle_request(ctx, conn, *req);
            }
        }
    }
}

/// Routes one parsed request: middleware first, then inline answers
/// (OPTIONS, cache hits, routing errors), then the daemon hand-off.
fn handle_request(ctx: &Ctx, conn: &mut Conn, req: crate::http::HttpRequest) {
    let started = Instant::now();
    let keep_alive = req.keep_alive;
    let head_only = req.method == "HEAD";

    // Test hook for panic isolation: a poisoned request must kill its
    // connection, not the shard or the daemon.
    if let Some(p) = &ctx.panic_on_path {
        if *p == req.path {
            panic!("panic_on_path test hook: {p}");
        }
    }

    // Middleware: per-IP token bucket. Counted before routing so an
    // abusive client cannot buy a tree walk with a rejected request.
    if let Some(limiter) = &ctx.limiter {
        if !limiter.allow(conn.ip, started) {
            ctx.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
            let response = HttpResponse::error(429, "rate limit exceeded");
            finish_request(
                &ctx.stats,
                &ctx.access_log,
                "other",
                &req.method,
                &req.path,
                response.status,
                started,
                response.body.len(),
                &conn.peer,
            );
            respond(ctx, conn, response, keep_alive, head_only);
            return;
        }
    }

    // OPTIONS is answered at this layer: it exists for probes and
    // CORS-less tooling, not the daemon.
    if req.method == "OPTIONS" {
        let response = HttpResponse::text(200, "text/plain; charset=utf-8", "")
            .with_allow(crate::server::ALLOWED_METHODS);
        finish_request(
            &ctx.stats,
            &ctx.access_log,
            "other",
            &req.method,
            &req.path,
            response.status,
            started,
            0,
            &conn.peer,
        );
        respond(ctx, conn, response, keep_alive, false);
        return;
    }

    match route(&req) {
        Ok(GwRequest::Watch {
            q,
            policy,
            lease_ms,
        }) => {
            // Atomic slot reservation (increment-then-check): a burst
            // of simultaneous watch requests must not race past the cap.
            if ctx.stats.open_streams.fetch_add(1, Ordering::SeqCst) >= ctx.max_sse {
                ctx.stats.open_streams.fetch_sub(1, Ordering::SeqCst);
                let response = HttpResponse::error(503, "too many watch streams");
                finish_request(
                    &ctx.stats,
                    &ctx.access_log,
                    "watch",
                    &req.method,
                    &req.path,
                    response.status,
                    started,
                    response.body.len(),
                    &conn.peer,
                );
                respond(ctx, conn, response, false, false);
                return;
            }
            ctx.stats.watches_opened.fetch_add(1, Ordering::Relaxed);
            conn.gen += 1;
            let sink = ReplySink::reactor(
                Arc::clone(&ctx.mailbox),
                conn.id,
                conn.gen,
                Arc::clone(&conn.closed),
            );
            if ctx
                .tx
                .send(GwJob {
                    req: GwRequest::Watch {
                        q,
                        policy,
                        lease_ms,
                    },
                    reply: sink,
                })
                .is_err()
            {
                ctx.stats.open_streams.fetch_sub(1, Ordering::SeqCst);
                let response = HttpResponse::error(503, "daemon shut down");
                finish_request(
                    &ctx.stats,
                    &ctx.access_log,
                    "watch",
                    &req.method,
                    &req.path,
                    response.status,
                    started,
                    response.body.len(),
                    &conn.peer,
                );
                respond(ctx, conn, response, false, false);
                return;
            }
            ctx.stats.queued_jobs.fetch_add(1, Ordering::Relaxed);
            conn.phase = Phase::SseAwait(Pending {
                gen: conn.gen,
                class: "watch",
                method: req.method,
                path: req.path,
                started,
                deadline: started + ctx.request_timeout,
                head_only: false,
                keep_alive: false,
            });
        }
        Ok(gw_req) => {
            let counter = match &gw_req {
                GwRequest::Query { .. } => &ctx.stats.queries,
                GwRequest::SetAttrs { .. } => &ctx.stats.attr_sets,
                GwRequest::Metrics
                | GwRequest::ClusterMetrics
                | GwRequest::History { .. }
                | GwRequest::ClusterHistory { .. } => &ctx.stats.scrapes,
                GwRequest::Health
                | GwRequest::ClusterHealth
                | GwRequest::Alerts
                | GwRequest::Events { .. } => &ctx.stats.health_checks,
                GwRequest::Traces { .. } | GwRequest::Trace { .. } => &ctx.stats.traces,
                GwRequest::Watch { .. } => unreachable!("handled above"),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            let class = endpoint_class(&gw_req);
            // The materialized-view fast path: a fresh standing result
            // answers right here on the shard — the daemon's event loop
            // (and its transport-poll cadence) is never entered, which
            // is what keeps hits sub-millisecond.
            let cached = match (&gw_req, &ctx.cache) {
                (GwRequest::Query { q }, Some(c)) => c.lookup(q, started),
                _ => None,
            };
            if let Some((result, complete)) = cached {
                let response =
                    HttpResponse::json(200, crate::server::answer_body(&result, complete))
                        .with_cache("hit");
                finish_request(
                    &ctx.stats,
                    &ctx.access_log,
                    class,
                    &req.method,
                    &req.path,
                    response.status,
                    started,
                    if head_only { 0 } else { response.body.len() },
                    &conn.peer,
                );
                respond(ctx, conn, response, keep_alive, head_only);
                return;
            }
            conn.gen += 1;
            let sink = ReplySink::reactor(
                Arc::clone(&ctx.mailbox),
                conn.id,
                conn.gen,
                Arc::clone(&conn.closed),
            );
            if ctx
                .tx
                .send(GwJob {
                    req: gw_req,
                    reply: sink,
                })
                .is_err()
            {
                let response = HttpResponse::error(503, "daemon shut down");
                finish_request(
                    &ctx.stats,
                    &ctx.access_log,
                    class,
                    &req.method,
                    &req.path,
                    response.status,
                    started,
                    response.body.len(),
                    &conn.peer,
                );
                respond(ctx, conn, response, false, false);
                return;
            }
            ctx.stats.queued_jobs.fetch_add(1, Ordering::Relaxed);
            conn.phase = Phase::Await(Pending {
                gen: conn.gen,
                class,
                method: req.method,
                path: req.path,
                started,
                deadline: started + ctx.request_timeout,
                head_only,
                keep_alive,
            });
        }
        Err(response) => {
            finish_request(
                &ctx.stats,
                &ctx.access_log,
                "other",
                &req.method,
                &req.path,
                response.status,
                started,
                if head_only { 0 } else { response.body.len() },
                &conn.peer,
            );
            respond(ctx, conn, response, keep_alive, head_only);
        }
    }
}

/// Answers 408 for a request whose deadline passed (middleware: the
/// per-request deadline). The connection closes — a late daemon reply
/// for it can no longer be correlated by the client — and the closed
/// flag guarantees the daemon notices on its next send.
fn timeout_pending(ctx: &Ctx, conn: &mut Conn) {
    let (Phase::Await(p) | Phase::SseAwait(p)) = &conn.phase else {
        return;
    };
    ctx.stats.request_timeouts.fetch_add(1, Ordering::Relaxed);
    let released_sse = matches!(conn.phase, Phase::SseAwait(_));
    let response = HttpResponse::error(408, "daemon did not answer in time");
    finish_request(
        &ctx.stats,
        &ctx.access_log,
        p.class,
        &p.method,
        &p.path,
        response.status,
        p.started,
        response.body.len(),
        &conn.peer,
    );
    let head_only = p.head_only;
    conn.phase = Phase::Ready;
    if released_sse {
        ctx.stats.open_streams.fetch_sub(1, Ordering::SeqCst);
    }
    conn.closed.store(true, Ordering::Release);
    respond(ctx, conn, response, false, head_only);
}

/// Applies one mailbox message to its connection.
fn deliver(ctx: &Ctx, conn: &mut Conn, gen: u64, mail: Mail) {
    match mail {
        Mail::Reply(reply) => match &conn.phase {
            Phase::Await(p) if p.gen == gen => {
                if Instant::now() >= p.deadline {
                    // The reply exists but missed its deadline: the
                    // middleware answer is still 408 (deterministic
                    // e2e: a 1 ms deadline always times out even when
                    // the daemon replies 5 ms later).
                    timeout_pending(ctx, conn);
                    return;
                }
                let response = render_reply(reply);
                finish_request(
                    &ctx.stats,
                    &ctx.access_log,
                    p.class,
                    &p.method,
                    &p.path,
                    response.status,
                    p.started,
                    if p.head_only { 0 } else { response.body.len() },
                    &conn.peer,
                );
                let (keep_alive, head_only) = (p.keep_alive, p.head_only);
                conn.phase = Phase::Ready;
                respond(ctx, conn, response, keep_alive, head_only);
                // Pipelined requests may be waiting behind the reply.
                advance(ctx, conn);
            }
            Phase::SseAwait(p) if p.gen == gen => {
                if Instant::now() >= p.deadline {
                    timeout_pending(ctx, conn);
                    return;
                }
                if let GwReply::Error { status, msg } = reply {
                    let response = HttpResponse::error(status, &msg);
                    finish_request(
                        &ctx.stats,
                        &ctx.access_log,
                        p.class,
                        &p.method,
                        &p.path,
                        response.status,
                        p.started,
                        response.body.len(),
                        &conn.peer,
                    );
                    conn.phase = Phase::Ready;
                    ctx.stats.open_streams.fetch_sub(1, Ordering::SeqCst);
                    conn.closed.store(true, Ordering::Release);
                    respond(ctx, conn, response, false, false);
                    return;
                }
                // Stream opens: SSE headers, then the first frame.
                conn.buf_out.extend_from_slice(
                    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                      Cache-Control: no-cache\r\nConnection: close\r\n\r\n",
                );
                conn.phase = Phase::Sse {
                    started: p.started,
                    method: p.method.clone(),
                    path: p.path.clone(),
                };
                sse_forward(ctx, conn, reply);
                conn.flush();
            }
            Phase::Sse { .. } if gen == conn.gen => {
                sse_forward(ctx, conn, reply);
                conn.flush();
            }
            // Stale: a reply for a request that already timed out or a
            // connection that moved on.
            _ => {}
        },
        Mail::Hangup => {
            // The daemon dropped the sink without a terminal reply —
            // subscription cancelled (or daemon shutting down). Only
            // meaningful for streams; one-shot sinks are dropped right
            // after their reply, which was already delivered above.
            if gen == conn.gen && matches!(conn.phase, Phase::Sse { .. } | Phase::SseAwait(_)) {
                conn.dead = true;
            }
        }
    }
}

/// Renders one streaming reply into the SSE connection's output buffer.
fn sse_forward(ctx: &Ctx, conn: &mut Conn, reply: GwReply) {
    match reply {
        GwReply::Update {
            result,
            initial,
            complete,
        } => {
            ctx.stats.sse_frames.fetch_add(1, Ordering::Relaxed);
            conn.buf_out
                .extend_from_slice(sse_frame(&result, initial, complete).as_bytes());
        }
        GwReply::Keepalive => {
            conn.buf_out.extend_from_slice(b": keepalive\n\n");
        }
        GwReply::Error { msg, .. } => {
            conn.buf_out.extend_from_slice(
                format!("event: error\ndata: {}\n\n", crate::json::escape(&msg)).as_bytes(),
            );
            conn.close_after_write = true;
        }
        // One-shot replies cannot appear mid-stream.
        _ => {}
    }
}

//! # moara-gateway
//!
//! The HTTP edge of a Moara cluster, plus its observability plane.
//!
//! Until this crate existed the only ways into a cluster were the Rust
//! API and the custom framed control plane — nothing an off-the-shelf
//! client, load balancer, dashboard, or scraper could speak. The gateway
//! embeds an event-driven HTTP/1.1 server (written on `std::net` plus
//! raw `epoll` syscalls, the same no-new-deps constraint that shaped
//! `TcpTransport`) in every `moarad` behind `--http ADDR`:
//!
//! * `GET /v1/query?q=…` — run a composite query, answer as JSON;
//! * `POST /v1/attrs` — set local attributes (group churn over HTTP);
//! * `GET /v1/watch?q=…&policy=…` — Server-Sent Events stream bridging
//!   the continuous-query subscription plane: one `data:` frame per
//!   standing-query delta, lease auto-renewed while the socket is open,
//!   cancelled on hang-up;
//! * `GET /healthz` — liveness of the daemon event loop;
//! * `GET /metrics` — Prometheus text exposition of the counters the
//!   subsystems already keep (transport, query scheduler, membership,
//!   subscriptions, gateway itself).
//!
//! Any daemon is a valid entry point: a request served by a non-front-end
//! daemon simply runs the query from that node, so an external load
//! balancer can spray the whole cluster.
//!
//! Architecturally the gateway mirrors the control plane: HTTP threads
//! never touch protocol state. A sharded `epoll` reactor ([`reactor`])
//! owns every socket in nonblocking mode and drives per-connection state
//! machines — incremental request parsing ([`http`]), buffered response
//! writes, SSE streaming — so one daemon holds tens of thousands of
//! keep-alive connections on a handful of threads. Parsed requests
//! become [`GwRequest`]s pushed as [`GwJob`]s through an MPSC channel
//! into the daemon's single-threaded event loop; replies return through
//! per-shard mailboxes. Cache hits never leave the reactor. In front of
//! routing sits a small middleware stack ([`middleware`]): per-peer-IP
//! token-bucket rate limiting (429), per-request deadlines (408), and
//! per-connection panic isolation. See `docs/gateway.md`.

pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
pub mod middleware;
pub mod reactor;
pub mod server;

pub use cache::{normalize, CacheConfig, QueryCache};
pub use http::{HttpRequest, HttpResponse};
pub use metrics::{federate_expositions, lint_exposition, MetricsRegistry};
pub use middleware::TokenBuckets;
pub use server::{
    access_log_line, spawn_gateway, spawn_gateway_opts, AccessLogSink, AtomicHistogram,
    EndpointLatency, GatewayHandle, GatewayOpts, GatewayStats, GwJob, GwReply, GwRequest,
    ReplySink, SinkClosed, WatchPolicy, LATENCY_BOUNDS_US,
};

//! # moara-gateway
//!
//! The HTTP edge of a Moara cluster, plus its observability plane.
//!
//! Until this crate existed the only ways into a cluster were the Rust
//! API and the custom framed control plane — nothing an off-the-shelf
//! client, load balancer, dashboard, or scraper could speak. The gateway
//! embeds a small thread-pooled HTTP/1.1 server (written on `std::net`,
//! the same no-new-deps constraint that shaped `TcpTransport`) in every
//! `moarad` behind `--http ADDR`:
//!
//! * `GET /v1/query?q=…` — run a composite query, answer as JSON;
//! * `POST /v1/attrs` — set local attributes (group churn over HTTP);
//! * `GET /v1/watch?q=…&policy=…` — Server-Sent Events stream bridging
//!   the continuous-query subscription plane: one `data:` frame per
//!   standing-query delta, lease auto-renewed while the socket is open,
//!   cancelled on hang-up;
//! * `GET /healthz` — liveness of the daemon event loop;
//! * `GET /metrics` — Prometheus text exposition of the counters the
//!   subsystems already keep (transport, query scheduler, membership,
//!   subscriptions, gateway itself).
//!
//! Any daemon is a valid entry point: a request served by a non-front-end
//! daemon simply runs the query from that node, so an external load
//! balancer can spray the whole cluster.
//!
//! Architecturally the gateway mirrors the control plane: connection
//! threads never touch protocol state. They parse HTTP into a
//! [`GwRequest`], push a [`GwJob`] through an MPSC channel into the
//! daemon's single-threaded event loop, and block on (or, for watches,
//! stream from) the reply channel. See `docs/gateway.md`.

pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;

pub use cache::{normalize, CacheConfig, QueryCache};
pub use http::{HttpRequest, HttpResponse};
pub use metrics::{lint_exposition, MetricsRegistry};
pub use server::{
    access_log_line, spawn_gateway, spawn_gateway_opts, AccessLogSink, AtomicHistogram,
    EndpointLatency, GatewayHandle, GatewayStats, GwJob, GwReply, GwRequest, WatchPolicy,
    LATENCY_BOUNDS_US,
};

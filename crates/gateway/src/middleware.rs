//! Request middleware for the gateway's reactor: the first
//! production-concern layers that sit between `accept()` and routing.
//!
//! Today that is per-client (peer-IP) token-bucket rate limiting; the
//! per-request deadline and panic isolation live in the reactor's
//! connection state machine (they need the event loop's clock and
//! unwind boundary). All three surface `/metrics` counters through
//! [`crate::GatewayStats`].

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Most peer IPs tracked before full (= uninteresting) buckets are
/// swept: bounds the map against an address-spraying client.
const MAX_TRACKED_PEERS: usize = 8 * 1024;

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-peer-IP token buckets: each IP accrues `rate` tokens per second
/// up to `burst`; a request spends one token or is rejected (429).
///
/// The caller injects `now`, so refill behavior is unit-testable without
/// sleeping, and the reactor can reuse its per-event timestamp.
#[derive(Debug)]
pub struct TokenBuckets {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl TokenBuckets {
    /// A limiter allowing `rate` requests/second with bursts of `burst`
    /// (both clamped to at least 1.0; use `rate_limit: 0` in
    /// [`crate::GatewayOpts`] to disable limiting entirely).
    pub fn new(rate: f64, burst: f64) -> TokenBuckets {
        TokenBuckets {
            rate: rate.max(1.0),
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spends one token from `ip`'s bucket; false means "answer 429".
    pub fn allow(&self, ip: IpAddr, now: Instant) -> bool {
        let mut buckets = self.buckets.lock().unwrap();
        if buckets.len() >= MAX_TRACKED_PEERS && !buckets.contains_key(&ip) {
            // Full buckets carry no state worth keeping (a fresh bucket
            // starts full anyway): refill everything and drop them.
            let (rate, burst) = (self.rate, self.burst);
            buckets.retain(|_, b| {
                b.tokens = (b.tokens + now.saturating_duration_since(b.last).as_secs_f64() * rate)
                    .min(burst);
                b.last = now;
                b.tokens < burst
            });
            if buckets.len() >= MAX_TRACKED_PEERS {
                // Every bucket is mid-spend and worth keeping. A fresh
                // bucket would grant its first token anyway, so admit
                // the new IP without tracking it — memory stays bounded
                // and nobody already limited escapes their bucket.
                return true;
            }
        }
        let bucket = buckets.entry(ip).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        bucket.tokens = (bucket.tokens
            + now.saturating_duration_since(bucket.last).as_secs_f64() * self.rate)
            .min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Peer IPs currently tracked (tests and debugging).
    pub fn tracked(&self) -> usize {
        self.buckets.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn burst_spends_down_then_rejects() {
        let tb = TokenBuckets::new(10.0, 3.0);
        let t0 = Instant::now();
        assert!(tb.allow(ip(1), t0));
        assert!(tb.allow(ip(1), t0));
        assert!(tb.allow(ip(1), t0));
        assert!(!tb.allow(ip(1), t0), "burst exhausted");
        // Another IP has its own bucket.
        assert!(tb.allow(ip(2), t0));
    }

    #[test]
    fn tokens_refill_at_rate() {
        let tb = TokenBuckets::new(10.0, 1.0);
        let t0 = Instant::now();
        assert!(tb.allow(ip(1), t0));
        assert!(!tb.allow(ip(1), t0));
        // 10 tokens/s -> one token back after 100 ms.
        let t1 = t0 + Duration::from_millis(100);
        assert!(tb.allow(ip(1), t1));
        assert!(!tb.allow(ip(1), t1));
        // Refill never exceeds the burst capacity.
        let t2 = t1 + Duration::from_secs(60);
        assert!(tb.allow(ip(1), t2));
        assert!(!tb.allow(ip(1), t2), "capped at burst=1");
    }

    #[test]
    fn address_spray_cannot_balloon_the_map() {
        let tb = TokenBuckets::new(10.0, 2.0);
        let t0 = Instant::now();
        for a in 0..=255u8 {
            for b in 0..40u8 {
                tb.allow(IpAddr::from([10, 0, b, a]), t0);
            }
        }
        assert!(tb.tracked() <= MAX_TRACKED_PEERS + 1, "{}", tb.tracked());
        // Buckets that refilled to full are swept; an exhausted bucket
        // (the one IP mid-burst) survives the sweep.
        let hot = ip(9);
        let t1 = t0 + Duration::from_secs(5);
        assert!(tb.allow(hot, t1));
        assert!(tb.allow(hot, t1));
        assert!(!tb.allow(hot, t1));
        for a in 0..=255u8 {
            tb.allow(IpAddr::from([11, 1, 1, a]), t1);
        }
        assert!(!tb.allow(hot, t1), "hot bucket state survives sweeps");
    }
}

//! # moara-trace
//!
//! The cluster-wide tracing and profiling substrate: how one composite
//! query becomes a causally-linked span tree spanning every daemon it
//! touched.
//!
//! Three pieces:
//!
//! 1. **[`TraceCtx`]** — the 25-byte context carried on the wire as an
//!    optional trailing field of the query/probe/`SubDelta` messages.
//!    Each hop reads the sender's span id out of it, opens its own span
//!    with that id as the parent, and forwards a context naming its own
//!    span — so the parent links reconstruct the aggregation tree
//!    exactly as the query traversed it, across process boundaries.
//! 2. **[`SpanStore`]** — a bounded, mutex-sharded ring buffer each
//!    daemon keeps. Recording a span locks one shard for a push; the
//!    store never allocates past its cap (oldest spans fall off).  A
//!    sampling divisor makes always-on tracing cheap: only every Nth
//!    root decision carries the `SAMPLED` flag, and unsampled contexts
//!    cost one branch per hop. The store also folds every recorded span
//!    into per-phase [`Histogram`]s, which is where the `/metrics`
//!    "query latency by phase" and "SubDelta lag" families come from.
//! 3. **Renderers** — [`render_waterfall`] turns a merged span set into
//!    the text waterfall `moara-cli trace <id>` prints; span sets merge
//!    across daemons by simple concatenation because span ids embed the
//!    recording node.
//!
//! Trace ids are *not* random (the simulator's determinism is sacred):
//! query traces reuse the engine's `QueryId::tag()`, and standalone
//! roots (subscription deltas, SWIM rounds) derive ids from the
//! recording node and a local counter, partitioned by the top two bits
//! so the id spaces cannot collide.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use moara_wire::{Wire, WireError};

/// `TraceCtx::flags` bit: spans along this trace are recorded.
pub const FLAG_SAMPLED: u8 = 1;

/// Top-bits namespace for trace ids minted for subscription delta pushes
/// (query traces use `QueryId::tag()`, which never sets the top bit
/// pattern `10` because node ids stay far below `2^31`).
pub const TRACE_NS_SUBDELTA: u64 = 0x8000_0000_0000_0000;

/// Top-bits namespace for SWIM probe-round trace ids.
pub const TRACE_NS_SWIM: u64 = 0xC000_0000_0000_0000;

/// The trace context carried on the wire: which trace a message belongs
/// to, which span sent it, and that span's own parent.
///
/// `parent_span_id` is redundant for tree reconstruction (the receiver
/// only needs `span_id`), but carrying it makes every context
/// self-describing — a span store that missed the parent hop can still
/// place the subtree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Which trace this message belongs to.
    pub trace_id: u64,
    /// The sender-side span that caused this message (the receiver's
    /// parent).
    pub span_id: u64,
    /// The sender-side span's own parent (0 at the root).
    pub parent_span_id: u64,
    /// Bit flags; see [`FLAG_SAMPLED`].
    pub flags: u8,
}

impl TraceCtx {
    /// A sampled root context for `trace_id` with no parent yet.
    pub fn root(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            span_id: 0,
            parent_span_id: 0,
            flags: FLAG_SAMPLED,
        }
    }

    /// True when spans along this trace should be recorded.
    pub fn sampled(&self) -> bool {
        self.flags & FLAG_SAMPLED != 0
    }

    /// The context a span with id `span_id` forwards downstream: same
    /// trace and flags, this span as the new parent.
    pub fn descend(&self, span_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
            parent_span_id: self.span_id,
            flags: self.flags,
        }
    }
}

impl Wire for TraceCtx {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace_id.encode(out);
        self.span_id.encode(out);
        self.parent_span_id.encode(out);
        self.flags.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TraceCtx {
            trace_id: u64::decode(buf)?,
            span_id: u64::decode(buf)?,
            parent_span_id: u64::decode(buf)?,
            flags: u8::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + 1
    }
}

/// What a span measured — one stage of a query's life, one delta push,
/// or one failure-detector round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Query text parsed into a predicate tree (front end).
    Parse = 0,
    /// CNF conversion and cover planning (front end).
    Plan = 1,
    /// Size-probe round trip, or answering one at a group root.
    Probe = 2,
    /// Forwarding the query down one hop of the aggregation tree.
    FanOut = 3,
    /// Waiting for and merging child answers at one hop.
    Fold = 4,
    /// Final merge of per-tree answers at the front end.
    Reply = 5,
    /// One subscription delta pushed up a group tree.
    SubDelta = 6,
    /// One SWIM direct-probe round observed by the daemon.
    SwimPing = 7,
}

impl Phase {
    /// Every phase, in tag order (histogram catalogues iterate this).
    pub const ALL: [Phase; 8] = [
        Phase::Parse,
        Phase::Plan,
        Phase::Probe,
        Phase::FanOut,
        Phase::Fold,
        Phase::Reply,
        Phase::SubDelta,
        Phase::SwimPing,
    ];

    /// Stable lowercase name (metrics label, JSON, waterfall column).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Probe => "probe",
            Phase::FanOut => "fan-out",
            Phase::Fold => "fold",
            Phase::Reply => "reply",
            Phase::SubDelta => "sub-delta",
            Phase::SwimPing => "swim-ping",
        }
    }

    fn from_u8(v: u8) -> Result<Phase, WireError> {
        Ok(match v {
            0 => Phase::Parse,
            1 => Phase::Plan,
            2 => Phase::Probe,
            3 => Phase::FanOut,
            4 => Phase::Fold,
            5 => Phase::Reply,
            6 => Phase::SubDelta,
            7 => Phase::SwimPing,
            _ => return Err(WireError::Invalid("phase tag")),
        })
    }
}

impl Wire for Phase {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u8).encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Phase::from_u8(u8::decode(buf)?)
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// Sentinel for [`SpanRecord::peer`]: no remote peer involved.
pub const NO_PEER: u32 = u32::MAX;

/// One recorded span: a timed stage of work on one node, causally linked
/// into its trace by `parent_span_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (node-unique; the recording node is embedded in
    /// the high bits, so merged span sets never collide).
    pub span_id: u64,
    /// The causing span (0 for a trace root).
    pub parent_span_id: u64,
    /// The node that recorded the span.
    pub node: u32,
    /// What stage of work this span timed.
    pub phase: Phase,
    /// Remote peer involved (parent or probe target), [`NO_PEER`] if none.
    pub peer: u32,
    /// Span start, microseconds on the recording node's transport clock
    /// (virtual under simulation, real elapsed under TCP).
    pub start_us: u64,
    /// Time spent waiting before service: job-channel wait for
    /// edge-triggered spans, the wait-for-children window for folds.
    pub queue_us: u64,
    /// Time spent doing work.
    pub service_us: u64,
    /// Bytes sent or received on behalf of this span.
    pub bytes: u64,
    /// Free-form annotation (predicate key, query text, endpoint).
    pub detail: String,
}

impl Wire for SpanRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace_id.encode(out);
        self.span_id.encode(out);
        self.parent_span_id.encode(out);
        self.node.encode(out);
        self.phase.encode(out);
        self.peer.encode(out);
        self.start_us.encode(out);
        self.queue_us.encode(out);
        self.service_us.encode(out);
        self.bytes.encode(out);
        self.detail.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SpanRecord {
            trace_id: u64::decode(buf)?,
            span_id: u64::decode(buf)?,
            parent_span_id: u64::decode(buf)?,
            node: u32::decode(buf)?,
            phase: Phase::decode(buf)?,
            peer: u32::decode(buf)?,
            start_us: u64::decode(buf)?,
            queue_us: u64::decode(buf)?,
            service_us: u64::decode(buf)?,
            bytes: u64::decode(buf)?,
            detail: String::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + 4 + 1 + 4 + 8 + 8 + 8 + 8 + self.detail.encoded_len()
    }
}

/// One line of the recent-trace index (`GET /v1/traces`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace.
    pub trace_id: u64,
    /// Phase of the trace's earliest local span.
    pub phase: Phase,
    /// Node that recorded that earliest span.
    pub node: u32,
    /// Earliest local span start (microseconds, recording node's clock).
    pub start_us: u64,
    /// Wall-clock extent covered by local spans (microseconds).
    pub duration_us: u64,
    /// Local spans recorded for the trace.
    pub spans: u32,
}

impl Wire for TraceSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace_id.encode(out);
        self.phase.encode(out);
        self.node.encode(out);
        self.start_us.encode(out);
        self.duration_us.encode(out);
        self.spans.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TraceSummary {
            trace_id: u64::decode(buf)?,
            phase: Phase::decode(buf)?,
            node: u32::decode(buf)?,
            start_us: u64::decode(buf)?,
            duration_us: u64::decode(buf)?,
            spans: u32::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 1 + 4 + 8 + 8 + 4
    }
}

/// Canonical rendering of a trace id: `0x` plus 16 hex digits. JSON
/// carries trace ids in this form because they routinely exceed the
/// 2^53 integer-exactness limit of JSON numbers.
pub fn format_trace_id(id: u64) -> String {
    format!("0x{id:016x}")
}

/// Parses a trace id as rendered by [`format_trace_id`]; bare hex and
/// decimal spellings are accepted too.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    // Prefer decimal; fall back to bare hex (ids printed without 0x).
    s.parse().ok().or_else(|| u64::from_str_radix(s, 16).ok())
}

// ----- histograms ---------------------------------------------------------

/// Default bucket upper bounds for latency-style histograms, in
/// microseconds (50 µs … 5 s, roughly ×2.5 per step).
pub const LATENCY_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    5_000_000,
];

/// Default bucket upper bounds for queue-depth-style histograms.
pub const DEPTH_BOUNDS: [u64; 8] = [0, 1, 2, 5, 10, 25, 50, 100];

/// A fixed-bucket cumulative histogram over `u64` observations, shaped
/// for Prometheus text exposition (`_bucket{le=…}` / `_sum` / `_count`).
///
/// Plain value, no interior mutability: single-threaded owners (the
/// daemon event loop) hold it directly, concurrent owners wrap it in a
/// mutex ([`SpanStore`] does).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>, // one per bound, plus the +Inf overflow at the end
    sum: u64,
    count: u64,
}

impl Histogram {
    /// A histogram over the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending (a
    /// construction-time bug, never data-dependent).
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// The standard latency histogram ([`LATENCY_BOUNDS_US`]).
    pub fn latency_us() -> Histogram {
        Histogram::new(&LATENCY_BOUNDS_US)
    }

    /// The standard depth histogram ([`DEPTH_BOUNDS`]).
    pub fn depth() -> Histogram {
        Histogram::new(&DEPTH_BOUNDS)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
    }

    /// Bucket upper bounds (exclusive of the implicit +Inf bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative counts per bucket, ending with the +Inf total (always
    /// equal to [`Histogram::count`]).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the
    /// smallest bucket bound whose cumulative count covers `q` of all
    /// observations. Observations past the last bound (the +Inf bucket)
    /// report the last finite bound; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *self.bounds.last().unwrap());
            }
        }
        *self.bounds.last().unwrap()
    }
}

/// Most-recent trace id per histogram bucket: links a latency bucket —
/// typically a slow tail one — to a concrete trace whose waterfall
/// explains it. Same bucketing rule as [`Histogram`]; id 0 means "no
/// exemplar yet" (0 is never a real trace id: query tags and the
/// namespaced counters all start above it).
#[derive(Clone, Debug)]
pub struct BucketExemplars {
    bounds: Vec<u64>,
    ids: Vec<u64>, // one per bound, plus the +Inf slot at the end
}

impl BucketExemplars {
    /// Exemplar slots over the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending (a
    /// construction-time bug, never data-dependent).
    pub fn new(bounds: &[u64]) -> BucketExemplars {
        assert!(!bounds.is_empty(), "exemplars need at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "exemplar bounds must ascend"
        );
        BucketExemplars {
            bounds: bounds.to_vec(),
            ids: vec![0; bounds.len() + 1],
        }
    }

    /// Records `trace_id` as the latest exemplar for `v`'s bucket
    /// (untraced observations — id 0 — leave the slot untouched).
    pub fn observe(&mut self, v: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.ids[idx] = trace_id;
    }

    /// `(bucket upper bound, trace id)` for every bucket holding an
    /// exemplar; the +Inf bucket reports `u64::MAX` as its bound.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.ids
            .iter()
            .enumerate()
            .filter(|(_, &id)| id != 0)
            .map(|(i, &id)| (self.bounds.get(i).copied().unwrap_or(u64::MAX), id))
            .collect()
    }
}

// ----- the span store -----------------------------------------------------

/// Shards in a [`SpanStore`]; spans shard by trace id, so fetching one
/// trace locks exactly one shard.
const SHARDS: usize = 16;

/// A bounded, sharded ring buffer of spans plus per-phase latency
/// histograms — one per daemon, shared (`Arc`) between the protocol
/// engine, the daemon event loop, and the control plane.
#[derive(Debug)]
pub struct SpanStore {
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    shard_cap: usize,
    sample_every: u64,
    sample_ctr: AtomicU64,
    span_ctr: AtomicU64,
    dropped: AtomicU64,
    phase_hist: Vec<Mutex<Histogram>>,
    phase_exemplars: Vec<Mutex<BucketExemplars>>,
}

impl SpanStore {
    /// A store holding at most `capacity` spans overall, sampling one in
    /// `sample_every` trace roots (`0` disables tracing entirely, `1`
    /// samples everything).
    pub fn new(capacity: usize, sample_every: u64) -> SpanStore {
        let shard_cap = capacity.div_ceil(SHARDS).max(1);
        SpanStore {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(shard_cap.min(64))))
                .collect(),
            shard_cap,
            sample_every,
            sample_ctr: AtomicU64::new(0),
            span_ctr: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            phase_hist: Phase::ALL
                .iter()
                .map(|_| Mutex::new(Histogram::latency_us()))
                .collect(),
            phase_exemplars: Phase::ALL
                .iter()
                .map(|_| Mutex::new(BucketExemplars::new(&LATENCY_BOUNDS_US)))
                .collect(),
        }
    }

    /// True when the store records anything at all.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// The sampling decision for a new trace root: true for one in
    /// `sample_every` calls (deterministic — a counter, not a RNG).
    pub fn sample_root(&self) -> bool {
        if self.sample_every == 0 {
            return false;
        }
        self.sample_ctr
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// Allocates a node-unique span id: the node in the high bits, a
    /// monotone counter below. Never returns 0 (0 means "no parent").
    pub fn next_span_id(&self, node: u32) -> u64 {
        let ctr = self.span_ctr.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff;
        (u64::from(node) + 1) << 32 | ctr
    }

    /// Records one span (and folds it into the phase histograms).
    pub fn record(&self, rec: SpanRecord) {
        if self.sample_every == 0 {
            return;
        }
        let total_us = rec.queue_us.saturating_add(rec.service_us);
        if let Ok(mut h) = self.phase_hist[rec.phase as usize].lock() {
            h.observe(total_us);
        }
        if let Ok(mut e) = self.phase_exemplars[rec.phase as usize].lock() {
            e.observe(total_us, rec.trace_id);
        }
        let shard = &self.shards[(rec.trace_id as usize) % SHARDS];
        if let Ok(mut q) = shard.lock() {
            if q.len() >= self.shard_cap {
                q.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            q.push_back(rec);
        }
    }

    /// All locally-recorded spans of one trace, in recording order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        let shard = &self.shards[(trace_id as usize) % SHARDS];
        match shard.lock() {
            Ok(q) => q
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .cloned()
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// The most recent `limit` traces (by earliest local span start,
    /// newest first), summarized.
    pub fn recent(&self, limit: usize) -> Vec<TraceSummary> {
        use std::collections::HashMap;
        let mut by_trace: HashMap<u64, TraceSummary> = HashMap::new();
        for shard in &self.shards {
            let Ok(q) = shard.lock() else { continue };
            for s in q.iter() {
                let end = s
                    .start_us
                    .saturating_add(s.queue_us)
                    .saturating_add(s.service_us);
                let e = by_trace.entry(s.trace_id).or_insert_with(|| TraceSummary {
                    trace_id: s.trace_id,
                    phase: s.phase,
                    node: s.node,
                    start_us: s.start_us,
                    duration_us: 0,
                    spans: 0,
                });
                if s.start_us < e.start_us || (s.start_us == e.start_us && s.parent_span_id == 0) {
                    e.start_us = s.start_us;
                    e.phase = s.phase;
                    e.node = s.node;
                }
                let extent = end.saturating_sub(e.start_us);
                e.duration_us = e.duration_us.max(extent);
                e.spans += 1;
            }
        }
        let mut out: Vec<TraceSummary> = by_trace.into_values().collect();
        out.sort_by(|a, b| {
            b.start_us
                .cmp(&a.start_us)
                .then(b.trace_id.cmp(&a.trace_id))
        });
        out.truncate(limit);
        out
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map_or(0, |q| q.len()))
            .sum()
    }

    /// True when no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted by the ring-buffer cap since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent trace id per latency bucket, per phase: the
    /// bridge from "the p99 spiked" to a concrete waterfall. Only
    /// phases and buckets that have recorded at least one traced span
    /// appear.
    pub fn phase_exemplars(&self) -> Vec<(Phase, Vec<(u64, u64)>)> {
        Phase::ALL
            .iter()
            .filter_map(|&p| {
                let entries = self.phase_exemplars[p as usize]
                    .lock()
                    .map(|e| e.entries())
                    .unwrap_or_default();
                (!entries.is_empty()).then_some((p, entries))
            })
            .collect()
    }

    /// A snapshot of the per-phase latency histograms.
    pub fn phase_histograms(&self) -> Vec<(Phase, Histogram)> {
        Phase::ALL
            .iter()
            .map(|&p| {
                let h = self.phase_hist[p as usize]
                    .lock()
                    .map(|g| g.clone())
                    .unwrap_or_else(|_| Histogram::latency_us());
                (p, h)
            })
            .collect()
    }
}

// ----- waterfall rendering ------------------------------------------------

/// Renders a merged span set as a text waterfall, one line per span,
/// children indented under parents, orphans (parent missing from the
/// set — e.g. recorded on a partitioned daemon) flagged and listed at
/// top level. `missing` names nodes whose stores could not be reached
/// during the merge.
///
/// Offsets are relative to the earliest span and use each recording
/// node's own clock; under TCP those clocks share only their boot epoch,
/// so cross-node offsets are approximate (the causal structure is not).
pub fn render_waterfall(trace_id: u64, spans: &[SpanRecord], missing: &[u32]) -> String {
    use std::collections::{BTreeMap, HashSet};
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {} ({} spans)",
        format_trace_id(trace_id),
        spans.len()
    );
    if spans.is_empty() {
        if missing.is_empty() {
            out.push_str("  (no spans recorded — trace evicted, unsampled, or unknown)\n");
        }
        for n in missing {
            let _ = writeln!(out, "  ! node n{n} unreachable during merge");
        }
        return out;
    }

    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    // Children sorted by start for a stable, chronological rendering.
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<(&SpanRecord, bool)> = Vec::new();
    for s in spans {
        if s.parent_span_id != 0 && ids.contains(&s.parent_span_id) {
            children.entry(s.parent_span_id).or_default().push(s);
        } else {
            // True root, or orphan whose parent the merge never saw.
            roots.push((s, s.parent_span_id != 0));
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_us, s.span_id));
    }
    roots.sort_by_key(|(s, _)| (s.start_us, s.span_id));
    let t0 = spans.iter().map(|s| s.start_us).min().unwrap_or(0);

    fn emit(
        out: &mut String,
        s: &SpanRecord,
        depth: usize,
        orphan: bool,
        t0: u64,
        children: &BTreeMap<u64, Vec<&SpanRecord>>,
    ) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth + 1);
        let peer = if s.peer == NO_PEER {
            String::new()
        } else {
            format!(" peer=n{}", s.peer)
        };
        let detail = if s.detail.is_empty() {
            String::new()
        } else {
            format!(" {}", s.detail)
        };
        let mark = if orphan { " (orphan)" } else { "" };
        let _ = writeln!(
            out,
            "{indent}+{:>7}us {:<9} n{:<4} queue={}us service={}us bytes={}{peer}{detail}{mark}",
            s.start_us.saturating_sub(t0),
            s.phase.as_str(),
            s.node,
            s.queue_us,
            s.service_us,
            s.bytes,
        );
        if let Some(kids) = children.get(&s.span_id) {
            for k in kids {
                emit(out, k, depth + 1, false, t0, children);
            }
        }
    }

    for (root, orphan) in roots {
        emit(&mut out, root, 0, orphan, t0, &children);
    }
    for n in missing {
        let _ = writeln!(out, "  ! node n{n} unreachable during merge (subtree lost)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, node: u32, phase: Phase, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span_id: parent,
            node,
            phase,
            peer: NO_PEER,
            start_us: start,
            queue_us: 5,
            service_us: 7,
            bytes: 100,
            detail: String::new(),
        }
    }

    #[test]
    fn trace_ctx_roundtrips_and_descends() {
        let root = TraceCtx::root(0xdead_beef);
        assert!(root.sampled());
        let child = root.descend(42);
        assert_eq!(child.trace_id, 0xdead_beef);
        assert_eq!(child.span_id, 42);
        assert_eq!(child.parent_span_id, 0);
        let bytes = child.to_bytes();
        assert_eq!(bytes.len(), child.encoded_len());
        assert_eq!(TraceCtx::from_bytes(&bytes).unwrap(), child);
    }

    #[test]
    fn span_record_roundtrips_and_rejects_bad_phase() {
        let s = SpanRecord {
            detail: "ServiceX=true".into(),
            peer: 3,
            ..span(9, 8, 7, 1, Phase::Fold, 1000)
        };
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.encoded_len());
        assert_eq!(SpanRecord::from_bytes(&bytes).unwrap(), s);
        // Corrupt the phase tag (offset: 3×u64 + u32 = 28).
        let mut bad = bytes.clone();
        bad[28] = 250;
        assert_eq!(
            SpanRecord::from_bytes(&bad),
            Err(WireError::Invalid("phase tag"))
        );
        // Truncation at every prefix errors rather than panics.
        for cut in 0..bytes.len() {
            assert!(SpanRecord::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trace_summary_roundtrips() {
        let t = TraceSummary {
            trace_id: 77,
            phase: Phase::Parse,
            node: 2,
            start_us: 10,
            duration_us: 300,
            spans: 6,
        };
        assert_eq!(TraceSummary::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn trace_id_formatting_roundtrips() {
        let id = 0x0000_0002_0000_0001;
        let s = format_trace_id(id);
        assert_eq!(s, "0x0000000200000001");
        assert_eq!(parse_trace_id(&s), Some(id));
        assert_eq!(parse_trace_id("17"), Some(17));
        assert_eq!(parse_trace_id("ff"), Some(0xff));
        assert_eq!(parse_trace_id("zz"), None);
    }

    #[test]
    fn store_records_fetches_and_bounds() {
        let store = SpanStore::new(SHARDS * 4, 1);
        assert!(store.enabled());
        for i in 0..(SHARDS as u64 * 10) {
            // All into one shard (same trace id mod SHARDS).
            store.record(span(16, i + 1, 0, 0, Phase::FanOut, i));
        }
        assert!(store.len() <= SHARDS * 4);
        assert!(store.dropped() > 0);
        let spans = store.spans_for(16);
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|s| s.trace_id == 16));
        assert!(store.spans_for(17).is_empty());
    }

    #[test]
    fn disabled_store_records_nothing() {
        let store = SpanStore::new(64, 0);
        assert!(!store.enabled());
        assert!(!store.sample_root());
        store.record(span(1, 1, 0, 0, Phase::Parse, 0));
        assert!(store.is_empty());
    }

    #[test]
    fn sampling_divisor_keeps_one_in_n() {
        let store = SpanStore::new(64, 4);
        let sampled = (0..100).filter(|_| store.sample_root()).count();
        assert_eq!(sampled, 25);
        // sample_every == 1 samples everything.
        let always = SpanStore::new(64, 1);
        assert!((0..10).all(|_| always.sample_root()));
    }

    #[test]
    fn span_ids_are_node_unique_and_nonzero() {
        let store = SpanStore::new(64, 1);
        let a = store.next_span_id(0);
        let b = store.next_span_id(0);
        let c = store.next_span_id(1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(a >> 32, c >> 32, "node lives in the high bits");
    }

    #[test]
    fn recent_summarizes_newest_first() {
        let store = SpanStore::new(256, 1);
        store.record(span(1, 10, 0, 0, Phase::Parse, 100));
        store.record(span(1, 11, 10, 1, Phase::FanOut, 150));
        store.record(span(2, 20, 0, 0, Phase::Parse, 900));
        let recent = store.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace_id, 2);
        assert_eq!(recent[1].trace_id, 1);
        assert_eq!(recent[1].spans, 2);
        assert_eq!(recent[1].phase, Phase::Parse);
        assert!(recent[1].duration_us >= 50);
        assert_eq!(store.recent(1).len(), 1);
    }

    #[test]
    fn phase_histograms_fold_every_span() {
        let store = SpanStore::new(64, 1);
        store.record(span(1, 1, 0, 0, Phase::Fold, 0));
        store.record(span(1, 2, 1, 0, Phase::Fold, 0));
        let hists = store.phase_histograms();
        let fold = &hists.iter().find(|(p, _)| *p == Phase::Fold).unwrap().1;
        assert_eq!(fold.count(), 2);
        assert_eq!(fold.sum(), 24); // 2 × (queue 5 + service 7)
        let parse = &hists.iter().find(|(p, _)| *p == Phase::Parse).unwrap().1;
        assert_eq!(parse.count(), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5_000);
        assert_eq!(h.cumulative(), vec![1, 2, 3]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5_055);
        // Boundary values land in their bucket (le = inclusive).
        let mut h = Histogram::new(&[10]);
        h.observe(10);
        assert_eq!(h.cumulative(), vec![1, 1]);
    }

    #[test]
    fn histogram_quantile_reports_bucket_upper_bounds() {
        let mut h = Histogram::new(&[10, 100, 1_000]);
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..9 {
            h.observe(50);
        }
        h.observe(500);
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.95), 100);
        assert_eq!(h.quantile(1.0), 1_000);
        // Overflow observations clamp to the last finite bound.
        h.observe(50_000);
        assert_eq!(h.quantile(1.0), 1_000);
    }

    #[test]
    fn exemplars_keep_latest_trace_id_per_bucket() {
        let mut e = BucketExemplars::new(&[10, 100]);
        assert!(e.entries().is_empty());
        e.observe(5, 111);
        e.observe(7, 222); // same bucket: latest wins
        e.observe(50, 0); // untraced: ignored
        e.observe(5_000, 333); // +Inf bucket
        assert_eq!(e.entries(), vec![(10, 222), (u64::MAX, 333)]);
    }

    #[test]
    fn store_surfaces_phase_exemplars() {
        let store = SpanStore::new(64, 1);
        store.record(span(41, 1, 0, 0, Phase::Fold, 0));
        store.record(span(42, 2, 0, 0, Phase::Fold, 0));
        let ex = store.phase_exemplars();
        assert_eq!(ex.len(), 1);
        let (phase, entries) = &ex[0];
        assert_eq!(*phase, Phase::Fold);
        // Both spans land in the 50 µs bucket (queue 5 + service 7);
        // the later one is the exemplar.
        assert_eq!(entries.as_slice(), &[(50, 42)]);
    }

    #[test]
    fn waterfall_indents_children_and_marks_orphans() {
        let spans = vec![
            span(5, 1, 0, 0, Phase::Parse, 0),
            span(5, 2, 1, 0, Phase::FanOut, 10),
            span(5, 3, 2, 1, Phase::Fold, 20),
            // Orphan: parent span 99 was never merged.
            span(5, 4, 99, 2, Phase::Fold, 30),
        ];
        let text = render_waterfall(5, &spans, &[3]);
        assert!(
            text.contains("trace 0x0000000000000005 (4 spans)"),
            "{text}"
        );
        assert!(text.contains("parse"), "{text}");
        let fanout_line = text.lines().find(|l| l.contains("fan-out")).unwrap();
        let fold_line = text.lines().find(|l| l.contains("fold")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(fanout_line) > indent(text.lines().nth(1).unwrap()));
        assert!(indent(fold_line) > indent(fanout_line));
        assert!(text.contains("(orphan)"), "{text}");
        assert!(text.contains("node n3 unreachable"), "{text}");
        assert!(text.contains("queue=5us service=7us"), "{text}");
    }

    #[test]
    fn waterfall_of_unknown_trace_says_so() {
        let text = render_waterfall(1, &[], &[]);
        assert!(text.contains("no spans recorded"), "{text}");
    }
}

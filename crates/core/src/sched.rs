//! Query-plane scheduler state: the probe-cost cache (with its churn
//! epoch), the registry of in-flight probes that lets concurrent queries
//! share one probe round-trip, and the batch queue that coalesces same-hop
//! fan-out into single frames.
//!
//! The node layer (`node.rs`) owns one [`QuerySched`] per node and drives
//! it from the front-end paths; everything here is pure bookkeeping with
//! no message I/O, so the policies are unit-testable in isolation.

use std::collections::{BTreeMap, HashMap, VecDeque};

use moara_dht::Id;
use moara_simnet::{NodeId, SimTime};
use moara_transport::NetCtx;

use crate::config::ProbeCachePolicy;
use crate::msg::{MoaraMsg, PredKey};

/// One cached probe result.
#[derive(Clone, Debug)]
struct CacheEntry {
    cost: u64,
    at: SimTime,
    epoch: u64,
}

/// Per-front-end cache of size-probe results, bounded by TTL, a churn
/// epoch, and a capacity.
///
/// * **TTL** — entries older than the policy's `ttl` are ignored; the
///   backstop against churn the front-end never observes directly.
/// * **Epoch** — an O(1) invalidate-all: the node bumps it whenever it
///   sees evidence of group change (local attribute churn, overlay
///   reconfiguration); entries cached under an older epoch are ignored.
///   Status traffic for a specific predicate invalidates just that key.
/// * **Capacity** — oldest-insertion eviction keeps the map bounded in
///   run-forever deployments.
///
/// Correctness note: probe costs only steer *which* valid cover the
/// planner picks, so a stale entry can cost messages but never a wrong
/// answer.
#[derive(Debug)]
pub struct ProbeCache {
    policy: ProbeCachePolicy,
    epoch: u64,
    entries: HashMap<PredKey, CacheEntry>,
    order: VecDeque<PredKey>,
}

impl ProbeCache {
    /// An empty cache under `policy`.
    pub fn new(policy: ProbeCachePolicy) -> ProbeCache {
        ProbeCache {
            policy,
            epoch: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Whether the policy caches at all.
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    /// The current churn epoch (monotone; observable for tests).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live entries (stale ones included until overwritten or evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A still-valid cached cost for `key`, if any.
    pub fn lookup(&self, key: &str, now: SimTime) -> Option<u64> {
        let ProbeCachePolicy::Cache { ttl, .. } = self.policy else {
            return None;
        };
        let e = self.entries.get(key)?;
        (e.epoch == self.epoch && now.duration_since(e.at) < ttl).then_some(e.cost)
    }

    /// Caches a probe result under the current epoch.
    pub fn insert(&mut self, key: PredKey, cost: u64, now: SimTime) {
        let ProbeCachePolicy::Cache { capacity, .. } = self.policy else {
            return;
        };
        use std::collections::hash_map::Entry;
        match self.entries.entry(key.clone()) {
            Entry::Occupied(mut e) => {
                *e.get_mut() = CacheEntry {
                    cost,
                    at: now,
                    epoch: self.epoch,
                };
            }
            Entry::Vacant(e) => {
                e.insert(CacheEntry {
                    cost,
                    at: now,
                    epoch: self.epoch,
                });
                self.order.push_back(key);
                while self.order.len() > capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.entries.remove(&old);
                    }
                }
            }
        }
    }

    /// Drops the entry for one predicate (targeted churn signal: a
    /// `Status` update for that tree passed through this node). The key
    /// leaves the eviction order too — a ghost there would make a later
    /// re-insert of the same key evict itself once the cache fills.
    pub fn invalidate(&mut self, key: &str) {
        if self.entries.remove(key).is_some() {
            self.order.retain(|k| k != key);
        }
    }

    /// Invalidates every entry at once (broad churn signal: local
    /// attribute change or overlay reconfiguration). O(1); stale entries
    /// are skipped on lookup and recycled by capacity eviction.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }
}

/// One outstanding size probe: who waits on it, when it was (last)
/// sent, and under which churn epoch.
#[derive(Debug)]
pub struct ProbeWait {
    /// Front ids waiting on the reply.
    pub fronts: Vec<u64>,
    /// When the probe was last put on the wire. A probe older than the
    /// probe timeout is presumed lost and re-sent by the next query —
    /// without this, continuous traffic would coalesce onto a dead probe
    /// forever.
    pub sent_at: SimTime,
    /// The cache epoch when the probe was (last) sent. A reply from an
    /// older epoch is delivered to its waiters but *not* cached: the
    /// epoch bump happened precisely to evict pre-churn measurements.
    pub epoch: u64,
    /// The query id carried by the latest probe send. Replies echo it,
    /// so a slow reply to a superseded (re-sent) probe can be told apart
    /// from the authoritative one — only the latter may be cached.
    pub probe_qid: crate::msg::QueryId,
}

/// The scheduler: the probe cache plus the in-flight probe registry that
/// lets overlapping queries share one probe per predicate.
#[derive(Debug)]
pub struct QuerySched {
    /// Cached probe costs.
    pub cache: ProbeCache,
    /// Outstanding probes by predicate key. An entry means a probe is
    /// (believed) in flight and new queries should piggyback instead of
    /// re-sending — unless it has aged past the probe timeout.
    pub waiters: HashMap<PredKey, ProbeWait>,
}

impl QuerySched {
    /// A fresh scheduler under the given cache policy.
    pub fn new(policy: ProbeCachePolicy) -> QuerySched {
        QuerySched {
            cache: ProbeCache::new(policy),
            waiters: HashMap::new(),
        }
    }

    /// Drops `front_id` from every probe waiting list (the front timed
    /// out or finished); keys left with no waiters are forgotten so the
    /// next query re-probes rather than coalescing onto a lost probe.
    pub fn forget_front(&mut self, front_id: u64) {
        self.waiters.retain(|_, wait| {
            wait.fronts.retain(|&f| f != front_id);
            !wait.fronts.is_empty()
        });
    }
}

/// Collects outbound routed messages and flushes them with same-next-hop
/// coalescing: one destination getting several messages receives a single
/// [`MoaraMsg::Batch`] frame instead of several frames.
///
/// Used on the front-end fan-out paths (probes, sub-queries) and again at
/// every intermediate hop when a batch is unpacked and re-forwarded — so
/// messages sharing an overlay path prefix share frames along the whole
/// prefix.
#[derive(Debug, Default)]
pub struct BatchQueue {
    by_hop: BTreeMap<NodeId, Vec<MoaraMsg>>,
    local: Vec<(Id, MoaraMsg)>,
}

impl BatchQueue {
    /// An empty queue.
    pub fn new() -> BatchQueue {
        BatchQueue::default()
    }

    /// Queues `inner` for routing toward `key` via `next_hop`.
    pub fn push_remote(&mut self, next_hop: NodeId, key: Id, inner: MoaraMsg) {
        self.by_hop
            .entry(next_hop)
            .or_default()
            .push(MoaraMsg::Route {
                key,
                inner: Box::new(inner),
            });
    }

    /// Queues `inner` for local handling (this node is `key`'s root).
    pub fn push_local(&mut self, key: Id, inner: MoaraMsg) {
        self.local.push((key, inner));
    }

    /// Sends everything queued (one frame per next hop — a bare `Route`
    /// when a hop gets a single message, a [`MoaraMsg::Batch`] otherwise)
    /// and returns the messages this node must handle itself as root.
    /// Iteration is in `NodeId` order, keeping simulator runs
    /// deterministic.
    pub fn flush(self, ctx: &mut dyn NetCtx<MoaraMsg>) -> Vec<(Id, MoaraMsg)> {
        for (next, mut msgs) in self.by_hop {
            if msgs.len() == 1 {
                ctx.send(next, msgs.pop().expect("len checked"));
            } else {
                ctx.count("batched_fanout");
                ctx.send(next, MoaraMsg::Batch { items: msgs });
            }
        }
        self.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_simnet::SimDuration;

    fn cache(ttl_secs: u64, capacity: usize) -> ProbeCache {
        ProbeCache::new(ProbeCachePolicy::Cache {
            ttl: SimDuration::from_secs(ttl_secs),
            capacity,
        })
    }

    fn t(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    #[test]
    fn off_policy_never_caches() {
        let mut c = ProbeCache::new(ProbeCachePolicy::Off);
        assert!(!c.enabled());
        c.insert("A=1".into(), 10, t(0));
        assert!(c.is_empty());
        assert_eq!(c.lookup("A=1", t(0)), None);
    }

    #[test]
    fn hit_until_ttl_expires() {
        let mut c = cache(10, 8);
        c.insert("A=1".into(), 42, t(0));
        assert_eq!(c.lookup("A=1", t(9)), Some(42));
        assert_eq!(c.lookup("A=1", t(10)), None, "ttl is exclusive");
        // Re-inserting refreshes the clock.
        c.insert("A=1".into(), 43, t(10));
        assert_eq!(c.lookup("A=1", t(19)), Some(43));
    }

    #[test]
    fn epoch_bump_invalidates_everything_at_once() {
        let mut c = cache(100, 8);
        c.insert("A=1".into(), 1, t(0));
        c.insert("B=1".into(), 2, t(0));
        c.bump_epoch();
        assert_eq!(c.lookup("A=1", t(1)), None);
        assert_eq!(c.lookup("B=1", t(1)), None);
        // New inserts live under the new epoch.
        c.insert("A=1".into(), 3, t(1));
        assert_eq!(c.lookup("A=1", t(2)), Some(3));
    }

    #[test]
    fn targeted_invalidation_spares_other_keys() {
        let mut c = cache(100, 8);
        c.insert("A=1".into(), 1, t(0));
        c.insert("B=1".into(), 2, t(0));
        c.invalidate("A=1");
        assert_eq!(c.lookup("A=1", t(1)), None);
        assert_eq!(c.lookup("B=1", t(1)), Some(2));
    }

    #[test]
    fn invalidate_then_reinsert_does_not_self_evict_at_capacity() {
        // Regression: invalidate used to leave the key in the eviction
        // order, so re-inserting it at capacity popped the ghost and
        // deleted the entry just inserted.
        let mut c = cache(100, 2);
        c.insert("A=1".into(), 1, t(0));
        c.insert("B=1".into(), 2, t(0));
        c.invalidate("A=1");
        c.insert("A=1".into(), 9, t(1));
        assert_eq!(c.lookup("A=1", t(2)), Some(9), "fresh entry must survive");
        assert_eq!(c.lookup("B=1", t(2)), Some(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_evicts_oldest_insertion() {
        let mut c = cache(100, 2);
        c.insert("A=1".into(), 1, t(0));
        c.insert("B=1".into(), 2, t(1));
        c.insert("C=1".into(), 3, t(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("A=1", t(3)), None, "oldest evicted");
        assert_eq!(c.lookup("B=1", t(3)), Some(2));
        assert_eq!(c.lookup("C=1", t(3)), Some(3));
    }

    #[test]
    fn insert_at_exactly_capacity_keeps_everything() {
        // Regression guard for the `while order.len() > capacity` boundary:
        // filling the cache to exactly its capacity must evict nothing —
        // an off-by-one (`>=`) would silently shrink every full cache.
        let mut c = cache(100, 3);
        c.insert("A=1".into(), 1, t(0));
        c.insert("B=1".into(), 2, t(1));
        c.insert("C=1".into(), 3, t(2));
        assert_eq!(c.len(), 3, "exactly-at-capacity insert must not evict");
        assert_eq!(c.lookup("A=1", t(3)), Some(1));
        assert_eq!(c.lookup("B=1", t(3)), Some(2));
        assert_eq!(c.lookup("C=1", t(3)), Some(3));
        // The next insert beyond capacity evicts exactly the oldest
        // insertion — and only it.
        c.insert("D=1".into(), 4, t(4));
        assert_eq!(c.len(), 3);
        assert_eq!(c.lookup("A=1", t(5)), None, "oldest insertion evicted");
        assert_eq!(c.lookup("B=1", t(5)), Some(2));
        assert_eq!(c.lookup("C=1", t(5)), Some(3));
        assert_eq!(c.lookup("D=1", t(5)), Some(4));
    }

    #[test]
    fn capacity_one_still_serves_warm_repeats() {
        // The degenerate cache must still be a cache: a repeated query
        // for the same predicate hits, and only a *different* key (not a
        // refresh of the same one) displaces the entry.
        let mut c = cache(100, 1);
        c.insert("A=1".into(), 7, t(0));
        assert_eq!(c.lookup("A=1", t(1)), Some(7), "warm repeat");
        assert_eq!(c.lookup("A=1", t(2)), Some(7), "still warm");
        c.insert("A=1".into(), 8, t(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup("A=1", t(4)), Some(8), "refresh keeps the key");
        c.insert("B=1".into(), 9, t(5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup("A=1", t(6)), None);
        assert_eq!(c.lookup("B=1", t(6)), Some(9));
    }

    #[test]
    fn forget_front_clears_emptied_keys_only() {
        let wait = |fronts: Vec<u64>| ProbeWait {
            fronts,
            sent_at: t(0),
            epoch: 0,
            probe_qid: crate::msg::QueryId {
                origin: moara_simnet::NodeId(0),
                n: 0,
            },
        };
        let mut s = QuerySched::new(ProbeCachePolicy::Off);
        s.waiters.insert("A=1".into(), wait(vec![1, 2]));
        s.waiters.insert("B=1".into(), wait(vec![1]));
        s.forget_front(1);
        assert_eq!(s.waiters.get("A=1").map(|w| &w.fronts), Some(&vec![2]));
        assert!(!s.waiters.contains_key("B=1"));
    }
}

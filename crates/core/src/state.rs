//! Per-(node, predicate) protocol state: the paper's dynamic-maintenance
//! state machine (Section 4) extended with the separate query plane
//! (Section 5).
//!
//! Each node keeps, for every predicate it has seen, three conceptual
//! variables:
//!
//! * `sat` — should this subtree keep receiving queries? (Procedure 1:
//!   true if the node satisfies the predicate locally or any child is in
//!   NO-PRUNE state; children that have never reported count as NO-PRUNE.)
//! * `update` — is the node propagating status changes to its parent?
//!   (Procedure 2: driven by the `2·qn` vs `c` bandwidth comparison over a
//!   sliding window of recent events.)
//! * `prune` — may the parent skip this branch? (Procedure 3:
//!   `update ∧ sat ⇒ ¬prune`, `update ∧ ¬sat ⇒ prune`, `¬update ⇒ ¬prune`.)
//!
//! The separate query plane replaces the boolean `sat` with set-valued
//! state: `qSet` (whom do I forward queries to) and `updateSet` (whom
//! should my parent forward to instead of me, when small enough). With
//! `threshold = 1` the machinery degenerates to the plain pruned tree.
//!
//! This module is pure state-machine logic — no message I/O — so the
//! transition rules can be unit- and property-tested in isolation; the
//! node layer (`node.rs`) turns [`StatusOut`] values into wire messages.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use moara_query::SimplePredicate;
use moara_simnet::NodeId;

/// What a child last reported (via a `Status` message).
#[derive(Clone, Debug, PartialEq)]
pub struct ChildInfo {
    /// True = PRUNE: the branch need not receive queries.
    pub prune: bool,
    /// The child's updateSet: whom to forward queries to in its stead.
    pub update_set: Vec<NodeId>,
    /// The child's NO-PRUNE subtree count (lazy query-cost info).
    pub np: u64,
}

/// An adaptation event in the sliding window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AdaptEvent {
    /// A query the system ran while our updateSet did not contain us
    /// (counts toward `qn`).
    QueryQn,
    /// A query we received while our updateSet contained us (`qs`).
    QueryQs,
    /// A change to our updateSet (`c`).
    Change,
}

/// A status update that must be sent to the (new) parent.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusOut {
    /// PRUNE (true) or NO-PRUNE (false).
    pub prune: bool,
    /// The updateSet to communicate (empty iff `prune`).
    pub update_set: Vec<NodeId>,
}

/// Per-predicate protocol state at one node.
#[derive(Clone, Debug)]
pub struct PredState {
    /// The predicate this tree serves.
    pub pred: SimplePredicate,
    /// Procedure-2 state: true = UPDATE, false = NO-UPDATE.
    pub update: bool,
    /// Does the local node satisfy the predicate right now?
    pub local_sat: bool,
    /// Status received from children (absent children are defaults:
    /// NO-PRUNE, forwarded to directly).
    pub children: BTreeMap<NodeId, ChildInfo>,
    /// Currently computed updateSet.
    pub cur_update_set: Vec<NodeId>,
    /// Derived `sat` variable (Procedure 1).
    pub sat: bool,
    /// Last (prune, updateSet) actually communicated to the parent;
    /// `None` = nothing ever sent (parent assumes the default).
    pub sent: Option<(bool, Vec<NodeId>)>,
    /// Cached tree parent (for detecting reconfiguration).
    pub parent: Option<NodeId>,
    /// Root-only: sequence numbers handed to queries on this tree.
    pub seq_counter: u64,
    /// Highest query sequence number this node has accounted.
    pub last_seen_seq: u64,
    events: VecDeque<AdaptEvent>,
    k_update: usize,
    k_no_update: usize,
    threshold: usize,
    forced_update: bool,
}

impl PredState {
    /// Fresh state for `pred`. Nodes start in NO-UPDATE (the paper's
    /// default: no state ⇒ receive every query). `forced_update` pins the
    /// machine in UPDATE state (the Always-Update baseline).
    pub fn new(
        pred: SimplePredicate,
        k_update: usize,
        k_no_update: usize,
        threshold: usize,
        forced_update: bool,
    ) -> PredState {
        PredState {
            pred,
            update: forced_update,
            local_sat: false,
            children: BTreeMap::new(),
            cur_update_set: Vec::new(),
            sat: false,
            sent: None,
            parent: None,
            seq_counter: 0,
            last_seen_seq: 0,
            events: VecDeque::new(),
            k_update: k_update.max(1),
            k_no_update: k_no_update.max(1),
            threshold: threshold.max(1),
            forced_update,
        }
    }

    /// The `prune` variable (Procedure 3), derived so the paper's
    /// invariants hold by construction.
    pub fn prune(&self) -> bool {
        self.update && !self.sat
    }

    /// Asserts the Section 4 invariants; called from debug paths and tests.
    pub fn check_invariants(&self) {
        if !self.update {
            assert!(!self.prune(), "update=0 must imply prune=0");
        }
        if self.update && self.sat {
            assert!(!self.prune());
        }
        if self.update && !self.sat {
            assert!(self.prune());
        }
        // NO-PRUNE ⟺ non-empty updateSet at the wire level.
        if let Some((prune, set)) = &self.sent {
            assert_eq!(*prune, set.is_empty(), "sent PRUNE iff empty updateSet");
        }
    }

    /// Records what a child reported. Call [`PredState::refresh`] after.
    pub fn note_child_status(&mut self, child: NodeId, info: ChildInfo) {
        self.children.insert(child, info);
    }

    /// Forgets state about nodes that are no longer children (topology
    /// reconfiguration).
    pub fn retain_children(&mut self, is_child: impl Fn(NodeId) -> bool) {
        self.children.retain(|&c, _| is_child(c));
    }

    /// Accounts query sequence numbers observed indirectly (piggybacked on
    /// a child's status update): every query between our last-seen number
    /// and `seq` is one we missed while pruned or bypassed, so each counts
    /// toward `qn` (Section 5's correction for bypassed nodes).
    pub fn account_seq(&mut self, seq: u64) {
        if seq <= self.last_seen_seq {
            return;
        }
        let missed = seq - self.last_seen_seq;
        let cap = self.k_update.max(self.k_no_update) as u64;
        for _ in 0..missed.min(cap) {
            self.push_event(AdaptEvent::QueryQn);
        }
        self.last_seen_seq = seq;
        self.transition();
    }

    /// Records the receipt of a query with sequence number `seq` (and any
    /// missed queries the gap reveals), then runs the Procedure-2
    /// transition.
    pub fn on_query(&mut self, me: NodeId, seq: u64) {
        // Gap since the last seen sequence number → missed queries (qn).
        if seq > self.last_seen_seq + 1 {
            let missed = seq - self.last_seen_seq - 1;
            let cap = self.k_update.max(self.k_no_update) as u64;
            for _ in 0..missed.min(cap) {
                self.push_event(AdaptEvent::QueryQn);
            }
        }
        if seq > self.last_seen_seq {
            self.last_seen_seq = seq;
        }
        // SQP classification (Section 5): a query counts as `qs` when this
        // node's updateSet contains its own id (it is supposed to receive
        // queries), otherwise as `qn`. This is maintained in NO-UPDATE
        // state too — the sets are computed, just not communicated.
        let counts_qs = self.cur_update_set.contains(&me);
        self.push_event(if counts_qs {
            AdaptEvent::QueryQs
        } else {
            AdaptEvent::QueryQn
        });
        self.transition();
    }

    /// Whether this node currently receives queries from its parent: true
    /// in NO-UPDATE (the parent forwards by default) or when its
    /// communicated updateSet contains itself.
    fn receives_queries(&self, me: NodeId) -> bool {
        if !self.update {
            return true;
        }
        self.cur_update_set.contains(&me)
    }

    /// Recomputes `qSet` / `updateSet` / `sat` from local satisfaction and
    /// child reports (Procedures 1 and the Section 5 set rules), records a
    /// `Change` event if the updateSet changed, and runs the transition.
    ///
    /// `all_children` is the node's child list in this tree (from the DHT
    /// routing state); children without an entry in `self.children` are
    /// defaults and must keep receiving queries through us.
    pub fn refresh(&mut self, me: NodeId, local_sat: bool, all_children: &[NodeId]) {
        self.local_sat = local_sat;
        let has_default_child = all_children.iter().any(|c| !self.children.contains_key(c));
        let mut qset: BTreeSet<NodeId> = BTreeSet::new();
        if local_sat {
            qset.insert(me);
        }
        for c in all_children {
            if let Some(info) = self.children.get(c) {
                if !info.prune {
                    qset.extend(info.update_set.iter().copied());
                }
            }
        }
        self.sat = !qset.is_empty() || has_default_child;
        let new_set: Vec<NodeId> = if has_default_child {
            // We must receive queries ourselves to serve default children.
            vec![me]
        } else if qset.len() < self.threshold {
            qset.into_iter().collect()
        } else {
            vec![me]
        };
        if new_set != self.cur_update_set {
            self.cur_update_set = new_set;
            self.push_event(AdaptEvent::Change);
            self.transition();
        }
    }

    /// The nodes a query on this tree should be forwarded to from here:
    /// default children directly, reporting NO-PRUNE children via their
    /// updateSets, PRUNE children not at all.
    pub fn query_targets(&self, me: NodeId, all_children: &[NodeId]) -> Vec<NodeId> {
        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        for c in all_children {
            match self.children.get(c) {
                None => {
                    targets.insert(*c);
                }
                Some(info) if !info.prune => {
                    targets.extend(info.update_set.iter().copied());
                }
                Some(_) => {}
            }
        }
        targets.remove(&me);
        targets.into_iter().collect()
    }

    /// NO-PRUNE subtree count: how many nodes a query through this branch
    /// will reach. Children that never reported contribute their whole
    /// (oracle-sized) subtrees — by default every node in them receives
    /// queries.
    pub fn np(
        &self,
        me: NodeId,
        all_children: &[NodeId],
        subtree_size: impl Fn(NodeId) -> u64,
    ) -> u64 {
        let mut np = u64::from(self.receives_queries(me));
        for c in all_children {
            np += match self.children.get(c) {
                None => subtree_size(*c),
                Some(info) if !info.prune => info.np,
                Some(_) => 0,
            };
        }
        np
    }

    /// What (if anything) must be communicated to the parent right now.
    ///
    /// In UPDATE state, the wire status is `(prune, updateSet)` and is
    /// (re)sent whenever it differs from what was last sent — including a
    /// first announcement that happens to match the parent's default,
    /// because the parent needs the explicit updateSet to participate in
    /// the separate query plane (Section 5: "whenever the updateSet
    /// changes at a node and is non-empty, it sends a NO-PRUNE message …
    /// with the new updateSet").
    ///
    /// In NO-UPDATE the wire status is pinned to `(NO-PRUNE, [me])` — a
    /// node may cease updating only after guaranteeing it keeps receiving
    /// queries — and is sent only if the parent believes something
    /// different (`sent == None` means the parent's default, which already
    /// behaves like `(NO-PRUNE, [me])`).
    pub fn status_to_send(&mut self, me: NodeId) -> Option<StatusOut> {
        let target: (bool, Vec<NodeId>) = if self.update {
            let prune = self.prune();
            (
                prune,
                if prune {
                    Vec::new()
                } else {
                    self.cur_update_set.clone()
                },
            )
        } else {
            (false, vec![me])
        };
        let send = if self.update {
            self.sent.as_ref() != Some(&target)
        } else {
            let believed = self.sent.clone().unwrap_or((false, vec![me]));
            believed != target
        };
        if !send {
            return None;
        }
        self.sent = Some(target.clone());
        Some(StatusOut {
            prune: target.0,
            update_set: target.1,
        })
    }

    fn push_event(&mut self, ev: AdaptEvent) {
        let cap = self.k_update.max(self.k_no_update);
        if self.events.len() == cap {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    /// Procedure 2: compare `2·qn` with `c` over the current window.
    fn transition(&mut self) {
        if self.forced_update {
            self.update = true;
            return;
        }
        let k = if self.update {
            self.k_update
        } else {
            self.k_no_update
        };
        let window = self.events.iter().rev().take(k);
        let mut qn = 0u64;
        let mut c = 0u64;
        for ev in window {
            match ev {
                AdaptEvent::QueryQn => qn += 1,
                AdaptEvent::QueryQs => {}
                AdaptEvent::Change => c += 1,
            }
        }
        if 2 * qn < c {
            self.update = false;
        } else if 2 * qn > c {
            self.update = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_query::CmpOp;

    fn me() -> NodeId {
        NodeId(0)
    }

    fn fresh(threshold: usize) -> PredState {
        PredState::new(
            SimplePredicate::new("A", CmpOp::Eq, true),
            1,
            3,
            threshold,
            false,
        )
    }

    #[test]
    fn starts_in_no_update_no_prune() {
        let s = fresh(1);
        assert!(!s.update);
        assert!(!s.prune());
        s.check_invariants();
    }

    #[test]
    fn first_query_moves_to_update() {
        // Paper Figure 4(b): (NO-UPDATE, NO-SAT) + query → UPDATE.
        let mut s = fresh(1);
        s.refresh(me(), false, &[]);
        s.on_query(me(), 1);
        assert!(s.update);
        assert!(s.prune(), "unsatisfied leaf in UPDATE prunes itself");
        assert_eq!(
            s.status_to_send(me()),
            Some(StatusOut {
                prune: true,
                update_set: vec![]
            })
        );
        s.check_invariants();
    }

    #[test]
    fn satisfied_leaf_stays_no_update_and_silent() {
        // A satisfied node receiving queries (qs) has nothing to gain from
        // UPDATE state — it must receive queries regardless. The paper
        // notes (UPDATE, SAT) is unreachable with k_UPDATE = 1.
        let mut s = fresh(1);
        s.refresh(me(), true, &[]); // change: updateSet [] → [me]
        s.on_query(me(), 1); // qs query
        assert!(!s.update);
        assert!(!s.prune());
        assert_eq!(s.cur_update_set, vec![me()]);
        assert_eq!(
            s.status_to_send(me()),
            None,
            "parent already assumes (NO-PRUNE,[me]) by default"
        );
        s.check_invariants();
    }

    #[test]
    fn update_sat_reachable_with_larger_window_then_change_keeps_update() {
        // With k_UPDATE = 2 the (UPDATE, SAT) state is reachable: a qn
        // query plus one change leaves 2·qn > c, and the node sends its
        // NO-PRUNE transition to the parent.
        let mut s = PredState::new(SimplePredicate::new("A", CmpOp::Eq, true), 2, 3, 1, false);
        s.refresh(me(), false, &[]);
        s.on_query(me(), 1); // qn → UPDATE, PRUNE
        assert!(s.update && s.prune());
        let _ = s.status_to_send(me());
        s.refresh(me(), true, &[]); // change; window [qn, change]: 2 > 1
        assert!(s.update && s.sat && !s.prune());
        assert_eq!(
            s.status_to_send(me()).unwrap(),
            StatusOut {
                prune: false,
                update_set: vec![me()]
            }
        );
        s.check_invariants();
    }

    #[test]
    fn account_seq_records_missed_queries() {
        let mut s = fresh(1);
        s.refresh(me(), false, &[]);
        // A child's status says the system has run 3 queries we never saw.
        s.account_seq(3);
        assert_eq!(s.last_seen_seq, 3);
        // qn-dominated window → UPDATE (so we can prune ourselves).
        assert!(s.update);
        s.check_invariants();
    }

    #[test]
    fn pruned_node_moving_to_no_update_reintroduces_itself() {
        let mut s = fresh(1);
        s.refresh(me(), false, &[]);
        s.on_query(me(), 1); // UPDATE + PRUNE
        assert_eq!(
            s.status_to_send(me()).unwrap(),
            StatusOut {
                prune: true,
                update_set: vec![]
            }
        );
        // Churn burst: three changes with no queries → NO-UPDATE.
        s.refresh(me(), true, &[]);
        s.refresh(me(), false, &[]);
        s.refresh(me(), true, &[]);
        assert!(!s.update);
        // Parent believes PRUNE; we must re-introduce (NO-PRUNE, [me]).
        assert_eq!(
            s.status_to_send(me()).unwrap(),
            StatusOut {
                prune: false,
                update_set: vec![me()]
            }
        );
        s.check_invariants();
    }

    #[test]
    fn missed_queries_counted_from_sequence_gap() {
        let mut s = fresh(1);
        s.refresh(me(), false, &[]);
        s.on_query(me(), 1); // UPDATE+PRUNE
        let _ = s.status_to_send(me());
        // Churn → NO-UPDATE (changes dominate).
        s.refresh(me(), true, &[]);
        s.refresh(me(), false, &[]);
        s.refresh(me(), true, &[]);
        assert!(!s.update);
        // Next query arrives with seq 7: 5 missed + this one → qn floods
        // the window → back to UPDATE.
        s.on_query(me(), 7);
        assert!(s.update);
        assert_eq!(s.last_seen_seq, 7);
    }

    #[test]
    fn child_pruning_and_targets() {
        let (c1, c2, c3) = (NodeId(1), NodeId(2), NodeId(3));
        let mut s = fresh(1);
        // No child state: all children are default targets.
        assert_eq!(s.query_targets(me(), &[c1, c2, c3]), vec![c1, c2, c3]);
        s.note_child_status(
            c1,
            ChildInfo {
                prune: true,
                update_set: vec![],
                np: 0,
            },
        );
        s.note_child_status(
            c2,
            ChildInfo {
                prune: false,
                update_set: vec![NodeId(9)], // bypassed descendant
                np: 1,
            },
        );
        s.refresh(me(), false, &[c1, c2, c3]);
        assert_eq!(s.query_targets(me(), &[c1, c2, c3]), vec![c3, NodeId(9)]);
        // sat: c3 is default → true even though local unsat and c1 pruned.
        assert!(s.sat);
        // updateSet forced to [me] because of default child c3.
        assert_eq!(s.cur_update_set, vec![me()]);
        s.check_invariants();
    }

    #[test]
    fn sqp_updateset_below_threshold_bypasses_node() {
        let c1 = NodeId(1);
        let mut s = PredState::new(
            SimplePredicate::new("A", CmpOp::Eq, true),
            1,
            3,
            2, // threshold
            false,
        );
        s.note_child_status(
            c1,
            ChildInfo {
                prune: false,
                update_set: vec![NodeId(7)],
                np: 1,
            },
        );
        s.refresh(me(), false, &[c1]);
        // qset = {7}, |qset| = 1 < 2 → updateSet = {7}: we are bypassed.
        assert_eq!(s.cur_update_set, vec![NodeId(7)]);
        assert!(s.sat);
        assert!(!s.prune());
        // With one more element it reverts to {me}.
        s.note_child_status(
            c1,
            ChildInfo {
                prune: false,
                update_set: vec![NodeId(7), NodeId(8)],
                np: 2,
            },
        );
        s.refresh(me(), false, &[c1]);
        assert_eq!(s.cur_update_set, vec![me()]);
    }

    #[test]
    fn np_accounts_defaults_via_subtree_sizes() {
        let (c1, c2) = (NodeId(1), NodeId(2));
        let mut s = fresh(1);
        s.note_child_status(
            c1,
            ChildInfo {
                prune: false,
                update_set: vec![c1],
                np: 3,
            },
        );
        s.refresh(me(), true, &[c1, c2]);
        s.on_query(me(), 1);
        // self(1, receives queries) + c1 subtree np(3) + default c2 (size 10)
        let np = s.np(me(), &[c1, c2], |c| if c == c2 { 10 } else { 99 });
        assert_eq!(np, 14);
        // Pruned child contributes 0.
        s.note_child_status(
            c1,
            ChildInfo {
                prune: true,
                update_set: vec![],
                np: 0,
            },
        );
        assert_eq!(s.np(me(), &[c1, c2], |_| 10), 11);
    }

    #[test]
    fn forced_update_never_leaves_update() {
        let mut s = PredState::new(SimplePredicate::new("A", CmpOp::Eq, true), 1, 3, 1, true);
        assert!(s.update);
        for i in 0..10 {
            s.refresh(me(), i % 2 == 0, &[]);
            assert!(s.update, "always-update must stay in UPDATE");
        }
        s.check_invariants();
    }

    #[test]
    fn status_resend_only_on_difference() {
        let mut s = fresh(1);
        s.refresh(me(), false, &[]);
        s.on_query(me(), 1);
        assert!(s.status_to_send(me()).is_some());
        assert_eq!(s.status_to_send(me()), None, "second call is a no-op");
        // Becoming satisfied flips prune → must resend.
        s.refresh(me(), true, &[]);
        if s.update {
            let out = s.status_to_send(me()).unwrap();
            assert!(!out.prune);
            assert_eq!(out.update_set, vec![me()]);
        }
    }

    #[test]
    fn retain_children_drops_ex_children() {
        let mut s = fresh(1);
        s.note_child_status(
            NodeId(5),
            ChildInfo {
                prune: true,
                update_set: vec![],
                np: 0,
            },
        );
        s.retain_children(|c| c != NodeId(5));
        assert!(s.children.is_empty());
    }

    #[test]
    fn invariants_hold_across_random_walk() {
        // Drive the machine with a pseudo-random mix of inputs and check
        // the Section 4 invariants after every step.
        let mut s = fresh(2);
        let mut x: u64 = 0x12345678;
        let mut seq = 0u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x % 4 {
                0 => {
                    seq += 1;
                    s.on_query(me(), seq);
                }
                1 => s.refresh(me(), x & 16 != 0, &[NodeId(1)]),
                2 => {
                    s.note_child_status(
                        NodeId(1),
                        ChildInfo {
                            prune: x & 32 != 0,
                            update_set: if x & 32 != 0 { vec![] } else { vec![NodeId(1)] },
                            np: 1,
                        },
                    );
                    s.refresh(me(), x & 16 != 0, &[NodeId(1)]);
                }
                _ => {
                    let _ = s.status_to_send(me());
                }
            }
            s.check_invariants();
        }
    }
}

//! Engine configuration.

use moara_simnet::SimDuration;

/// Which aggregation system the engine runs — Moara itself or one of the
/// paper's comparison baselines (Section 7.1's "Global" and
/// "Moara (Always-Update)" lines in Figure 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full Moara: group trees with dynamic adaptation and the separate
    /// query plane.
    Moara,
    /// No group trees: every query is broadcast down the global DHT tree
    /// and answered by all nodes (the paper's *Global* baseline; this is
    /// also how SDIMS resolves a query over the whole system).
    Global,
    /// Group trees maintained aggressively: every node stays in UPDATE
    /// state forever, so each attribute-churn event propagates a status
    /// update (the paper's *Moara (Always-Update)* baseline).
    AlwaysUpdate,
}

/// When a node may discard per-predicate tree state (paper Section 4:
/// a node in NO-UPDATE state can garbage-collect a predicate's state
/// without affecting correctness — the parent's default behaviour already
/// forwards queries to it). The paper sketches these policies without
/// evaluating them; all three are implemented here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcPolicy {
    /// Never discard (the paper's evaluated configuration).
    Never,
    /// Discard NO-UPDATE state untouched for this long.
    IdleTimeout(SimDuration),
    /// Keep at most this many predicates; evict the least recently used
    /// NO-UPDATE states beyond that.
    KeepMostRecent(usize),
}

/// Whether (and how) a front-end caches size-probe results across
/// queries.
///
/// The paper's front-end probes every candidate group on every composite
/// query; under heavy repeated traffic the same groups are probed over
/// and over. The query-plane scheduler amortizes that round-trip: probe
/// replies land in a per-front-end cache keyed by predicate, and repeated
/// composite queries whose candidate costs are all cached skip the probe
/// phase entirely. Staleness is bounded two ways: a TTL, and a churn
/// epoch the front-end bumps whenever it observes group change (a local
/// attribute change, an incoming `Status`, or an overlay reconfiguration)
/// — bumping the epoch invalidates every cached entry at once. A stale
/// cost can only make the planner pick a more expensive *valid* cover;
/// answers stay exact either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeCachePolicy {
    /// Probe on every composite query (the paper's evaluated behaviour).
    Off,
    /// Cache probe results.
    Cache {
        /// How long one cached cost may be served.
        ttl: SimDuration,
        /// Maximum cached predicates; the oldest insertion is evicted
        /// beyond that.
        capacity: usize,
    },
}

impl ProbeCachePolicy {
    /// The default caching configuration (30 s TTL, 1024 predicates).
    pub fn default_cache() -> ProbeCachePolicy {
        ProbeCachePolicy::Cache {
            ttl: SimDuration::from_secs(30),
            capacity: 1024,
        }
    }

    /// True when caching is enabled.
    pub fn enabled(&self) -> bool {
        *self != ProbeCachePolicy::Off
    }
}

/// Tunables for a Moara deployment; defaults follow the paper.
#[derive(Clone, Debug)]
pub struct MoaraConfig {
    /// Engine mode (Moara or a baseline).
    pub mode: Mode,
    /// Separate-query-plane threshold (Section 5). `1` disables the
    /// separate query plane (plain pruned trees); the paper finds `2`
    /// captures most of the benefit.
    pub threshold: usize,
    /// Adaptation window while in UPDATE state (paper default 1).
    pub k_update: usize,
    /// Adaptation window while in NO-UPDATE state (paper default 3).
    pub k_no_update: usize,
    /// How long an internal node waits for children before answering with
    /// what it has (Section 3.2). `None` waits indefinitely, as in the
    /// paper's PlanetLab runs ("we do not timeout on queries").
    pub child_timeout: Option<SimDuration>,
    /// How long the front-end waits for size-probe replies before assuming
    /// worst-case costs.
    pub probe_timeout: SimDuration,
    /// Overall front-end deadline per query; expiring marks the outcome
    /// incomplete rather than hanging forever.
    pub front_timeout: Option<SimDuration>,
    /// Whether composite-query planning fetches per-group size estimates
    /// (Section 6.3). When off, the planner minimizes the number of groups
    /// instead (the "no SP" lines of Figure 13(b)).
    pub use_size_probes: bool,
    /// Probe-result caching across queries (the query-plane scheduler's
    /// amortization; irrelevant when `use_size_probes` is off).
    pub probe_cache: ProbeCachePolicy,
    /// Bits per DHT routing digit (Pastry `b`; FreePastry default 4).
    pub bits_per_digit: u32,
    /// How long answered query ids are remembered for duplicate
    /// suppression (the paper caches them for 5 minutes).
    pub dedup_ttl: SimDuration,
    /// Per-predicate state garbage collection (Section 4's policies).
    pub gc: GcPolicy,
}

impl Default for MoaraConfig {
    fn default() -> MoaraConfig {
        MoaraConfig {
            mode: Mode::Moara,
            threshold: 2,
            k_update: 1,
            k_no_update: 3,
            child_timeout: Some(SimDuration::from_secs(3)),
            probe_timeout: SimDuration::from_secs(3),
            front_timeout: Some(SimDuration::from_secs(60)),
            use_size_probes: true,
            probe_cache: ProbeCachePolicy::default_cache(),
            bits_per_digit: 4,
            dedup_ttl: SimDuration::from_secs(300),
            gc: GcPolicy::Never,
        }
    }
}

impl MoaraConfig {
    /// Configuration for the *Global* baseline.
    pub fn global() -> MoaraConfig {
        MoaraConfig {
            mode: Mode::Global,
            ..MoaraConfig::default()
        }
    }

    /// Configuration for the *Always-Update* baseline.
    pub fn always_update() -> MoaraConfig {
        MoaraConfig {
            mode: Mode::AlwaysUpdate,
            ..MoaraConfig::default()
        }
    }

    /// Sets the separate-query-plane threshold.
    pub fn with_threshold(mut self, threshold: usize) -> MoaraConfig {
        assert!(threshold >= 1, "threshold must be at least 1");
        self.threshold = threshold;
        self
    }

    /// Sets the state garbage-collection policy.
    pub fn with_gc(mut self, gc: GcPolicy) -> MoaraConfig {
        self.gc = gc;
        self
    }

    /// Sets the probe-cache policy.
    pub fn with_probe_cache(mut self, policy: ProbeCachePolicy) -> MoaraConfig {
        if let ProbeCachePolicy::Cache { ttl, capacity } = policy {
            assert!(capacity >= 1, "probe cache capacity must be at least 1");
            // A zero TTL can never satisfy `age < ttl`: the cache would
            // be "on" yet miss every lookup. Demand Off instead.
            assert!(ttl.as_micros() > 0, "probe cache ttl must be positive");
        }
        self.probe_cache = policy;
        self
    }

    /// Sets the adaptation windows `(k_UPDATE, k_NO-UPDATE)`.
    pub fn with_adaptation_windows(mut self, k_update: usize, k_no_update: usize) -> MoaraConfig {
        assert!(
            k_update >= 1 && k_no_update >= 1,
            "windows must be positive"
        );
        self.k_update = k_update;
        self.k_no_update = k_no_update;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = MoaraConfig::default();
        assert_eq!(c.mode, Mode::Moara);
        assert_eq!(c.threshold, 2);
        assert_eq!((c.k_update, c.k_no_update), (1, 3));
        assert!(c.use_size_probes);
        assert_eq!(c.dedup_ttl, SimDuration::from_secs(300));
        assert_eq!(c.gc, GcPolicy::Never);
        assert!(c.probe_cache.enabled());
    }

    #[test]
    fn probe_cache_builder() {
        let c = MoaraConfig::default().with_probe_cache(ProbeCachePolicy::Off);
        assert_eq!(c.probe_cache, ProbeCachePolicy::Off);
        assert!(!c.probe_cache.enabled());
        let c = c.with_probe_cache(ProbeCachePolicy::Cache {
            ttl: SimDuration::from_secs(5),
            capacity: 16,
        });
        assert!(c.probe_cache.enabled());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_probe_cache_capacity_rejected() {
        let _ = MoaraConfig::default().with_probe_cache(ProbeCachePolicy::Cache {
            ttl: SimDuration::from_secs(5),
            capacity: 0,
        });
    }

    #[test]
    #[should_panic(expected = "ttl must be positive")]
    fn zero_probe_cache_ttl_rejected() {
        let _ = MoaraConfig::default().with_probe_cache(ProbeCachePolicy::Cache {
            ttl: SimDuration::from_micros(0),
            capacity: 4,
        });
    }

    #[test]
    fn gc_builder() {
        let c = MoaraConfig::default().with_gc(GcPolicy::KeepMostRecent(4));
        assert_eq!(c.gc, GcPolicy::KeepMostRecent(4));
        let c = c.with_gc(GcPolicy::IdleTimeout(SimDuration::from_secs(60)));
        assert_eq!(c.gc, GcPolicy::IdleTimeout(SimDuration::from_secs(60)));
    }

    #[test]
    fn builders() {
        assert_eq!(MoaraConfig::global().mode, Mode::Global);
        assert_eq!(MoaraConfig::always_update().mode, Mode::AlwaysUpdate);
        let c = MoaraConfig::default()
            .with_threshold(4)
            .with_adaptation_windows(2, 5);
        assert_eq!(c.threshold, 4);
        assert_eq!((c.k_update, c.k_no_update), (2, 5));
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn zero_threshold_rejected() {
        let _ = MoaraConfig::default().with_threshold(0);
    }
}

//! The deployment harness: wires Moara nodes, the DHT overlay, and a
//! pluggable transport together, and gives experiments a synchronous
//! driving API.
//!
//! [`Directory`] is the shared overlay view — the stand-in for each node's
//! FreePastry routing state plus the implicit DHT-tree structure derived
//! from it (see `moara-dht`). [`Cluster`] owns a [`Transport`] hosting the
//! nodes and exposes the operations the paper's experiments perform: set
//! attributes (group churn), issue queries, fail/add nodes, and read
//! message/latency statistics.
//!
//! `Cluster` is generic over the transport backend. The default,
//! [`SimTransport`], runs on the deterministic discrete-event simulator —
//! all of the paper's experiments use it. [`ClusterBuilder::build_tcp`]
//! instead hosts every node over real loopback TCP sockets
//! ([`TcpTransport`]), which is how `examples/tcp_cluster.rs` and the
//! `tcp_cluster` integration test exercise the full protocol over a real
//! network path. Multi-process deployment (one node per `moarad` daemon)
//! lives in the `moara-daemon` crate.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moara_dht::{Id, Ring, TreeTopology};
use moara_query::{parse_query, ParseError, Query, SimplePredicate};
use moara_simnet::{latency, LatencyModel, NodeId, SimDuration, SimTime, Stats};
use moara_trace::SpanStore;
use moara_transport::{SimTransport, TcpConfig, TcpTransport, Transport};

use crate::config::MoaraConfig;
use crate::node::{MoaraNode, QueryOutcome};

struct CachedTree {
    topo: TreeTopology,
    sizes: HashMap<Id, u64>,
}

struct DirInner {
    ring: Ring,
    id_of: Vec<Id>,
    node_of: HashMap<Id, NodeId>,
    trees: HashMap<Id, CachedTree>,
}

impl DirInner {
    fn ensure_tree(&mut self, key: Id) -> &CachedTree {
        self.trees.entry(key).or_insert_with(|| {
            let topo = TreeTopology::build(&self.ring, key);
            // Subtree sizes: accumulate bottom-up in depth order.
            let mut order: Vec<Id> = topo.nodes().collect();
            order.sort_by_key(|&n| std::cmp::Reverse(topo.depth_of(n).unwrap_or(0)));
            let mut sizes: HashMap<Id, u64> = HashMap::with_capacity(order.len());
            for n in order {
                let children_sum: u64 = topo.children(n).iter().map(|c| sizes[c]).sum();
                sizes.insert(n, 1 + children_sum);
            }
            CachedTree { topo, sizes }
        })
    }
}

/// Shared overlay directory: id mapping, routing decisions, and implicit
/// aggregation-tree structure, recomputed on membership changes.
#[derive(Clone)]
pub struct Directory {
    inner: Rc<RefCell<DirInner>>,
}

impl Directory {
    fn new(ring: Ring, id_of: Vec<Id>) -> Directory {
        let node_of = id_of
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, NodeId(i as u32)))
            .collect();
        Directory {
            inner: Rc::new(RefCell::new(DirInner {
                ring,
                id_of,
                node_of,
                trees: HashMap::new(),
            })),
        }
    }

    /// Builds a directory from explicit `(ring id, node)` members — how
    /// daemon processes reconstruct an identical overlay view from a
    /// membership list. Nodes must be `NodeId(0..n)` in order.
    pub fn from_members(members: &[(NodeId, Id)], bits_per_digit: u32) -> Directory {
        let mut ring = Ring::new(bits_per_digit);
        let mut id_of = Vec::with_capacity(members.len());
        for (i, &(node, id)) in members.iter().enumerate() {
            assert_eq!(node.index(), i, "members must be dense and ordered");
            ring.add(id);
            id_of.push(id);
        }
        Directory::new(ring, id_of)
    }

    /// Replaces the membership in place (all handles see the update) and
    /// invalidates cached trees — how daemons apply membership broadcasts.
    pub fn reset_members(&self, members: &[(NodeId, Id)], bits_per_digit: u32) {
        let fresh = Directory::from_members(members, bits_per_digit);
        let mut inner = self.inner.borrow_mut();
        *inner = Rc::try_unwrap(fresh.inner)
            .ok()
            .expect("fresh directory has one handle")
            .into_inner();
    }

    /// The ring id of a node.
    pub fn id_of(&self, node: NodeId) -> Id {
        self.inner.borrow().id_of[node.index()]
    }

    /// Current overlay membership size (alive nodes).
    pub fn ring_size(&self) -> usize {
        self.inner.borrow().ring.len()
    }

    /// The node owning `key` (the root of `key`'s tree).
    pub fn owner_node(&self, key: Id) -> NodeId {
        let inner = self.inner.borrow();
        inner.node_of[&inner.ring.owner(key)]
    }

    /// The next overlay hop from `me` toward `key` (`None` = `me` is the
    /// root).
    pub fn next_hop_node(&self, me: NodeId, key: Id) -> Option<NodeId> {
        let inner = self.inner.borrow();
        let my_id = inner.id_of[me.index()];
        inner.ring.next_hop(my_id, key).map(|id| inner.node_of[&id])
    }

    /// `me`'s children in the tree for `key`.
    pub fn children_of(&self, key: Id, me: NodeId) -> Vec<NodeId> {
        let mut inner = self.inner.borrow_mut();
        let my_id = inner.id_of[me.index()];
        let tree = inner.ensure_tree(key);
        let kids: Vec<Id> = tree.topo.children(my_id).to_vec();
        kids.iter().map(|c| inner.node_of[c]).collect()
    }

    /// `me`'s parent in the tree for `key` (`None` for the root).
    pub fn parent_of(&self, key: Id, me: NodeId) -> Option<NodeId> {
        let mut inner = self.inner.borrow_mut();
        let my_id = inner.id_of[me.index()];
        let parent = inner.ensure_tree(key).topo.parent(my_id);
        parent.map(|p| inner.node_of[&p])
    }

    /// Size of `node`'s subtree in the tree for `key` (including itself).
    pub fn subtree_size(&self, key: Id, node: NodeId) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let id = inner.id_of[node.index()];
        inner.ensure_tree(key).sizes.get(&id).copied().unwrap_or(0)
    }

    fn add_member(&self, id: Id, node: NodeId) {
        let mut inner = self.inner.borrow_mut();
        inner.ring.add(id);
        debug_assert_eq!(inner.id_of.len(), node.index());
        inner.id_of.push(id);
        inner.node_of.insert(id, node);
        inner.trees.clear();
    }

    /// Removes a (failed) member from the overlay: its ring id leaves the
    /// ring and every cached tree is invalidated, so routing and tree
    /// structure repair around it. The id mapping is retained, which is
    /// what allows [`Directory::revive_member`] to undo this. Public so
    /// membership layers (the `moarad` daemon's failure detector, the
    /// simulated daemon swarm) can repair the overlay when *they* — not
    /// an omniscient harness — learn of a failure.
    pub fn remove_member(&self, node: NodeId) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.id_of[node.index()];
        inner.ring.remove(id);
        inner.node_of.remove(&id);
        inner.trees.clear();
    }

    /// Re-inserts a previously removed member under its original ring id
    /// (crash-recovery: the node rejoined with its identity intact).
    pub fn revive_member(&self, node: NodeId) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.id_of[node.index()];
        inner.ring.add(id);
        inner.node_of.insert(id, node);
        inner.trees.clear();
    }

    fn contains_ring_id(&self, id: Id) -> bool {
        self.inner.borrow().node_of.contains_key(&id)
    }
}

/// Builder for a Moara deployment.
pub struct ClusterBuilder {
    n: usize,
    cfg: MoaraConfig,
    seed: u64,
    latency: Box<dyn LatencyModel>,
    trace_sample: u64,
}

impl ClusterBuilder {
    /// Number of nodes to start with.
    pub fn nodes(mut self, n: usize) -> ClusterBuilder {
        self.n = n;
        self
    }

    /// Engine configuration.
    pub fn config(mut self, cfg: MoaraConfig) -> ClusterBuilder {
        self.cfg = cfg;
        self
    }

    /// Deterministic seed for ids, latencies, and workload randomness.
    pub fn seed(mut self, seed: u64) -> ClusterBuilder {
        self.seed = seed;
        self
    }

    /// Link-latency model for the simulator backend (defaults to constant
    /// 1 ms; ignored by [`ClusterBuilder::build_tcp`], where the kernel
    /// provides the latency).
    pub fn latency(mut self, model: impl LatencyModel + 'static) -> ClusterBuilder {
        self.latency = Box::new(model);
        self
    }

    /// Enables distributed tracing: every node records phase spans into
    /// one shared [`SpanStore`], sampling one query in `sample_every`
    /// (1 = every query, 0 = off). Because the store is shared, a
    /// cluster-wide merged span tree needs no scatter-gather here —
    /// exactly the merged view the daemons assemble over control sockets.
    pub fn tracing(mut self, sample_every: u64) -> ClusterBuilder {
        self.trace_sample = sample_every;
        self
    }

    /// Common setup: overlay ring, id shuffle, directory, node states.
    fn prepare(&mut self) -> (Directory, StdRng) {
        assert!(self.n > 0, "cluster needs at least one node");
        let ring = Ring::with_random_ids(self.n, self.cfg.bits_per_digit, self.seed);
        let id_of: Vec<Id> = ring.ids().to_vec();
        // Shuffle id assignment so NodeId order is independent of ring
        // order (deterministic in the seed).
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc0ffee);
        let mut id_of = id_of;
        for i in (1..id_of.len()).rev() {
            let j = rng.gen_range(0..=i);
            id_of.swap(i, j);
        }
        (Directory::new(ring, id_of), rng)
    }

    /// Builds the cluster on the deterministic simulator (the default
    /// backend; all paper experiments run here).
    pub fn build(mut self) -> Cluster {
        let (dir, rng) = self.prepare();
        let tracer = (self.trace_sample > 0)
            .then(|| Arc::new(SpanStore::new(TRACE_STORE_CAP, self.trace_sample)));
        let mut transport: SimTransport<MoaraNode> =
            SimTransport::new(self.latency, self.seed.wrapping_add(1));
        for _ in 0..self.n {
            let mut node = MoaraNode::new(dir.clone(), self.cfg.clone());
            if let Some(t) = &tracer {
                node.set_tracer(t.clone());
            }
            transport.add_node(node);
        }
        Cluster {
            transport,
            dir,
            cfg: self.cfg,
            rng,
            tracer,
        }
    }

    /// Builds the cluster over real TCP sockets on loopback: every node
    /// gets its own listener, and all protocol traffic crosses the kernel
    /// as length-prefixed frames. Timeouts in [`MoaraConfig`] become real
    /// time.
    pub fn build_tcp(self, tcp: TcpConfig) -> Cluster<TcpTransport<MoaraNode>> {
        let mut this = self;
        let (dir, rng) = this.prepare();
        let tracer = (this.trace_sample > 0)
            .then(|| Arc::new(SpanStore::new(TRACE_STORE_CAP, this.trace_sample)));
        let mut transport: TcpTransport<MoaraNode> = TcpTransport::new(tcp);
        for _ in 0..this.n {
            let mut node = MoaraNode::new(dir.clone(), this.cfg.clone());
            if let Some(t) = &tracer {
                node.set_tracer(t.clone());
            }
            transport.add_node(node);
        }
        Cluster {
            transport,
            dir,
            cfg: this.cfg,
            rng,
            tracer,
        }
    }
}

/// Span capacity of the harness-attached store (shared by all nodes).
const TRACE_STORE_CAP: usize = 65_536;

/// A running Moara deployment over some [`Transport`] backend.
///
/// With the default [`SimTransport`] this is the paper's simulated
/// deployment; with [`TcpTransport`] the same protocol state machines run
/// over real sockets.
pub struct Cluster<T: Transport<MoaraNode> = SimTransport<MoaraNode>> {
    transport: T,
    dir: Directory,
    cfg: MoaraConfig,
    rng: StdRng,
    /// The shared span store when built with [`ClusterBuilder::tracing`].
    tracer: Option<Arc<SpanStore>>,
}

impl Cluster {
    /// Starts building a cluster (simulator-backed unless finished with
    /// [`ClusterBuilder::build_tcp`]).
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            n: 1,
            cfg: MoaraConfig::default(),
            seed: 42,
            latency: Box::new(latency::Constant::from_millis(1)),
            trace_sample: 0,
        }
    }

    // ----- fault injection (simulator backend only) ---------------------
    //
    // Unlike `fail_node`, none of these touch the directory or notify any
    // node: the overlay keeps believing in the full membership while the
    // network silently loses frames — exactly the situation a real
    // deployment is in until its failure detector reacts.

    /// Cuts all traffic between `side` and the rest of the cluster, in
    /// both directions (a bidirectional netsplit). Stacks with previous
    /// partitions; undo with [`Cluster::heal`].
    pub fn partition(&mut self, side: &[NodeId]) {
        let side_set: std::collections::HashSet<NodeId> = side.iter().copied().collect();
        let rest: Vec<NodeId> = self
            .node_ids()
            .into_iter()
            .filter(|n| !side_set.contains(n))
            .collect();
        self.transport.faults_mut().partition(side, &rest);
    }

    /// Removes every partition (link-loss probabilities stay in force).
    pub fn heal(&mut self) {
        self.transport.faults_mut().heal();
    }

    /// Sets the message-drop probability of every link without a
    /// per-link override (lossy-network injection).
    pub fn set_default_drop(&mut self, p: f64) {
        self.transport.faults_mut().set_default_drop(p);
    }

    /// Sets the drop probability of the directed link `from → to`.
    pub fn set_link_drop(&mut self, from: NodeId, to: NodeId, p: f64) {
        self.transport.faults_mut().set_link_drop(from, to, p);
    }
}

impl<T: Transport<MoaraNode>> Cluster<T> {
    /// Number of nodes ever created (including failed).
    pub fn len(&self) -> usize {
        self.transport.len()
    }

    /// True if the cluster has no nodes (never: the builder requires one).
    pub fn is_empty(&self) -> bool {
        self.transport.is_empty()
    }

    /// All node ids ever created.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.transport.len() as u32).map(NodeId).collect()
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.transport.is_alive(node)
    }

    /// The shared overlay directory.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// The engine configuration.
    pub fn config(&self) -> &MoaraConfig {
        &self.cfg
    }

    /// The transport backend (e.g. to reach TCP-specific accessors).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The cluster-wide span store, when tracing was enabled at build
    /// time ([`ClusterBuilder::tracing`]).
    pub fn tracer(&self) -> Option<&Arc<SpanStore>> {
        self.tracer.as_ref()
    }

    /// Current time on the transport's clock (virtual under simulation,
    /// real elapsed time over TCP).
    pub fn now(&self) -> SimTime {
        self.transport.now()
    }

    /// Message statistics.
    pub fn stats(&self) -> &Stats {
        self.transport.stats()
    }

    /// Mutable statistics (reset between experiment phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.transport.stats_mut()
    }

    /// Direct read access to a node (assertions/inspection).
    pub fn node(&self, node: NodeId) -> &MoaraNode {
        self.transport.node(node)
    }

    /// Sets an attribute at a node and lets the protocol react (a "group
    /// churn" event when the change flips predicate satisfaction).
    pub fn set_attr(
        &mut self,
        node: NodeId,
        attr: &str,
        value: impl Into<moara_attributes::Value>,
    ) {
        if !self.transport.is_alive(node) {
            return;
        }
        let value = value.into();
        self.transport.with_node(node, |n, ctx| {
            n.store.set(attr, value);
            n.on_local_change(ctx, attr);
        });
    }

    /// Removes an attribute at a node.
    pub fn remove_attr(&mut self, node: NodeId, attr: &str) {
        if !self.transport.is_alive(node) {
            return;
        }
        self.transport.with_node(node, |n, ctx| {
            n.store.remove(attr);
            n.on_local_change(ctx, attr);
        });
    }

    /// Submits a query asynchronously from `origin`'s front-end. Drive the
    /// transport ([`Cluster::run_for`]) and collect the result with
    /// [`Cluster::take_outcome`].
    pub fn submit(&mut self, origin: NodeId, query: Query) -> u64 {
        self.transport
            .with_node(origin, |n, ctx| n.submit(ctx, query))
    }

    /// Takes the outcome of an asynchronous query if it has completed,
    /// with `messages` filled in from the transport's per-query counters
    /// — messages are tagged with their [`crate::QueryId`] on the wire,
    /// so the figure is exact even when queries overlap (a global
    /// before/after snapshot could not tell them apart).
    pub fn take_outcome(&mut self, origin: NodeId, front_id: u64) -> Option<QueryOutcome> {
        let mut outcome = self.transport.node_mut(origin).take_outcome(front_id)?;
        outcome.messages = self.transport.stats().messages_for_query(outcome.qid.tag());
        Some(outcome)
    }

    /// Runs a parsed query synchronously: submits it, drives the transport
    /// to quiescence, and returns the outcome with the message count this
    /// query caused (per-query accounting; maintenance traffic excluded).
    pub fn query_parsed(&mut self, origin: NodeId, query: Query) -> QueryOutcome {
        let fid = self.submit(origin, query);
        self.transport.run_to_quiescence();
        self.take_outcome(origin, fid)
            .expect("query completes under quiescence (front timeout bounds it)")
    }

    /// Parses and runs a query synchronously (either syntax of
    /// [`parse_query`]).
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed query text.
    pub fn query(&mut self, origin: NodeId, text: &str) -> Result<QueryOutcome, ParseError> {
        Ok(self.query_parsed(origin, parse_query(text)?))
    }

    /// Installs a standing query at `origin`'s front-end (the
    /// continuous-query subscription plane). Drive the cluster with
    /// [`Cluster::run_for`] / [`Cluster::run_to_quiescence`] and collect
    /// updates with [`Cluster::take_sub_updates`].
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed query text.
    pub fn subscribe(
        &mut self,
        origin: NodeId,
        text: &str,
        policy: moara_subscribe::DeliveryPolicy,
        lease: SimDuration,
    ) -> Result<u64, ParseError> {
        let query = parse_query(text)?;
        Ok(self
            .transport
            .with_node(origin, |n, ctx| n.subscribe(ctx, query, policy, lease)))
    }

    /// Drains the client-visible updates of a watch at `origin`.
    pub fn take_sub_updates(
        &mut self,
        origin: NodeId,
        watch_id: u64,
    ) -> Vec<moara_subscribe::SubUpdate> {
        self.transport.node_mut(origin).take_sub_updates(watch_id)
    }

    /// Cancels a subscription (state tears down along its trees).
    pub fn unsubscribe(&mut self, origin: NodeId, watch_id: u64) {
        self.transport
            .with_node(origin, |n, ctx| n.unsubscribe(ctx, watch_id));
    }

    /// Total per-tree subscription entries across all alive nodes
    /// (lease-expiry GC drives this to zero once subscribers are gone).
    pub fn sub_entries_total(&self) -> usize {
        self.node_ids()
            .into_iter()
            .filter(|&n| self.transport.is_alive(n))
            .map(|n| self.transport.node(n).sub_entry_count())
            .sum()
    }

    /// Advances the transport by `d` (virtual time under simulation, real
    /// waiting over TCP), processing due events.
    pub fn run_for(&mut self, d: SimDuration) {
        self.transport.run_for(d);
    }

    /// Processes all outstanding events.
    pub fn run_to_quiescence(&mut self) {
        self.transport.run_to_quiescence();
    }

    /// Fails a node: the overlay repairs itself and ongoing aggregations
    /// treat it as a NULL reply (Section 7's reconfiguration handling).
    pub fn fail_node(&mut self, node: NodeId) {
        if !self.transport.is_alive(node) {
            return;
        }
        self.transport.fail_node(node);
        self.dir.remove_member(node);
        let ids = self.node_ids();
        for n in ids {
            if !self.transport.is_alive(n) {
                continue;
            }
            self.transport.with_node(n, |nn, ctx| {
                nn.on_peer_failed(ctx, node);
                nn.reconcile(ctx);
            });
        }
    }

    /// Restarts a previously failed node under its original identity
    /// (crash-recovery: ring id and attribute store are preserved, as for
    /// a daemon restarted from its persisted state). The node's stale
    /// per-tree protocol state is discarded via
    /// [`MoaraNode::on_rejoin`], the overlay re-integrates its ring id,
    /// and every live node reconciles — so the returnee re-enters its
    /// groups' trees and reappears in query results.
    pub fn restart_node(&mut self, node: NodeId) {
        if self.transport.is_alive(node) {
            return;
        }
        self.transport.recover_node(node);
        self.dir.revive_member(node);
        self.transport.with_node(node, |n, ctx| n.on_rejoin(ctx));
        for n in self.node_ids() {
            if !self.transport.is_alive(n) {
                continue;
            }
            self.transport.with_node(n, |nn, ctx| nn.reconcile(ctx));
        }
    }

    /// Adds a fresh node with the given initial attributes; the overlay
    /// integrates it and existing state re-homes to new parents.
    pub fn add_node(
        &mut self,
        attrs: impl IntoIterator<Item = (String, moara_attributes::Value)>,
    ) -> NodeId {
        let mut id = Id(self.rng.gen());
        while self.dir.contains_ring_id(id) {
            id = Id(self.rng.gen());
        }
        let node = NodeId(self.transport.len() as u32);
        self.dir.add_member(id, node);
        let mut moara = MoaraNode::new(self.dir.clone(), self.cfg.clone());
        if let Some(t) = &self.tracer {
            moara.set_tracer(t.clone());
        }
        for (a, v) in attrs {
            moara.store.set(a.as_str(), v);
        }
        let created = self.transport.add_node(moara);
        debug_assert_eq!(created, node);
        for n in self.node_ids() {
            if !self.transport.is_alive(n) {
                continue;
            }
            self.transport.with_node(n, |nn, ctx| nn.reconcile(ctx));
        }
        node
    }

    /// Pre-installs tree state for `pred` at every node and flushes the
    /// resulting status cascade (used by the Always-Update baseline so the
    /// measurement phase starts from a fully built tree). Resets message
    /// statistics afterwards.
    pub fn register_predicate(&mut self, pred: &SimplePredicate) {
        for n in self.node_ids() {
            if !self.transport.is_alive(n) {
                continue;
            }
            self.transport.node_mut(n).install_state(n, pred);
        }
        for n in self.node_ids() {
            if !self.transport.is_alive(n) {
                continue;
            }
            self.transport.with_node(n, |nn, ctx| nn.reconcile(ctx));
        }
        self.transport.run_to_quiescence();
        self.transport.stats_mut().reset();
    }

    /// Ground truth: the alive nodes currently satisfying `pred`
    /// (evaluated directly against the stores, bypassing the protocol).
    pub fn group_members(&self, pred: &SimplePredicate) -> Vec<NodeId> {
        self.node_ids()
            .into_iter()
            .filter(|&n| self.transport.is_alive(n) && pred.eval(&self.transport.node(n).store))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_aggregation::AggResult;
    use moara_attributes::Value;

    fn small_cluster(n: usize) -> Cluster {
        Cluster::builder().nodes(n).seed(7).build()
    }

    #[test]
    fn count_over_flagged_group() {
        let mut c = small_cluster(16);
        for i in 0..16u32 {
            c.set_attr(NodeId(i), "ServiceX", i % 4 == 0);
        }
        c.run_to_quiescence();
        c.stats_mut().reset();
        let out = c
            .query(NodeId(3), "SELECT count(*) WHERE ServiceX = true")
            .unwrap();
        assert!(out.complete);
        assert_eq!(out.result, AggResult::Value(Value::Int(4)));
        assert!(out.messages > 0);
    }

    #[test]
    fn repeated_queries_prune_the_tree() {
        let mut c = small_cluster(32);
        for i in 0..32u32 {
            c.set_attr(NodeId(i), "A", i < 4);
        }
        let q = "SELECT count(*) WHERE A = true";
        let first = c.query(NodeId(0), q).unwrap();
        // Run a few queries to let pruning converge.
        for _ in 0..3 {
            c.query(NodeId(0), q).unwrap();
        }
        let later = c.query(NodeId(0), q).unwrap();
        assert_eq!(later.result, AggResult::Value(Value::Int(4)));
        assert!(
            later.messages < first.messages,
            "pruning should shrink query cost: first={} later={}",
            first.messages,
            later.messages
        );
    }

    #[test]
    fn group_membership_ground_truth_matches_query() {
        let mut c = small_cluster(24);
        for i in 0..24u32 {
            c.set_attr(NodeId(i), "CPU-Util", (i * 5) as i64);
        }
        let out = c
            .query(NodeId(1), "SELECT count(*) WHERE CPU-Util < 50")
            .unwrap();
        let pred = SimplePredicate::new("CPU-Util", moara_query::CmpOp::Lt, 50i64);
        let truth = c.group_members(&pred).len() as i64;
        assert_eq!(out.result, AggResult::Value(Value::Int(truth)));
    }

    #[test]
    fn global_query_counts_everyone() {
        let mut c = small_cluster(10);
        let out = c.query(NodeId(0), "SELECT count(*)").unwrap();
        assert_eq!(out.result, AggResult::Value(Value::Int(10)));
    }

    #[test]
    fn tcp_loopback_cluster_answers_queries() {
        // Deterministic TCP-path (loopback mode): same protocol, same
        // codec, no sockets. The socket path proper is covered by the
        // `tcp_cluster` integration test and example.
        let mut c = Cluster::builder()
            .nodes(8)
            .seed(11)
            .build_tcp(TcpConfig::loopback(11));
        for i in 0..8u32 {
            c.set_attr(NodeId(i), "ServiceX", i % 2 == 0);
        }
        c.run_to_quiescence();
        let out = c
            .query(NodeId(1), "SELECT count(*) WHERE ServiceX = true")
            .unwrap();
        assert!(out.complete);
        assert_eq!(out.result, AggResult::Value(Value::Int(4)));
    }
}

//! # moara-core
//!
//! The Moara group-based distributed aggregation protocol — the paper's
//! primary contribution (Ko et al., *Moara: Flexible and Scalable
//! Group-Based Querying System*, Middleware 2008).
//!
//! Moara answers one-shot aggregation queries over *groups* of machines
//! defined by predicates on node attributes. It achieves low cost via
//! three mechanisms, each implemented here:
//!
//! 1. **Group trees on a DHT** (Section 3): every group predicate gets an
//!    aggregation tree that is an optimized sub-graph of the implicit DHT
//!    tree rooted at the hash of the group attribute.
//! 2. **Dynamic maintenance** (Section 4) and the **separate query plane**
//!    (Section 5): per-branch PRUNE/NO-PRUNE state adapts between
//!    update-driven and query-driven operation to minimize total message
//!    cost, and short-circuits non-satisfying interior nodes so query cost
//!    is `O(group size)`, independent of system size.
//! 3. **Composite query planning** (Section 6): CNF rewriting, structural
//!    covers, size probes, and semantic optimizations pick a minimum-cost
//!    set of trees for nested union/intersection predicates.
//!
//! The crate is organized as pure protocol state ([`state`]), the
//! message-passing node ([`MoaraNode`]), and a deployment harness
//! ([`Cluster`]) running on the deterministic simulator from
//! `moara-simnet`.
//!
//! # Example
//!
//! ```
//! use moara_core::{Cluster, MoaraConfig};
//! use moara_simnet::NodeId;
//!
//! let mut cluster = Cluster::builder().nodes(32).seed(1).build();
//! for i in 0..32u32 {
//!     cluster.set_attr(NodeId(i), "ServiceX", i % 8 == 0);
//!     cluster.set_attr(NodeId(i), "CPU-Util", (i as i64) * 3);
//! }
//! let out = cluster
//!     .query(NodeId(0), "SELECT count(*) WHERE ServiceX = true")
//!     .unwrap();
//! assert_eq!(out.result.to_string(), "4");
//! ```

mod cluster;
mod config;
mod msg;
mod node;
pub mod sched;
pub mod state;

pub use cluster::{Cluster, ClusterBuilder, Directory};
pub use config::{GcPolicy, MoaraConfig, Mode, ProbeCachePolicy};
pub use msg::{MoaraMsg, PredKey, QueryId, GLOBAL_PRED};
pub use node::{MoaraNode, QueryOutcome};
pub use sched::ProbeCache;
pub use state::{ChildInfo, PredState, StatusOut};

// The continuous-query subscription plane's shared types, re-exported so
// harnesses and daemons name them through the engine crate.
pub use moara_subscribe::{DeliveryPolicy, SubId, SubSpec, SubUpdate};

// Re-export the commonly combined companion crates so downstream users can
// depend on `moara-core` alone.
pub use moara_aggregation as aggregation;
pub use moara_attributes as attributes;
pub use moara_dht as dht;
pub use moara_query as query;
pub use moara_simnet as simnet;
pub use moara_subscribe as subscribe;

//! The Moara node: protocol message handling, aggregation sessions, and
//! the client front-end (query planner/driver).
//!
//! One `MoaraNode` plays every role the paper describes, depending on
//! where a message finds it: *agent* (holds the attribute store), *tree
//! node* (forwards queries, aggregates replies, maintains per-predicate
//! prune state), *tree root* (assigns query sequence numbers, answers size
//! probes), and *front-end* (parses nothing itself — it receives a parsed
//! [`Query`] — but plans covers, fires size probes, fans out sub-queries,
//! and merges the final answer).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use moara_aggregation::{AggKind, AggResult, AggState, NodeRef};
use moara_attributes::{AttrStore, Value};
use moara_dht::Id;
use moara_query::{Cover, CoverPlan, Query, SimplePredicate};
use moara_simnet::{NodeId, SimTime, TimerId, TimerTag};
use moara_transport::{NetCtx, NetProtocol};

use crate::cluster::Directory;
use crate::config::{GcPolicy, MoaraConfig, Mode};
use crate::msg::{MoaraMsg, PredKey, QueryId, GLOBAL_PRED};
use crate::sched::{BatchQueue, QuerySched};
use crate::state::{ChildInfo, PredState};

/// The final result of a front-end query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The end-to-end query id, whose [`QueryId::tag`] keys per-query
    /// message accounting at the transport.
    pub qid: QueryId,
    /// The merged aggregate.
    pub result: AggResult,
    /// False if any branch timed out, failed, or a probe went unanswered.
    pub complete: bool,
    /// When the front-end accepted the query.
    pub issued_at: SimTime,
    /// When the last sub-query reply arrived.
    pub completed_at: SimTime,
    /// Messages attributed to this query: probes, sub-queries, replies,
    /// and their routing envelopes — maintenance traffic (status updates)
    /// is accounted separately. Filled in by the cluster harness from the
    /// transport's per-query counters (correct even when queries
    /// overlap); 0 until then.
    pub messages: u64,
}

impl QueryOutcome {
    /// End-to-end latency of the query.
    pub fn latency(&self) -> moara_simnet::SimDuration {
        self.completed_at.duration_since(self.issued_at)
    }
}

/// An in-flight aggregation at one tree node.
struct Session {
    reply_to: NodeId,
    pending: HashSet<NodeId>,
    acc: AggState,
    kind: AggKind,
    complete: bool,
    timer: Option<(TimerId, TimerTag)>,
    tree: Id,
    done: bool,
}

enum FrontPhase {
    /// Waiting for size-probe replies.
    Probing,
    /// Waiting for sub-query replies.
    Waiting,
}

/// An in-flight query at the front-end (originating node). Many of these
/// coexist; the shared [`QuerySched`] coalesces their probes and caches
/// their costs across queries.
struct FrontQuery {
    qid: QueryId,
    query: Arc<Query>,
    /// Candidate covers, derived once at submit (`None` in Global mode or
    /// on CNF blow-up — the query goes to the global tree).
    plan: Option<CoverPlan>,
    phase: FrontPhase,
    probes_pending: HashSet<PredKey>,
    costs: HashMap<PredKey, u64>,
    sub_pending: HashSet<PredKey>,
    acc: AggState,
    complete: bool,
    issued_at: SimTime,
    /// Cache epoch when the query was accepted; replies are used for the
    /// lazy cost refresh only while no churn was observed since.
    epoch: u64,
    timer: Option<(TimerId, TimerTag)>,
}

enum TimerEvent {
    Session(QueryId, PredKey),
    Probe(u64),
    Front(u64),
}

/// A Moara agent/protocol instance hosted on one simulated machine.
pub struct MoaraNode {
    dir: Directory,
    cfg: MoaraConfig,
    /// The node's local `(attribute, value)` store.
    pub store: AttrStore,
    states: HashMap<PredKey, PredState>,
    /// Last time each predicate's state was touched (for GC policies).
    activity: HashMap<PredKey, SimTime>,
    sessions: HashMap<(QueryId, PredKey), Session>,
    contributed: HashMap<QueryId, SimTime>,
    fronts: HashMap<u64, FrontQuery>,
    completed: HashMap<u64, QueryOutcome>,
    timers: HashMap<TimerTag, TimerEvent>,
    /// The query-plane scheduler: probe-cost cache (with churn epoch) and
    /// the in-flight probe registry shared by all concurrent fronts.
    sched: QuerySched,
    next_front: u64,
    next_q: u64,
    next_tag: u64,
}

impl MoaraNode {
    /// Creates a node bound to the shared overlay directory.
    pub fn new(dir: Directory, cfg: MoaraConfig) -> MoaraNode {
        let sched = QuerySched::new(cfg.probe_cache);
        MoaraNode {
            dir,
            cfg,
            store: AttrStore::new(),
            states: HashMap::new(),
            activity: HashMap::new(),
            sessions: HashMap::new(),
            contributed: HashMap::new(),
            fronts: HashMap::new(),
            completed: HashMap::new(),
            timers: HashMap::new(),
            sched,
            next_front: 0,
            next_q: 0,
            next_tag: 0,
        }
    }

    /// Number of probe costs currently cached at this front-end
    /// (tests/inspection).
    pub fn probe_cache_len(&self) -> usize {
        self.sched.cache.len()
    }

    /// The probe cache's churn epoch (tests/inspection).
    pub fn probe_cache_epoch(&self) -> u64 {
        self.sched.cache.epoch()
    }

    /// Read access to the per-predicate protocol state (tests/inspection).
    pub fn pred_state(&self, pred_key: &str) -> Option<&PredState> {
        self.states.get(pred_key)
    }

    /// Number of predicate trees this node currently tracks.
    pub fn tracked_predicates(&self) -> usize {
        self.states.len()
    }

    /// Takes a finished query outcome, if ready.
    pub fn take_outcome(&mut self, front_id: u64) -> Option<QueryOutcome> {
        self.completed.remove(&front_id)
    }

    /// Peeks at a finished query outcome.
    pub fn outcome(&self, front_id: u64) -> Option<&QueryOutcome> {
        self.completed.get(&front_id)
    }

    /// Applies the configured garbage-collection policy: NO-UPDATE states
    /// are safe to discard (the parent's default already forwards queries
    /// to this node), so eviction never affects completeness.
    fn maybe_gc(&mut self, now: SimTime) {
        let evictable = |states: &HashMap<PredKey, PredState>, key: &str| {
            states.get(key).is_some_and(|st| !st.update)
        };
        match self.cfg.gc {
            GcPolicy::Never => {}
            GcPolicy::IdleTimeout(ttl) => {
                let stale: Vec<PredKey> = self
                    .activity
                    .iter()
                    .filter(|(k, t)| now.duration_since(**t) >= ttl && evictable(&self.states, k))
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in stale {
                    self.states.remove(&k);
                    self.activity.remove(&k);
                }
            }
            GcPolicy::KeepMostRecent(cap) => {
                if self.states.len() <= cap {
                    return;
                }
                let mut by_age: Vec<(SimTime, PredKey)> = self
                    .activity
                    .iter()
                    .filter(|(k, _)| evictable(&self.states, k))
                    .map(|(k, t)| (*t, k.clone()))
                    .collect();
                by_age.sort();
                let excess = self.states.len().saturating_sub(cap);
                for (_, k) in by_age.into_iter().take(excess) {
                    self.states.remove(&k);
                    self.activity.remove(&k);
                }
            }
        }
    }

    fn touch(&mut self, pred_key: &str, now: SimTime) {
        self.activity.insert(pred_key.to_owned(), now);
    }

    fn tree_key_for(pred: &SimplePredicate) -> Id {
        Id::of_attribute(pred.attr.as_str())
    }

    fn alloc_timer(&mut self, ev: TimerEvent) -> TimerTag {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.timers.insert(tag, ev);
        tag
    }

    /// Cancels a pending timer *and* forgets its event entry — cancelled
    /// timers never fire, so without the purge the tag map would grow for
    /// every completed query (a real leak in a run-forever daemon).
    fn drop_timer(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, handle: (TimerId, TimerTag)) {
        ctx.cancel_timer(handle.0);
        self.timers.remove(&handle.1);
    }

    // ----- front-end ---------------------------------------------------

    /// Accepts a query at this node's front-end; returns a handle for
    /// [`MoaraNode::take_outcome`]. Planning follows Section 6 — CNF →
    /// structural covers → (optional) size probes → min-cost cover →
    /// parallel sub-queries with duplicate suppression — scheduled
    /// through the query plane: probe costs come from the cache when a
    /// valid entry exists (repeated composite queries skip the probe
    /// phase entirely), misses coalesce onto probes already in flight for
    /// overlapping queries, and fan-out sharing a next hop leaves as one
    /// batched frame.
    pub fn submit(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, query: Query) -> u64 {
        let front_id = self.next_front;
        self.next_front += 1;
        let qid = QueryId {
            origin: ctx.me(),
            n: self.next_q,
        };
        self.next_q += 1;
        let query = Arc::new(query);

        let plan = if self.cfg.mode == Mode::Global {
            None
        } else {
            query
                .predicate
                .to_cnf()
                .ok()
                .map(|cnf| CoverPlan::build(&cnf))
        };
        let kind = query.agg;
        let mut front = FrontQuery {
            qid,
            query: query.clone(),
            plan,
            phase: FrontPhase::Waiting,
            probes_pending: HashSet::new(),
            costs: HashMap::new(),
            sub_pending: HashSet::new(),
            acc: kind.identity(),
            complete: true,
            issued_at: ctx.now(),
            epoch: self.sched.cache.epoch(),
            timer: None,
        };

        // Unsatisfiable predicates are detected structurally (Figure 7's
        // disjointness rules) and answered locally — before any probes.
        if front.plan.as_ref().is_some_and(|p| p.empty) {
            self.fronts.insert(front_id, front);
            self.finish_front(ctx, front_id);
            return front_id;
        }

        // Probes are worth the round-trip only when cost information can
        // change the planner's decision, i.e. the plan has at least two
        // candidate covers. (This subsumes the old "single clause with a
        // single atom" special case and additionally skips pure unions,
        // whose only cover is forced regardless of group sizes.)
        let needs_probes =
            self.cfg.use_size_probes && front.plan.as_ref().is_some_and(CoverPlan::needs_costs);

        if needs_probes {
            front.phase = FrontPhase::Probing;
            let atoms = front
                .plan
                .as_ref()
                .expect("probing implies a plan")
                .probe_atoms();
            let me = ctx.me();
            let now = ctx.now();
            let mut outbound: Vec<(Id, MoaraMsg)> = Vec::new();
            for atom in atoms {
                let key = atom.key();
                if let Some(cost) = self.sched.cache.lookup(&key, now) {
                    ctx.count("probe_cache_hits");
                    front.costs.insert(key, cost);
                    continue;
                }
                if self.sched.cache.enabled() {
                    ctx.count("probe_cache_misses");
                }
                front.probes_pending.insert(key.clone());
                let epoch = self.sched.cache.epoch();
                let probe = MoaraMsg::SizeProbe {
                    qid,
                    pred_key: key.clone(),
                    reply_to: me,
                };
                use std::collections::hash_map::Entry;
                match self.sched.waiters.entry(key) {
                    Entry::Occupied(mut e) => {
                        let wait = e.get_mut();
                        wait.fronts.push(front_id);
                        if now.duration_since(wait.sent_at) >= self.cfg.probe_timeout {
                            // The in-flight probe has outlived the probe
                            // timeout: presume its reply lost and re-send,
                            // otherwise continuous traffic would coalesce
                            // onto a dead probe forever. The new qid
                            // supersedes the old probe: a slow reply to
                            // it can no longer be cached as fresh.
                            wait.sent_at = now;
                            wait.epoch = epoch;
                            wait.probe_qid = qid;
                            outbound.push((Self::tree_key_for(&atom), probe));
                            ctx.count("size_probes");
                        } else {
                            // Another in-flight query already probed this
                            // tree; share its reply instead of re-asking.
                            ctx.count("probes_coalesced");
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(crate::sched::ProbeWait {
                            fronts: vec![front_id],
                            sent_at: now,
                            epoch,
                            probe_qid: qid,
                        });
                        outbound.push((Self::tree_key_for(&atom), probe));
                        ctx.count("size_probes");
                    }
                }
            }
            if front.probes_pending.is_empty() {
                // Every relevant cost was cached: skip the probe phase.
                self.fronts.insert(front_id, front);
                self.dispatch_front(ctx, front_id);
                return front_id;
            }
            let tag = self.alloc_timer(TimerEvent::Probe(front_id));
            front.timer = Some((ctx.set_timer(self.cfg.probe_timeout, tag), tag));
            self.fronts.insert(front_id, front);
            self.route_many(ctx, outbound);
        } else {
            self.fronts.insert(front_id, front);
            self.dispatch_front(ctx, front_id);
        }
        front_id
    }

    /// Chooses the cover and fans sub-queries out to tree roots.
    fn dispatch_front(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, front_id: u64) {
        let stale = {
            let front = self.fronts.get_mut(&front_id).expect("front exists");
            front.phase = FrontPhase::Waiting;
            front.timer.take()
        };
        if let Some(t) = stale {
            self.drop_timer(ctx, t);
        }
        let front = self.fronts.get_mut(&front_id).expect("front exists");
        let n2 = (self.dir.ring_size() as u64).saturating_mul(2);
        let cover = match &front.plan {
            None => Cover::All,
            Some(plan) => {
                if self.cfg.use_size_probes {
                    let costs = &front.costs;
                    plan.choose(|atom| costs.get(&atom.key()).copied().unwrap_or(n2))
                } else {
                    plan.choose(|_| 1)
                }
            }
        };
        let qid = front.qid;
        let query = front.query.clone();
        let me = ctx.me();

        let subs: Vec<(PredKey, Id)> = match cover {
            Cover::Empty => Vec::new(),
            Cover::All => {
                let attr = query
                    .attr
                    .as_ref()
                    .map(|a| a.as_str().to_owned())
                    .unwrap_or_else(|| GLOBAL_PRED.to_owned());
                vec![(GLOBAL_PRED.to_owned(), Id::of_attribute(&attr))]
            }
            Cover::Groups(groups) => groups
                .iter()
                .map(|g| (g.key(), Self::tree_key_for(g)))
                .collect(),
        };

        if subs.is_empty() {
            self.finish_front(ctx, front_id);
            return;
        }
        let front = self.fronts.get_mut(&front_id).expect("front exists");
        for (pred_key, _) in &subs {
            front.sub_pending.insert(pred_key.clone());
        }
        if let Some(d) = self.cfg.front_timeout {
            let tag = self.alloc_timer(TimerEvent::Front(front_id));
            let t = ctx.set_timer(d, tag);
            self.fronts.get_mut(&front_id).expect("front").timer = Some((t, tag));
        }
        let outbound: Vec<(Id, MoaraMsg)> = subs
            .into_iter()
            .map(|(pred_key, tree)| {
                (
                    tree,
                    MoaraMsg::QueryDown {
                        qid,
                        seq: 0,
                        pred_key,
                        tree,
                        query: (*query).clone(),
                        reply_to: me,
                    },
                )
            })
            .collect();
        self.route_many(ctx, outbound);
    }

    fn finish_front(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, front_id: u64) {
        let Some(front) = self.fronts.remove(&front_id) else {
            return;
        };
        if let Some(t) = front.timer {
            self.drop_timer(ctx, t);
        }
        let outcome = QueryOutcome {
            qid: front.qid,
            result: front.query.agg.finalize(front.acc),
            complete: front.complete && front.sub_pending.is_empty(),
            issued_at: front.issued_at,
            completed_at: ctx.now(),
            messages: 0,
        };
        self.completed.insert(front_id, outcome);
    }

    // ----- routing ------------------------------------------------------

    fn route(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, key: Id, inner: MoaraMsg) {
        match self.dir.next_hop_node(ctx.me(), key) {
            Some(next) => ctx.send(
                next,
                MoaraMsg::Route {
                    key,
                    inner: Box::new(inner),
                },
            ),
            None => self.handle_at_root(ctx, key, inner),
        }
    }

    /// Routes several messages at once, coalescing those that share a
    /// next hop into one [`MoaraMsg::Batch`] frame. Called on front-end
    /// fan-out and again whenever a batch is unpacked at an intermediate
    /// hop, so shared overlay path prefixes are paid for once.
    fn route_many(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, items: Vec<(Id, MoaraMsg)>) {
        let me = ctx.me();
        let mut queue = BatchQueue::new();
        for (key, inner) in items {
            match self.dir.next_hop_node(me, key) {
                Some(next) => queue.push_remote(next, key, inner),
                None => queue.push_local(key, inner),
            }
        }
        for (key, inner) in queue.flush(ctx) {
            self.handle_at_root(ctx, key, inner);
        }
    }

    fn handle_at_root(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, _key: Id, inner: MoaraMsg) {
        match inner {
            MoaraMsg::QueryDown {
                qid,
                pred_key,
                tree,
                query,
                reply_to,
                ..
            } => {
                // The root stamps the per-tree sequence number (Section 4).
                let seq = if pred_key == GLOBAL_PRED {
                    0
                } else {
                    if let Some(atom) = find_atom(&query, &pred_key) {
                        self.ensure_state(ctx.me(), &atom);
                    }
                    match self.states.get_mut(&pred_key) {
                        Some(st) => {
                            st.seq_counter += 1;
                            st.seq_counter
                        }
                        None => 0,
                    }
                };
                self.handle_query_down(ctx, qid, seq, pred_key, tree, query, reply_to);
            }
            MoaraMsg::SizeProbe {
                qid,
                pred_key,
                reply_to,
            } => {
                let cost = self.estimated_query_cost(ctx.me(), &pred_key);
                ctx.send(
                    reply_to,
                    MoaraMsg::SizeReply {
                        qid,
                        pred_key,
                        cost,
                    },
                );
            }
            other => {
                debug_assert!(false, "unexpected routed payload {other:?}");
            }
        }
    }

    /// The root's query-cost estimate: `2 × np`, or twice the system size
    /// when the tree has no state yet (a cold tree broadcasts).
    fn estimated_query_cost(&self, me: NodeId, pred_key: &str) -> u64 {
        match self.states.get(pred_key) {
            Some(st) => {
                let tree = Self::tree_key_for(&st.pred);
                let children = self.dir.children_of(tree, me);
                let dir = &self.dir;
                2 * st.np(me, &children, |c| dir.subtree_size(tree, c))
            }
            None => (self.dir.ring_size() as u64).saturating_mul(2),
        }
    }

    // ----- predicate state ----------------------------------------------

    fn ensure_state(&mut self, me: NodeId, pred: &SimplePredicate) -> &mut PredState {
        let key = pred.key();
        let cfg = &self.cfg;
        let dir = &self.dir;
        let store = &self.store;
        let _ = store;
        self.states.entry(key).or_insert_with(|| {
            // Fresh state starts with an empty updateSet and NO-UPDATE —
            // the first query therefore counts as `qn` (the paper: nodes
            // "move into UPDATE state with the first query message") and
            // the caller refreshes the sets right after.
            let mut st = PredState::new(
                pred.clone(),
                cfg.k_update,
                cfg.k_no_update,
                cfg.threshold,
                cfg.mode == Mode::AlwaysUpdate,
            );
            let tree = Self::tree_key_for(pred);
            st.parent = dir.parent_of(tree, me);
            st
        })
    }

    /// Installs predicate state without sending anything (cluster-level
    /// pre-registration for the Always-Update baseline).
    pub fn install_state(&mut self, me: NodeId, pred: &SimplePredicate) {
        self.ensure_state(me, pred);
    }

    /// Sends a status update to the tree parent if the state demands one,
    /// cascading lazily via the parent's own handler.
    fn sync_status(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, pred_key: &str) {
        let me = ctx.me();
        let Some(st) = self.states.get_mut(pred_key) else {
            return;
        };
        let Some(out) = st.status_to_send(me) else {
            return;
        };
        let tree = Self::tree_key_for(&st.pred);
        let Some(parent) = self.dir.parent_of(tree, me) else {
            return; // root has nobody to update
        };
        let children = self.dir.children_of(tree, me);
        let dir = &self.dir;
        let np = st.np(me, &children, |c| dir.subtree_size(tree, c));
        let msg = MoaraMsg::Status {
            pred_key: pred_key.to_owned(),
            pred: st.pred.clone(),
            prune: out.prune,
            update_set: out.update_set,
            np,
            last_seq: st.last_seen_seq,
        };
        ctx.send(parent, msg);
        ctx.count("status_updates");
    }

    /// Re-evaluates local satisfaction for every predicate over `attr`
    /// after a local attribute change ("group churn" at this node).
    pub fn on_local_change(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, attr: &str) {
        // Local churn is direct evidence that group sizes moved; drop all
        // cached probe costs so the next composite query re-probes.
        self.sched.cache.bump_epoch();
        let me = ctx.me();
        let keys: Vec<PredKey> = self
            .states
            .iter()
            .filter(|(_, st)| st.pred.attr.as_str() == attr)
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let st = self.states.get_mut(&key).expect("state exists");
            let tree = Self::tree_key_for(&st.pred);
            let children = self.dir.children_of(tree, me);
            let sat = st.pred.eval(&self.store);
            st.refresh(me, sat, &children);
            self.sync_status(ctx, &key);
        }
    }

    /// Reconciles all predicate states with the current overlay topology
    /// (after joins/failures): drops ex-children, re-introduces state to
    /// new parents (Section 7's reconfiguration handling).
    pub fn reconcile(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>) {
        // Overlay reconfiguration invalidates cached probe costs: tree
        // shapes (and thus per-tree query costs) may have changed.
        self.sched.cache.bump_epoch();
        let me = ctx.me();
        let keys: Vec<PredKey> = self.states.keys().cloned().collect();
        for key in keys {
            let st = self.states.get_mut(&key).expect("state exists");
            let tree = Self::tree_key_for(&st.pred);
            let children = self.dir.children_of(tree, me);
            st.retain_children(|c| children.contains(&c));
            let new_parent = self.dir.parent_of(tree, me);
            if st.parent != new_parent {
                st.parent = new_parent;
                // The new parent assumes the default about us; resend our
                // state if it differs.
                st.sent = None;
            }
            let sat = st.pred.eval(&self.store);
            st.refresh(me, sat, &children);
            self.sync_status(ctx, &key);
        }
    }

    /// Resets protocol state that cannot have survived a crash-restart
    /// (or a long partition) intact, then re-enters this node's groups'
    /// trees via [`MoaraNode::reconcile`]. Everything discarded here is
    /// *safe* to discard: a cleared child entry degrades to the default
    /// (NO-PRUNE, forward directly) and `sent = None` makes the next
    /// status comparison against the parent's default — so the trees
    /// rebuild their pruning lazily while completeness holds throughout.
    pub fn on_rejoin(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>) {
        for st in self.states.values_mut() {
            // Children may have changed state (or died) while we were
            // gone; their reports are stale testimony.
            st.children.clear();
            // The parent has long since dropped us (or was never told
            // about us): whatever we believe we sent, it no longer knows.
            st.sent = None;
            st.parent = None;
        }
        // In-flight work addressed to the pre-crash process is void.
        self.sessions.clear();
        self.fronts.clear();
        self.timers.clear();
        self.sched.waiters.clear();
        self.sched.cache.bump_epoch();
        self.reconcile(ctx);
    }

    /// Treats `failed` as having answered NULL in any pending session —
    /// the engine's analogue of FreePastry's failure notification.
    pub fn on_peer_failed(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, failed: NodeId) {
        let keys: Vec<(QueryId, PredKey)> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.pending.contains(&failed))
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let sess = self.sessions.get_mut(&key).expect("session exists");
            sess.pending.remove(&failed);
            sess.complete = false;
            if sess.pending.is_empty() {
                self.finalize_session(ctx, &key);
            }
        }
    }

    // ----- query execution ----------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_query_down(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        qid: QueryId,
        seq: u64,
        pred_key: PredKey,
        tree: Id,
        query: Query,
        reply_to: NodeId,
    ) {
        let me = ctx.me();
        let skey = (qid, pred_key.clone());
        if self.sessions.contains_key(&skey) {
            // Already handling this sub-query (stale duplicate): reply
            // immediately with no contribution.
            ctx.send(
                reply_to,
                MoaraMsg::QueryReply {
                    qid,
                    pred_key,
                    state: AggState::Null,
                    np: 0,
                    complete: true,
                },
            );
            return;
        }

        // Adaptation accounting + possible state transition (Section 4).
        let targets: Vec<NodeId> = if pred_key == GLOBAL_PRED {
            self.dir.children_of(tree, me)
        } else {
            if let Some(atom) = find_atom(&query, &pred_key) {
                self.ensure_state(me, &atom);
            }
            match self.states.get_mut(&pred_key) {
                Some(st) => {
                    // Account the query against the *current* updateSet
                    // first (a brand-new state counts it as qn), then
                    // refresh sets and satisfaction.
                    st.on_query(me, seq);
                    let children = self.dir.children_of(tree, me);
                    let sat = st.pred.eval(&self.store);
                    st.refresh(me, sat, &children);
                    st.query_targets(me, &children)
                }
                None => self.dir.children_of(tree, me),
            }
        };
        if pred_key != GLOBAL_PRED {
            self.sync_status(ctx, &pred_key);
            self.touch(&pred_key, ctx.now());
            self.maybe_gc(ctx.now());
        }

        // Local contribution, at most once per query id (Section 6.2's
        // duplicate suppression when a node sits in several cover trees).
        let mut acc = query.agg.identity();
        if !self.contributed.contains_key(&qid) && query.predicate.eval(&self.store) {
            self.contributed.insert(qid, ctx.now());
            self.gc_contributed(ctx.now());
            acc = self.local_contribution(me, &query);
        }

        let mut session = Session {
            reply_to,
            pending: targets.iter().copied().collect(),
            acc,
            kind: query.agg,
            complete: true,
            timer: None,
            tree,
            done: false,
        };
        if !targets.is_empty() {
            if let Some(d) = self.cfg.child_timeout {
                let tag = self.alloc_timer(TimerEvent::Session(qid, pred_key.clone()));
                session.timer = Some((ctx.set_timer(d, tag), tag));
            }
        }
        let empty = targets.is_empty();
        self.sessions.insert(skey.clone(), session);
        for t in targets {
            ctx.send(
                t,
                MoaraMsg::QueryDown {
                    qid,
                    seq,
                    pred_key: pred_key.clone(),
                    tree,
                    query: query.clone(),
                    reply_to: me,
                },
            );
        }
        if empty {
            self.finalize_session(ctx, &skey);
        }
    }

    /// The node's own value for the query, as a partial aggregate.
    fn local_contribution(&self, me: NodeId, query: &Query) -> AggState {
        let node = NodeRef(me.0 as u64);
        match query.agg {
            AggKind::Count | AggKind::Enumerate => query
                .agg
                .seed(node, &Value::Bool(true))
                .unwrap_or(AggState::Null),
            _ => {
                let Some(attr) = &query.attr else {
                    return AggState::Null;
                };
                match self.store.get(attr.as_str()) {
                    Some(v) => query.agg.seed(node, v).unwrap_or(AggState::Null),
                    None => AggState::Null,
                }
            }
        }
    }

    fn gc_contributed(&mut self, now: SimTime) {
        if !self.contributed.len().is_multiple_of(512) {
            return;
        }
        let ttl = self.cfg.dedup_ttl;
        self.contributed.retain(|_, t| now.duration_since(*t) < ttl);
    }

    fn finalize_session(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, skey: &(QueryId, PredKey)) {
        let me = ctx.me();
        let Some(sess) = self.sessions.get_mut(skey) else {
            return;
        };
        if sess.done {
            return;
        }
        sess.done = true;
        let stale = sess.timer.take();
        let complete = sess.complete && sess.pending.is_empty();
        let acc = std::mem::replace(&mut sess.acc, AggState::Null);
        let reply_to = sess.reply_to;
        let tree = sess.tree;
        if let Some(t) = stale {
            self.drop_timer(ctx, t);
        }
        let np = match self.states.get(&skey.1) {
            Some(st) => {
                let children = self.dir.children_of(tree, me);
                let dir = &self.dir;
                st.np(me, &children, |c| dir.subtree_size(tree, c))
            }
            None => 0,
        };
        ctx.send(
            reply_to,
            MoaraMsg::QueryReply {
                qid: skey.0,
                pred_key: skey.1.clone(),
                state: acc,
                np,
                complete,
            },
        );
        self.sessions.remove(skey);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_query_reply(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: NodeId,
        qid: QueryId,
        pred_key: PredKey,
        state: AggState,
        np: u64,
        complete: bool,
    ) {
        let skey = (qid, pred_key.clone());
        // A reply to our session (we forwarded the query to `from`)?
        let is_session_reply = self
            .sessions
            .get(&skey)
            .is_some_and(|s| s.pending.contains(&from));
        if is_session_reply {
            let sess = self.sessions.get_mut(&skey).expect("session exists");
            sess.pending.remove(&from);
            sess.complete &= complete;
            let kind = sess.kind;
            let prev = std::mem::replace(&mut sess.acc, AggState::Null);
            sess.acc = kind.merge(prev, state);
            // Lazy np refresh for direct children (Section 6.3).
            if let Some(st) = self.states.get_mut(&pred_key) {
                if let Some(info) = st.children.get_mut(&from) {
                    info.np = np;
                }
            }
            if self.sessions[&skey].pending.is_empty() {
                self.finalize_session(ctx, &skey);
            }
            return;
        }
        // Otherwise: a root's final answer to one of our front-end
        // sub-queries.
        let front_id = self
            .fronts
            .iter()
            .find(|(_, f)| f.qid == qid && f.sub_pending.contains(&pred_key))
            .map(|(id, _)| *id);
        if let Some(front_id) = front_id {
            // Lazy cost refresh (Section 6.3): the root's answer carries
            // the tree's current NO-PRUNE count, so every query keeps the
            // probe cache tracking tree convergence for free. Without
            // this, a cached cold-tree estimate (2×N) would outlive the
            // very query that built and pruned the tree. Skipped if churn
            // was observed since the query was accepted — the measurement
            // might predate the change the epoch bump evicted.
            let fresh = self.fronts[&front_id].epoch == self.sched.cache.epoch();
            if fresh && pred_key != GLOBAL_PRED {
                self.sched
                    .cache
                    .insert(pred_key.clone(), np.saturating_mul(2), ctx.now());
            }
            let front = self.fronts.get_mut(&front_id).expect("front exists");
            front.sub_pending.remove(&pred_key);
            front.complete &= complete;
            let kind = front.query.agg;
            let prev = std::mem::replace(&mut front.acc, AggState::Null);
            front.acc = kind.merge(prev, state);
            if front.sub_pending.is_empty() {
                self.finish_front(ctx, front_id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_status(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: NodeId,
        pred_key: PredKey,
        pred: SimplePredicate,
        prune: bool,
        update_set: Vec<NodeId>,
        np: u64,
        last_seq: u64,
    ) {
        let me = ctx.me();
        // Status traffic is churn evidence for exactly this predicate's
        // tree: drop its cached probe cost, keep the rest.
        self.sched.cache.invalidate(&pred_key);
        self.ensure_state(me, &pred);
        let st = self.states.get_mut(&pred_key).expect("just ensured");
        st.note_child_status(
            from,
            ChildInfo {
                prune,
                update_set,
                np,
            },
        );
        st.account_seq(last_seq);
        let tree = Self::tree_key_for(&st.pred);
        let children = self.dir.children_of(tree, me);
        let sat = st.pred.eval(&self.store);
        st.refresh(me, sat, &children);
        self.sync_status(ctx, &pred_key);
        self.touch(&pred_key, ctx.now());
        self.maybe_gc(ctx.now());
    }

    /// A probe answer: satisfies *every* front waiting on that key — one
    /// probe round-trip can unblock several overlapping queries — and
    /// lands in the probe cache only when its freshness is provable:
    /// the reply must echo the qid of the *latest* probe send (a slow
    /// reply to a probe superseded by a re-send may predate churn) and
    /// no epoch bump may have happened since that send. A superseded
    /// reply still delivers its cost to waiters (costs only steer cover
    /// choice) but leaves the `ProbeWait` in place, so the authoritative
    /// reply behind it can still be cached when it arrives. A reply with
    /// no `ProbeWait` at all (everyone timed out and forgot the key) is
    /// dropped: its send epoch is unknown.
    fn handle_size_reply(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        qid: QueryId,
        pred_key: PredKey,
        cost: u64,
    ) {
        let Some(wait) = self.sched.waiters.get_mut(&pred_key) else {
            return;
        };
        let fronts = std::mem::take(&mut wait.fronts);
        if qid == wait.probe_qid {
            let epoch_ok = wait.epoch == self.sched.cache.epoch();
            self.sched.waiters.remove(&pred_key);
            if epoch_ok {
                self.sched.cache.insert(pred_key.clone(), cost, ctx.now());
            }
        }
        let mut ready = Vec::new();
        for fid in fronts {
            let Some(front) = self.fronts.get_mut(&fid) else {
                continue; // front finished (e.g. via its overall deadline)
            };
            if !matches!(front.phase, FrontPhase::Probing) {
                continue; // already dispatched on probe timeout
            }
            if !front.probes_pending.remove(&pred_key) {
                continue;
            }
            front.costs.insert(pred_key.clone(), cost);
            if front.probes_pending.is_empty() {
                ready.push(fid);
            }
        }
        for fid in ready {
            self.dispatch_front(ctx, fid);
        }
    }
}

/// Finds the simple predicate with key `pred_key` inside the query's
/// composite predicate (sub-queries name their group by key).
fn find_atom(query: &Query, pred_key: &str) -> Option<SimplePredicate> {
    query
        .predicate
        .atoms()
        .into_iter()
        .find(|a| a.key() == pred_key)
        .cloned()
}

impl NetProtocol for MoaraNode {
    type Msg = MoaraMsg;

    fn on_message(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, from: NodeId, msg: MoaraMsg) {
        match msg {
            MoaraMsg::Route { key, inner } => self.route(ctx, key, *inner),
            MoaraMsg::QueryDown {
                qid,
                seq,
                pred_key,
                tree,
                query,
                reply_to,
            } => self.handle_query_down(ctx, qid, seq, pred_key, tree, query, reply_to),
            MoaraMsg::QueryReply {
                qid,
                pred_key,
                state,
                np,
                complete,
            } => self.handle_query_reply(ctx, from, qid, pred_key, state, np, complete),
            MoaraMsg::Status {
                pred_key,
                pred,
                prune,
                update_set,
                np,
                last_seq,
            } => self.handle_status(ctx, from, pred_key, pred, prune, update_set, np, last_seq),
            MoaraMsg::SizeProbe {
                qid,
                pred_key,
                reply_to,
            } => {
                // Only roots receive probes (via Route), but handle a
                // stray direct probe gracefully.
                let cost = self.estimated_query_cost(ctx.me(), &pred_key);
                ctx.send(
                    reply_to,
                    MoaraMsg::SizeReply {
                        qid,
                        pred_key,
                        cost,
                    },
                );
            }
            MoaraMsg::SizeReply {
                qid,
                pred_key,
                cost,
            } => {
                self.handle_size_reply(ctx, qid, pred_key, cost);
            }
            MoaraMsg::Batch { items } => {
                // Unpack: each item behaves as if it had arrived alone.
                // Route items are collected and re-forwarded together so
                // they re-coalesce for their next shared hop.
                let mut routed: Vec<(Id, MoaraMsg)> = Vec::new();
                for item in items {
                    match item {
                        MoaraMsg::Route { key, inner } => routed.push((key, *inner)),
                        other => self.on_message(ctx, from, other),
                    }
                }
                self.route_many(ctx, routed);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, tag: TimerTag) {
        match self.timers.remove(&tag) {
            Some(TimerEvent::Session(qid, pred_key)) => {
                let skey = (qid, pred_key);
                if let Some(sess) = self.sessions.get_mut(&skey) {
                    if !sess.pending.is_empty() {
                        sess.complete = false;
                    }
                    sess.timer = None;
                    self.finalize_session(ctx, &skey);
                }
            }
            Some(TimerEvent::Probe(front_id)) => {
                let probing = self
                    .fronts
                    .get(&front_id)
                    .is_some_and(|f| matches!(f.phase, FrontPhase::Probing));
                if probing {
                    // This timer just fired; forget the handle so the
                    // dispatch path doesn't "cancel" it (the simulator's
                    // cancelled set would keep the id forever).
                    self.fronts.get_mut(&front_id).expect("probing").timer = None;
                    // Withdraw this front's probe interests: keys whose
                    // probe now has no waiters are forgotten so the next
                    // query re-probes instead of coalescing onto a probe
                    // that may be lost.
                    self.sched.forget_front(front_id);
                    // Missing costs fall back to worst case in dispatch.
                    self.dispatch_front(ctx, front_id);
                }
            }
            Some(TimerEvent::Front(front_id)) => {
                if let Some(front) = self.fronts.get_mut(&front_id) {
                    front.complete = false;
                    front.sub_pending.clear();
                    front.timer = None; // just fired; nothing to cancel
                    self.finish_front(ctx, front_id);
                }
            }
            None => {}
        }
    }
}

//! The Moara node: protocol message handling, aggregation sessions, and
//! the client front-end (query planner/driver).
//!
//! One `MoaraNode` plays every role the paper describes, depending on
//! where a message finds it: *agent* (holds the attribute store), *tree
//! node* (forwards queries, aggregates replies, maintains per-predicate
//! prune state), *tree root* (assigns query sequence numbers, answers size
//! probes), and *front-end* (parses nothing itself — it receives a parsed
//! [`Query`] — but plans covers, fires size probes, fans out sub-queries,
//! and merges the final answer).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use moara_aggregation::{AggKind, AggResult, AggState, NodeRef};
use moara_attributes::{AttrStore, Value};
use moara_dht::Id;
use moara_query::{Cover, CoverPlan, Query, SimplePredicate};
use moara_simnet::{NodeId, SimDuration, SimTime, TimerId, TimerTag};
use moara_subscribe::{DeliveryPolicy, SubEntry, SubId, SubSpec, SubUpdate, WatchState};
use moara_trace::{Phase, SpanRecord, SpanStore, TraceCtx, NO_PEER, TRACE_NS_SUBDELTA};
use moara_transport::{NetCtx, NetProtocol};

use crate::cluster::Directory;
use crate::config::{GcPolicy, MoaraConfig, Mode};
use crate::msg::{MoaraMsg, PredKey, QueryId, GLOBAL_PRED};
use crate::sched::{BatchQueue, QuerySched};
use crate::state::{ChildInfo, PredState};

/// The final result of a front-end query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The end-to-end query id, whose [`QueryId::tag`] keys per-query
    /// message accounting at the transport.
    pub qid: QueryId,
    /// The merged aggregate.
    pub result: AggResult,
    /// False if any branch timed out, failed, or a probe went unanswered.
    pub complete: bool,
    /// When the front-end accepted the query.
    pub issued_at: SimTime,
    /// When the last sub-query reply arrived.
    pub completed_at: SimTime,
    /// Messages attributed to this query: probes, sub-queries, replies,
    /// and their routing envelopes — maintenance traffic (status updates)
    /// is accounted separately. Filled in by the cluster harness from the
    /// transport's per-query counters (correct even when queries
    /// overlap); 0 until then.
    pub messages: u64,
}

impl QueryOutcome {
    /// End-to-end latency of the query.
    pub fn latency(&self) -> moara_simnet::SimDuration {
        self.completed_at.duration_since(self.issued_at)
    }
}

/// An in-flight aggregation at one tree node.
struct Session {
    reply_to: NodeId,
    pending: HashSet<NodeId>,
    acc: AggState,
    kind: AggKind,
    complete: bool,
    timer: Option<(TimerId, TimerTag)>,
    tree: Id,
    done: bool,
    /// This hop's fan-out context (span_id = the fan-out span recorded
    /// when the sub-query arrived); the fold span parents to it and the
    /// `QueryReply` carries its descendant upstream.
    trace: Option<TraceCtx>,
    /// When the sub-query arrived — the fold span's queue-wait window
    /// (time spent waiting for children) is measured from here.
    started_at: SimTime,
}

enum FrontPhase {
    /// Waiting for size-probe replies.
    Probing,
    /// Waiting for sub-query replies.
    Waiting,
}

/// An in-flight query at the front-end (originating node). Many of these
/// coexist; the shared [`QuerySched`] coalesces their probes and caches
/// their costs across queries.
struct FrontQuery {
    qid: QueryId,
    query: Arc<Query>,
    /// Candidate covers, derived once at submit (`None` in Global mode or
    /// on CNF blow-up — the query goes to the global tree).
    plan: Option<CoverPlan>,
    phase: FrontPhase,
    probes_pending: HashSet<PredKey>,
    costs: HashMap<PredKey, u64>,
    sub_pending: HashSet<PredKey>,
    acc: AggState,
    complete: bool,
    issued_at: SimTime,
    /// Cache epoch when the query was accepted; replies are used for the
    /// lazy cost refresh only while no churn was observed since.
    epoch: u64,
    timer: Option<(TimerId, TimerTag)>,
    /// The front-end's trace context for this query (span_id = the plan
    /// span): probes and sub-queries descend from it, and the terminal
    /// reply span parents to it. `None` when unsampled.
    trace: Option<TraceCtx>,
    /// Span ids minted per outstanding probe, so the probe span recorded
    /// on reply matches the id the probed root parented to.
    probe_spans: HashMap<PredKey, u64>,
}

enum TimerEvent {
    Session(QueryId, PredKey),
    Probe(u64),
    Front(u64),
    /// Node-side subscription lease clock (maintenance timer).
    SubLease(SubId, PredKey),
    /// Node-side initial-sync timeout: announce with what arrived.
    SubInit(SubId, PredKey),
    /// Front-end renewal tick (maintenance; re-armed every lease/2).
    WatchRenew(u64),
    /// Front-end periodic-delivery tick (maintenance).
    WatchTick(u64),
    /// Front-end initial-sync timeout: emit the first update incomplete.
    WatchInit(u64),
}

/// A Moara agent/protocol instance hosted on one simulated machine.
pub struct MoaraNode {
    dir: Directory,
    cfg: MoaraConfig,
    /// The node's local `(attribute, value)` store.
    pub store: AttrStore,
    states: HashMap<PredKey, PredState>,
    /// Last time each predicate's state was touched (for GC policies).
    activity: HashMap<PredKey, SimTime>,
    sessions: HashMap<(QueryId, PredKey), Session>,
    contributed: HashMap<QueryId, SimTime>,
    fronts: HashMap<u64, FrontQuery>,
    completed: HashMap<u64, QueryOutcome>,
    timers: HashMap<TimerTag, TimerEvent>,
    /// The query-plane scheduler: probe-cost cache (with churn epoch) and
    /// the in-flight probe registry shared by all concurrent fronts.
    sched: QuerySched,
    /// Standing-subscription state this node hosts as a tree member, by
    /// (subscription, tree).
    subs: BTreeMap<(SubId, PredKey), SubEntry>,
    /// Subscriptions this node originated, by watch handle.
    watches: HashMap<u64, WatchState>,
    /// Reverse index: subscription id → watch handle.
    watch_of: HashMap<SubId, u64>,
    /// Watch handles with client-visible updates queued since the last
    /// [`MoaraNode::take_dirty_watches`] drain — a hint so embedding
    /// hosts poll only watches that actually emitted, instead of every
    /// watch every tick.
    dirty_watches: HashSet<u64>,
    /// Pending initial-sync timers, so completing the sync can cancel
    /// them instead of letting quiescence drains fire them.
    sub_init_timers: HashMap<(SubId, PredKey), (TimerId, TimerTag)>,
    watch_init_timers: HashMap<u64, (TimerId, TimerTag)>,
    next_front: u64,
    next_q: u64,
    next_watch: u64,
    next_sub: u64,
    next_tag: u64,
    /// Span sink, when the host (daemon or cluster harness) attached one.
    tracer: Option<Arc<SpanStore>>,
    /// The trace context of the `SubDelta` currently being handled —
    /// implicit causal propagation: a push triggered while folding an
    /// incoming delta chains to it instead of starting a fresh trace.
    delta_ctx: Option<TraceCtx>,
    /// Counter for delta-push trace ids minted at this node.
    next_delta_trace: u64,
}

impl MoaraNode {
    /// Creates a node bound to the shared overlay directory.
    pub fn new(dir: Directory, cfg: MoaraConfig) -> MoaraNode {
        let sched = QuerySched::new(cfg.probe_cache);
        MoaraNode {
            dir,
            cfg,
            store: AttrStore::new(),
            states: HashMap::new(),
            activity: HashMap::new(),
            sessions: HashMap::new(),
            contributed: HashMap::new(),
            fronts: HashMap::new(),
            completed: HashMap::new(),
            timers: HashMap::new(),
            sched,
            subs: BTreeMap::new(),
            watches: HashMap::new(),
            watch_of: HashMap::new(),
            dirty_watches: HashSet::new(),
            sub_init_timers: HashMap::new(),
            watch_init_timers: HashMap::new(),
            next_front: 0,
            next_q: 0,
            next_watch: 0,
            next_sub: 0,
            next_tag: 0,
            tracer: None,
            delta_ctx: None,
            next_delta_trace: 0,
        }
    }

    /// Attaches a span store: subsequent sampled queries, probes, and
    /// delta pushes record phase spans there. The store may be shared
    /// across nodes (cluster harness) or per-daemon.
    pub fn set_tracer(&mut self, tracer: Arc<SpanStore>) {
        self.tracer = Some(tracer);
    }

    /// The attached span store, if any.
    pub fn tracer(&self) -> Option<&Arc<SpanStore>> {
        self.tracer.as_ref()
    }

    /// Records one span under `parent` and returns the descended context
    /// (`span_id` = the new span) for downstream messages. `None` when
    /// tracing is off or the parent context is unsampled — callers thread
    /// the result straight into the wire field.
    #[allow(clippy::too_many_arguments)]
    fn trace_span(
        &self,
        parent: Option<TraceCtx>,
        me: NodeId,
        now: SimTime,
        phase: Phase,
        peer: u32,
        queue_us: u64,
        service_us: u64,
        bytes: u64,
        detail: String,
    ) -> Option<TraceCtx> {
        let tracer = self.tracer.as_ref()?;
        if !tracer.enabled() {
            return None;
        }
        let ctx = parent?;
        if !ctx.sampled() {
            return None;
        }
        let span_id = tracer.next_span_id(me.0);
        tracer.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id,
            parent_span_id: ctx.span_id,
            node: me.0,
            phase,
            peer,
            start_us: now.as_micros().saturating_sub(queue_us),
            queue_us,
            service_us,
            bytes,
            detail,
        });
        Some(ctx.descend(span_id))
    }

    /// Number of probe costs currently cached at this front-end
    /// (tests/inspection).
    pub fn probe_cache_len(&self) -> usize {
        self.sched.cache.len()
    }

    /// The probe cache's churn epoch (tests/inspection).
    pub fn probe_cache_epoch(&self) -> u64 {
        self.sched.cache.epoch()
    }

    /// Read access to the per-predicate protocol state (tests/inspection).
    pub fn pred_state(&self, pred_key: &str) -> Option<&PredState> {
        self.states.get(pred_key)
    }

    /// Number of predicate trees this node currently tracks.
    pub fn tracked_predicates(&self) -> usize {
        self.states.len()
    }

    /// Takes a finished query outcome, if ready.
    pub fn take_outcome(&mut self, front_id: u64) -> Option<QueryOutcome> {
        self.completed.remove(&front_id)
    }

    /// Peeks at a finished query outcome.
    pub fn outcome(&self, front_id: u64) -> Option<&QueryOutcome> {
        self.completed.get(&front_id)
    }

    /// The sampled trace id of an in-flight front, if tracing picked it
    /// up. Only valid while the front is alive — callers wanting to
    /// correlate a query with its trace grab this right after `submit`.
    pub fn front_trace_id(&self, front_id: u64) -> Option<u64> {
        self.fronts
            .get(&front_id)
            .and_then(|f| f.trace)
            .map(|t| t.trace_id)
    }

    /// Applies the configured garbage-collection policy: NO-UPDATE states
    /// are safe to discard (the parent's default already forwards queries
    /// to this node), so eviction never affects completeness.
    fn maybe_gc(&mut self, now: SimTime) {
        let evictable = |states: &HashMap<PredKey, PredState>, key: &str| {
            states.get(key).is_some_and(|st| !st.update)
        };
        match self.cfg.gc {
            GcPolicy::Never => {}
            GcPolicy::IdleTimeout(ttl) => {
                let stale: Vec<PredKey> = self
                    .activity
                    .iter()
                    .filter(|(k, t)| now.duration_since(**t) >= ttl && evictable(&self.states, k))
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in stale {
                    self.states.remove(&k);
                    self.activity.remove(&k);
                }
            }
            GcPolicy::KeepMostRecent(cap) => {
                if self.states.len() <= cap {
                    return;
                }
                let mut by_age: Vec<(SimTime, PredKey)> = self
                    .activity
                    .iter()
                    .filter(|(k, _)| evictable(&self.states, k))
                    .map(|(k, t)| (*t, k.clone()))
                    .collect();
                by_age.sort();
                let excess = self.states.len().saturating_sub(cap);
                for (_, k) in by_age.into_iter().take(excess) {
                    self.states.remove(&k);
                    self.activity.remove(&k);
                }
            }
        }
    }

    fn touch(&mut self, pred_key: &str, now: SimTime) {
        self.activity.insert(pred_key.to_owned(), now);
    }

    fn tree_key_for(pred: &SimplePredicate) -> Id {
        Id::of_attribute(pred.attr.as_str())
    }

    fn alloc_timer(&mut self, ev: TimerEvent) -> TimerTag {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.timers.insert(tag, ev);
        tag
    }

    /// Cancels a pending timer *and* forgets its event entry — cancelled
    /// timers never fire, so without the purge the tag map would grow for
    /// every completed query (a real leak in a run-forever daemon).
    fn drop_timer(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, handle: (TimerId, TimerTag)) {
        ctx.cancel_timer(handle.0);
        self.timers.remove(&handle.1);
    }

    // ----- front-end ---------------------------------------------------

    /// Accepts a query at this node's front-end; returns a handle for
    /// [`MoaraNode::take_outcome`]. Planning follows Section 6 — CNF →
    /// structural covers → (optional) size probes → min-cost cover →
    /// parallel sub-queries with duplicate suppression — scheduled
    /// through the query plane: probe costs come from the cache when a
    /// valid entry exists (repeated composite queries skip the probe
    /// phase entirely), misses coalesce onto probes already in flight for
    /// overlapping queries, and fan-out sharing a next hop leaves as one
    /// batched frame.
    pub fn submit(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, query: Query) -> u64 {
        let front_id = self.next_front;
        self.next_front += 1;
        let qid = QueryId {
            origin: ctx.me(),
            n: self.next_q,
        };
        self.next_q += 1;
        let query = Arc::new(query);

        let plan = if self.cfg.mode == Mode::Global {
            None
        } else {
            query
                .predicate
                .to_cnf()
                .ok()
                .map(|cnf| CoverPlan::build(&cnf))
        };
        let kind = query.agg;
        // Parse and plan run inline at the front-end; when this query is
        // sampled, their spans anchor the trace tree (trace id = the
        // query's wire tag) and every downstream hop parents to the plan
        // span's id carried in the message contexts.
        let trace = if self
            .tracer
            .as_ref()
            .is_some_and(|t| t.enabled() && t.sample_root())
        {
            let root = Some(TraceCtx::root(qid.tag()));
            let parsed = self.trace_span(
                root,
                ctx.me(),
                ctx.now(),
                Phase::Parse,
                NO_PEER,
                0,
                0,
                0,
                format!("agg={:?}", kind),
            );
            self.trace_span(
                parsed,
                ctx.me(),
                ctx.now(),
                Phase::Plan,
                NO_PEER,
                0,
                0,
                0,
                if plan.is_some() { "cnf" } else { "global" }.to_owned(),
            )
        } else {
            None
        };
        let mut front = FrontQuery {
            qid,
            query: query.clone(),
            plan,
            phase: FrontPhase::Waiting,
            probes_pending: HashSet::new(),
            costs: HashMap::new(),
            sub_pending: HashSet::new(),
            acc: kind.identity(),
            complete: true,
            issued_at: ctx.now(),
            epoch: self.sched.cache.epoch(),
            timer: None,
            trace,
            probe_spans: HashMap::new(),
        };

        // Unsatisfiable predicates are detected structurally (Figure 7's
        // disjointness rules) and answered locally — before any probes.
        if front.plan.as_ref().is_some_and(|p| p.empty) {
            self.fronts.insert(front_id, front);
            self.finish_front(ctx, front_id);
            return front_id;
        }

        // Probes are worth the round-trip only when cost information can
        // change the planner's decision, i.e. the plan has at least two
        // candidate covers. (This subsumes the old "single clause with a
        // single atom" special case and additionally skips pure unions,
        // whose only cover is forced regardless of group sizes.)
        let needs_probes =
            self.cfg.use_size_probes && front.plan.as_ref().is_some_and(CoverPlan::needs_costs);

        if needs_probes {
            front.phase = FrontPhase::Probing;
            let atoms = front
                .plan
                .as_ref()
                .expect("probing implies a plan")
                .probe_atoms();
            let me = ctx.me();
            let now = ctx.now();
            let mut outbound: Vec<(Id, MoaraMsg)> = Vec::new();
            for atom in atoms {
                let key = atom.key();
                if let Some(cost) = self.sched.cache.lookup(&key, now) {
                    ctx.count("probe_cache_hits");
                    front.costs.insert(key, cost);
                    continue;
                }
                if self.sched.cache.enabled() {
                    ctx.count("probe_cache_misses");
                }
                front.probes_pending.insert(key.clone());
                let epoch = self.sched.cache.epoch();
                // The probe span's id is minted at send but recorded on
                // reply (its queue-wait is the probe round-trip); the
                // probed root parents its own span to this id.
                let probe_trace = match (&self.tracer, front.trace) {
                    (Some(tr), Some(t)) if tr.enabled() && t.sampled() => {
                        let sid = tr.next_span_id(me.0);
                        front.probe_spans.insert(key.clone(), sid);
                        Some(t.descend(sid))
                    }
                    _ => None,
                };
                let probe = MoaraMsg::SizeProbe {
                    qid,
                    pred_key: key.clone(),
                    reply_to: me,
                    trace: probe_trace,
                };
                use std::collections::hash_map::Entry;
                match self.sched.waiters.entry(key) {
                    Entry::Occupied(mut e) => {
                        let wait = e.get_mut();
                        wait.fronts.push(front_id);
                        if now.duration_since(wait.sent_at) >= self.cfg.probe_timeout {
                            // The in-flight probe has outlived the probe
                            // timeout: presume its reply lost and re-send,
                            // otherwise continuous traffic would coalesce
                            // onto a dead probe forever. The new qid
                            // supersedes the old probe: a slow reply to
                            // it can no longer be cached as fresh.
                            wait.sent_at = now;
                            wait.epoch = epoch;
                            wait.probe_qid = qid;
                            outbound.push((Self::tree_key_for(&atom), probe));
                            ctx.count("size_probes");
                        } else {
                            // Another in-flight query already probed this
                            // tree; share its reply instead of re-asking.
                            ctx.count("probes_coalesced");
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(crate::sched::ProbeWait {
                            fronts: vec![front_id],
                            sent_at: now,
                            epoch,
                            probe_qid: qid,
                        });
                        outbound.push((Self::tree_key_for(&atom), probe));
                        ctx.count("size_probes");
                    }
                }
            }
            if front.probes_pending.is_empty() {
                // Every relevant cost was cached: skip the probe phase.
                self.fronts.insert(front_id, front);
                self.dispatch_front(ctx, front_id);
                return front_id;
            }
            let tag = self.alloc_timer(TimerEvent::Probe(front_id));
            front.timer = Some((ctx.set_timer(self.cfg.probe_timeout, tag), tag));
            self.fronts.insert(front_id, front);
            self.route_many(ctx, outbound);
        } else {
            self.fronts.insert(front_id, front);
            self.dispatch_front(ctx, front_id);
        }
        front_id
    }

    /// Chooses the cover and fans sub-queries out to tree roots.
    fn dispatch_front(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, front_id: u64) {
        let stale = {
            let front = self.fronts.get_mut(&front_id).expect("front exists");
            front.phase = FrontPhase::Waiting;
            front.timer.take()
        };
        if let Some(t) = stale {
            self.drop_timer(ctx, t);
        }
        let front = self.fronts.get_mut(&front_id).expect("front exists");
        let n2 = (self.dir.ring_size() as u64).saturating_mul(2);
        let cover = match &front.plan {
            None => Cover::All,
            Some(plan) => {
                if self.cfg.use_size_probes {
                    let costs = &front.costs;
                    plan.choose(|atom| costs.get(&atom.key()).copied().unwrap_or(n2))
                } else {
                    plan.choose(|_| 1)
                }
            }
        };
        let qid = front.qid;
        let query = front.query.clone();
        let ftrace = front.trace;
        let me = ctx.me();

        let subs: Vec<(PredKey, Id)> = match cover {
            Cover::Empty => Vec::new(),
            Cover::All => {
                let attr = query
                    .attr
                    .as_ref()
                    .map(|a| a.as_str().to_owned())
                    .unwrap_or_else(|| GLOBAL_PRED.to_owned());
                vec![(GLOBAL_PRED.to_owned(), Id::of_attribute(&attr))]
            }
            Cover::Groups(groups) => groups
                .iter()
                .map(|g| (g.key(), Self::tree_key_for(g)))
                .collect(),
        };

        if subs.is_empty() {
            self.finish_front(ctx, front_id);
            return;
        }
        let front = self.fronts.get_mut(&front_id).expect("front exists");
        for (pred_key, _) in &subs {
            front.sub_pending.insert(pred_key.clone());
        }
        if let Some(d) = self.cfg.front_timeout {
            let tag = self.alloc_timer(TimerEvent::Front(front_id));
            let t = ctx.set_timer(d, tag);
            self.fronts.get_mut(&front_id).expect("front").timer = Some((t, tag));
        }
        // One fan-out span at the origin covers the whole sub-query
        // spray; each tree root's own fan-out span parents to it.
        let qtrace = self.trace_span(
            ftrace,
            me,
            ctx.now(),
            Phase::FanOut,
            NO_PEER,
            0,
            0,
            0,
            format!("subs={}", subs.len()),
        );
        let outbound: Vec<(Id, MoaraMsg)> = subs
            .into_iter()
            .map(|(pred_key, tree)| {
                (
                    tree,
                    MoaraMsg::QueryDown {
                        qid,
                        seq: 0,
                        pred_key,
                        tree,
                        query: (*query).clone(),
                        reply_to: me,
                        trace: qtrace,
                    },
                )
            })
            .collect();
        self.route_many(ctx, outbound);
    }

    fn finish_front(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, front_id: u64) {
        let Some(front) = self.fronts.remove(&front_id) else {
            return;
        };
        if let Some(t) = front.timer {
            self.drop_timer(ctx, t);
        }
        let complete = front.complete && front.sub_pending.is_empty();
        // The terminal span: its queue-wait is the query's end-to-end
        // latency as seen by the front-end.
        self.trace_span(
            front.trace,
            ctx.me(),
            ctx.now(),
            Phase::Reply,
            NO_PEER,
            ctx.now().duration_since(front.issued_at).as_micros(),
            0,
            0,
            format!("complete={complete}"),
        );
        let outcome = QueryOutcome {
            qid: front.qid,
            result: front.query.agg.finalize(front.acc),
            complete,
            issued_at: front.issued_at,
            completed_at: ctx.now(),
            messages: 0,
        };
        self.completed.insert(front_id, outcome);
    }

    // ----- routing ------------------------------------------------------

    fn route(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, key: Id, inner: MoaraMsg) {
        match self.dir.next_hop_node(ctx.me(), key) {
            Some(next) => ctx.send(
                next,
                MoaraMsg::Route {
                    key,
                    inner: Box::new(inner),
                },
            ),
            None => self.handle_at_root(ctx, key, inner),
        }
    }

    /// Routes several messages at once, coalescing those that share a
    /// next hop into one [`MoaraMsg::Batch`] frame. Called on front-end
    /// fan-out and again whenever a batch is unpacked at an intermediate
    /// hop, so shared overlay path prefixes are paid for once.
    fn route_many(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, items: Vec<(Id, MoaraMsg)>) {
        let me = ctx.me();
        let mut queue = BatchQueue::new();
        for (key, inner) in items {
            match self.dir.next_hop_node(me, key) {
                Some(next) => queue.push_remote(next, key, inner),
                None => queue.push_local(key, inner),
            }
        }
        for (key, inner) in queue.flush(ctx) {
            self.handle_at_root(ctx, key, inner);
        }
    }

    fn handle_at_root(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, _key: Id, inner: MoaraMsg) {
        match inner {
            MoaraMsg::QueryDown {
                qid,
                pred_key,
                tree,
                query,
                reply_to,
                trace,
                ..
            } => {
                // The root stamps the per-tree sequence number (Section 4).
                let seq = if pred_key == GLOBAL_PRED {
                    0
                } else {
                    if let Some(atom) = find_atom(&query, &pred_key) {
                        self.ensure_state(ctx.me(), &atom);
                    }
                    match self.states.get_mut(&pred_key) {
                        Some(st) => {
                            st.seq_counter += 1;
                            st.seq_counter
                        }
                        None => 0,
                    }
                };
                self.handle_query_down(ctx, qid, seq, pred_key, tree, query, reply_to, trace);
            }
            MoaraMsg::SizeProbe {
                qid,
                pred_key,
                reply_to,
                trace,
            } => self.answer_size_probe(ctx, qid, pred_key, reply_to, trace),
            MoaraMsg::Subscribe {
                spec,
                pred_key,
                tree,
                ..
            } => {
                // Arrived at the tree root: deltas go to the subscriber,
                // and the root stamps the install's tree sequence number
                // (installs count as queries for adaptation, Section 4).
                let seq = if pred_key == GLOBAL_PRED {
                    0
                } else {
                    if let Some(atom) = find_atom(&spec.query, &pred_key) {
                        self.ensure_state(ctx.me(), &atom);
                    }
                    match self.states.get_mut(&pred_key) {
                        Some(st) => {
                            st.seq_counter += 1;
                            st.seq_counter
                        }
                        None => 0,
                    }
                };
                self.handle_subscribe(ctx, None, spec, pred_key, tree, seq);
            }
            MoaraMsg::SubRenew {
                sid,
                pred_key,
                lease_us,
                last_seen_seq,
            } => {
                self.handle_sub_renew(ctx, None, sid, pred_key, lease_us, last_seen_seq);
            }
            MoaraMsg::SubCancel { sid, pred_key } => {
                self.handle_sub_cancel(ctx, None, sid, pred_key);
            }
            other => {
                debug_assert!(false, "unexpected routed payload {other:?}");
            }
        }
    }

    /// Answers a size probe (routed to this root, or a stray direct one):
    /// the probe span records this hop's view, and the reply carries its
    /// descendant so the asking front-end can place the round-trip.
    fn answer_size_probe(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        qid: QueryId,
        pred_key: PredKey,
        reply_to: NodeId,
        trace: Option<TraceCtx>,
    ) {
        let cost = self.estimated_query_cost(ctx.me(), &pred_key);
        let t = self.trace_span(
            trace,
            ctx.me(),
            ctx.now(),
            Phase::Probe,
            reply_to.0,
            0,
            0,
            0,
            format!("cost={cost}"),
        );
        ctx.send(
            reply_to,
            MoaraMsg::SizeReply {
                qid,
                pred_key,
                cost,
                trace: t,
            },
        );
    }

    /// The root's query-cost estimate: `2 × np`, or twice the system size
    /// when the tree has no state yet (a cold tree broadcasts).
    fn estimated_query_cost(&self, me: NodeId, pred_key: &str) -> u64 {
        match self.states.get(pred_key) {
            Some(st) => {
                let tree = Self::tree_key_for(&st.pred);
                let children = self.dir.children_of(tree, me);
                let dir = &self.dir;
                2 * st.np(me, &children, |c| dir.subtree_size(tree, c))
            }
            None => (self.dir.ring_size() as u64).saturating_mul(2),
        }
    }

    // ----- predicate state ----------------------------------------------

    fn ensure_state(&mut self, me: NodeId, pred: &SimplePredicate) -> &mut PredState {
        let key = pred.key();
        let cfg = &self.cfg;
        let dir = &self.dir;
        let store = &self.store;
        let _ = store;
        self.states.entry(key).or_insert_with(|| {
            // Fresh state starts with an empty updateSet and NO-UPDATE —
            // the first query therefore counts as `qn` (the paper: nodes
            // "move into UPDATE state with the first query message") and
            // the caller refreshes the sets right after.
            let mut st = PredState::new(
                pred.clone(),
                cfg.k_update,
                cfg.k_no_update,
                cfg.threshold,
                cfg.mode == Mode::AlwaysUpdate,
            );
            let tree = Self::tree_key_for(pred);
            st.parent = dir.parent_of(tree, me);
            st
        })
    }

    /// Installs predicate state without sending anything (cluster-level
    /// pre-registration for the Always-Update baseline).
    pub fn install_state(&mut self, me: NodeId, pred: &SimplePredicate) {
        self.ensure_state(me, pred);
    }

    /// Sends a status update to the tree parent if the state demands one,
    /// cascading lazily via the parent's own handler.
    fn sync_status(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, pred_key: &str) {
        let me = ctx.me();
        let Some(st) = self.states.get_mut(pred_key) else {
            return;
        };
        let Some(out) = st.status_to_send(me) else {
            return;
        };
        let tree = Self::tree_key_for(&st.pred);
        let Some(parent) = self.dir.parent_of(tree, me) else {
            return; // root has nobody to update
        };
        let children = self.dir.children_of(tree, me);
        let dir = &self.dir;
        let np = st.np(me, &children, |c| dir.subtree_size(tree, c));
        let msg = MoaraMsg::Status {
            pred_key: pred_key.to_owned(),
            pred: st.pred.clone(),
            prune: out.prune,
            update_set: out.update_set,
            np,
            last_seq: st.last_seen_seq,
        };
        ctx.send(parent, msg);
        ctx.count("status_updates");
    }

    /// Re-evaluates local satisfaction for every predicate over `attr`
    /// after a local attribute change ("group churn" at this node).
    pub fn on_local_change(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, attr: &str) {
        // Local churn is direct evidence that group sizes moved; drop all
        // cached probe costs so the next composite query re-probes.
        self.sched.cache.bump_epoch();
        let me = ctx.me();
        let keys: Vec<PredKey> = self
            .states
            .iter()
            .filter(|(_, st)| st.pred.attr.as_str() == attr)
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let st = self.states.get_mut(&key).expect("state exists");
            let tree = Self::tree_key_for(&st.pred);
            let children = self.dir.children_of(tree, me);
            let sat = st.pred.eval(&self.store);
            st.refresh(me, sat, &children);
            self.sync_status(ctx, &key);
        }
        // Standing subscriptions react to the same change: the local
        // contribution is re-derived and any movement pushes a delta.
        self.subs_on_local_change(ctx);
    }

    /// Reconciles all predicate states with the current overlay topology
    /// (after joins/failures): drops ex-children, re-introduces state to
    /// new parents (Section 7's reconfiguration handling).
    pub fn reconcile(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>) {
        // Overlay reconfiguration invalidates cached probe costs: tree
        // shapes (and thus per-tree query costs) may have changed.
        self.sched.cache.bump_epoch();
        let me = ctx.me();
        let keys: Vec<PredKey> = self.states.keys().cloned().collect();
        for key in keys {
            let st = self.states.get_mut(&key).expect("state exists");
            let tree = Self::tree_key_for(&st.pred);
            let children = self.dir.children_of(tree, me);
            st.retain_children(|c| children.contains(&c));
            let new_parent = self.dir.parent_of(tree, me);
            if st.parent != new_parent {
                st.parent = new_parent;
                // The new parent assumes the default about us; resend our
                // state if it differs.
                st.sent = None;
            }
            let sat = st.pred.eval(&self.store);
            st.refresh(me, sat, &children);
            self.sync_status(ctx, &key);
        }
        // Standing subscriptions repair along the reconciled trees.
        self.subs_on_reconcile(ctx);
    }

    /// Resets protocol state that cannot have survived a crash-restart
    /// (or a long partition) intact, then re-enters this node's groups'
    /// trees via [`MoaraNode::reconcile`]. Everything discarded here is
    /// *safe* to discard: a cleared child entry degrades to the default
    /// (NO-PRUNE, forward directly) and `sent = None` makes the next
    /// status comparison against the parent's default — so the trees
    /// rebuild their pruning lazily while completeness holds throughout.
    pub fn on_rejoin(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>) {
        for st in self.states.values_mut() {
            // Children may have changed state (or died) while we were
            // gone; their reports are stale testimony.
            st.children.clear();
            // The parent has long since dropped us (or was never told
            // about us): whatever we believe we sent, it no longer knows.
            st.sent = None;
            st.parent = None;
        }
        // In-flight work addressed to the pre-crash process is void.
        self.sessions.clear();
        self.fronts.clear();
        self.timers.clear();
        self.sched.waiters.clear();
        self.sched.cache.bump_epoch();
        // Standing subscription state is likewise void: hosted entries
        // are re-installed by the parents' repair wave, and this node's
        // own watches did not survive the crash (their subscribers are
        // gone with the process).
        self.subs.clear();
        for (_, wid) in std::mem::take(&mut self.watch_of) {
            self.watches.remove(&wid);
        }
        self.dirty_watches.clear();
        self.sub_init_timers.clear();
        self.watch_init_timers.clear();
        self.reconcile(ctx);
    }

    /// Treats `failed` as having answered NULL in any pending session —
    /// the engine's analogue of FreePastry's failure notification.
    pub fn on_peer_failed(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, failed: NodeId) {
        let keys: Vec<(QueryId, PredKey)> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.pending.contains(&failed))
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let sess = self.sessions.get_mut(&key).expect("session exists");
            sess.pending.remove(&failed);
            sess.complete = false;
            if sess.pending.is_empty() {
                self.finalize_session(ctx, &key);
            }
        }
        // Standing subscriptions retract the failed child's summary at
        // once — the result shrinks within the same failure confirm that
        // triggered this hook (the rest of its subtree is re-adopted by
        // the reconcile that follows).
        let keys: Vec<(SubId, PredKey)> = self
            .subs
            .iter()
            .filter(|(_, e)| {
                e.last_seen.contains_key(&failed) || e.pending_initial.contains(&failed)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let entry = self.subs.get_mut(&key).expect("filtered");
            let changed = entry.drop_child(failed);
            if !entry.announced {
                self.maybe_announce(ctx, &key);
            } else if changed {
                self.push_sub_delta(ctx, &key);
            }
        }
    }

    // ----- query execution ----------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_query_down(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        qid: QueryId,
        seq: u64,
        pred_key: PredKey,
        tree: Id,
        query: Query,
        reply_to: NodeId,
        trace: Option<TraceCtx>,
    ) {
        let me = ctx.me();
        let skey = (qid, pred_key.clone());
        if self.sessions.contains_key(&skey) {
            // Already handling this sub-query (stale duplicate): reply
            // immediately with no contribution.
            ctx.send(
                reply_to,
                MoaraMsg::QueryReply {
                    qid,
                    pred_key,
                    state: AggState::Null,
                    np: 0,
                    complete: true,
                    trace,
                },
            );
            return;
        }

        // Adaptation accounting + possible state transition (Section 4).
        let targets: Vec<NodeId> = if pred_key == GLOBAL_PRED {
            self.dir.children_of(tree, me)
        } else {
            if let Some(atom) = find_atom(&query, &pred_key) {
                self.ensure_state(me, &atom);
            }
            match self.states.get_mut(&pred_key) {
                Some(st) => {
                    // Account the query against the *current* updateSet
                    // first (a brand-new state counts it as qn), then
                    // refresh sets and satisfaction.
                    st.on_query(me, seq);
                    let children = self.dir.children_of(tree, me);
                    let sat = st.pred.eval(&self.store);
                    st.refresh(me, sat, &children);
                    st.query_targets(me, &children)
                }
                None => self.dir.children_of(tree, me),
            }
        };
        if pred_key != GLOBAL_PRED {
            self.sync_status(ctx, &pred_key);
            self.touch(&pred_key, ctx.now());
            self.maybe_gc(ctx.now());
        }

        // Local contribution, at most once per query id (Section 6.2's
        // duplicate suppression when a node sits in several cover trees).
        let mut acc = query.agg.identity();
        if !self.contributed.contains_key(&qid) && query.predicate.eval(&self.store) {
            self.contributed.insert(qid, ctx.now());
            self.gc_contributed(ctx.now());
            acc = self.local_contribution(me, &query);
        }

        // This hop's fan-out span: parented to the sender's span carried
        // on the wire; the outgoing sub-queries and the eventual fold
        // span both descend from it.
        let own = self.trace_span(
            trace,
            me,
            ctx.now(),
            Phase::FanOut,
            reply_to.0,
            0,
            0,
            0,
            format!("targets={}", targets.len()),
        );
        let mut session = Session {
            reply_to,
            pending: targets.iter().copied().collect(),
            acc,
            kind: query.agg,
            complete: true,
            timer: None,
            tree,
            done: false,
            trace: own,
            started_at: ctx.now(),
        };
        if !targets.is_empty() {
            if let Some(d) = self.cfg.child_timeout {
                let tag = self.alloc_timer(TimerEvent::Session(qid, pred_key.clone()));
                session.timer = Some((ctx.set_timer(d, tag), tag));
            }
        }
        let empty = targets.is_empty();
        self.sessions.insert(skey.clone(), session);
        for t in targets {
            ctx.send(
                t,
                MoaraMsg::QueryDown {
                    qid,
                    seq,
                    pred_key: pred_key.clone(),
                    tree,
                    query: query.clone(),
                    reply_to: me,
                    trace: own,
                },
            );
        }
        if empty {
            self.finalize_session(ctx, &skey);
        }
    }

    /// The node's own value for the query, as a partial aggregate.
    fn local_contribution(&self, me: NodeId, query: &Query) -> AggState {
        let node = NodeRef(me.0 as u64);
        match query.agg {
            AggKind::Count | AggKind::Enumerate => query
                .agg
                .seed(node, &Value::Bool(true))
                .unwrap_or(AggState::Null),
            _ => {
                let Some(attr) = &query.attr else {
                    return AggState::Null;
                };
                match self.store.get(attr.as_str()) {
                    Some(v) => query.agg.seed(node, v).unwrap_or(AggState::Null),
                    None => AggState::Null,
                }
            }
        }
    }

    fn gc_contributed(&mut self, now: SimTime) {
        if !self.contributed.len().is_multiple_of(512) {
            return;
        }
        let ttl = self.cfg.dedup_ttl;
        self.contributed.retain(|_, t| now.duration_since(*t) < ttl);
    }

    fn finalize_session(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, skey: &(QueryId, PredKey)) {
        let me = ctx.me();
        let Some(sess) = self.sessions.get_mut(skey) else {
            return;
        };
        if sess.done {
            return;
        }
        sess.done = true;
        let stale = sess.timer.take();
        let complete = sess.complete && sess.pending.is_empty();
        let acc = std::mem::replace(&mut sess.acc, AggState::Null);
        let reply_to = sess.reply_to;
        let tree = sess.tree;
        let strace = sess.trace;
        let started_at = sess.started_at;
        if let Some(t) = stale {
            self.drop_timer(ctx, t);
        }
        let np = match self.states.get(&skey.1) {
            Some(st) => {
                let children = self.dir.children_of(tree, me);
                let dir = &self.dir;
                st.np(me, &children, |c| dir.subtree_size(tree, c))
            }
            None => 0,
        };
        // The fold span's queue-wait is the time this hop sat waiting for
        // its children before it could merge and answer upstream.
        let t = self.trace_span(
            strace,
            me,
            ctx.now(),
            Phase::Fold,
            reply_to.0,
            ctx.now().duration_since(started_at).as_micros(),
            0,
            0,
            format!("complete={complete}"),
        );
        ctx.send(
            reply_to,
            MoaraMsg::QueryReply {
                qid: skey.0,
                pred_key: skey.1.clone(),
                state: acc,
                np,
                complete,
                trace: t,
            },
        );
        self.sessions.remove(skey);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_query_reply(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: NodeId,
        qid: QueryId,
        pred_key: PredKey,
        state: AggState,
        np: u64,
        complete: bool,
    ) {
        let skey = (qid, pred_key.clone());
        // A reply to our session (we forwarded the query to `from`)?
        let is_session_reply = self
            .sessions
            .get(&skey)
            .is_some_and(|s| s.pending.contains(&from));
        if is_session_reply {
            let sess = self.sessions.get_mut(&skey).expect("session exists");
            sess.pending.remove(&from);
            sess.complete &= complete;
            let kind = sess.kind;
            let prev = std::mem::replace(&mut sess.acc, AggState::Null);
            sess.acc = kind.merge(prev, state);
            // Lazy np refresh for direct children (Section 6.3).
            if let Some(st) = self.states.get_mut(&pred_key) {
                if let Some(info) = st.children.get_mut(&from) {
                    info.np = np;
                }
            }
            if self.sessions[&skey].pending.is_empty() {
                self.finalize_session(ctx, &skey);
            }
            return;
        }
        // Otherwise: a root's final answer to one of our front-end
        // sub-queries.
        let front_id = self
            .fronts
            .iter()
            .find(|(_, f)| f.qid == qid && f.sub_pending.contains(&pred_key))
            .map(|(id, _)| *id);
        if let Some(front_id) = front_id {
            // Lazy cost refresh (Section 6.3): the root's answer carries
            // the tree's current NO-PRUNE count, so every query keeps the
            // probe cache tracking tree convergence for free. Without
            // this, a cached cold-tree estimate (2×N) would outlive the
            // very query that built and pruned the tree. Skipped if churn
            // was observed since the query was accepted — the measurement
            // might predate the change the epoch bump evicted.
            let fresh = self.fronts[&front_id].epoch == self.sched.cache.epoch();
            if fresh && pred_key != GLOBAL_PRED {
                self.sched
                    .cache
                    .insert(pred_key.clone(), np.saturating_mul(2), ctx.now());
            }
            let front = self.fronts.get_mut(&front_id).expect("front exists");
            front.sub_pending.remove(&pred_key);
            front.complete &= complete;
            let kind = front.query.agg;
            let prev = std::mem::replace(&mut front.acc, AggState::Null);
            front.acc = kind.merge(prev, state);
            if front.sub_pending.is_empty() {
                self.finish_front(ctx, front_id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_status(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: NodeId,
        pred_key: PredKey,
        pred: SimplePredicate,
        prune: bool,
        update_set: Vec<NodeId>,
        np: u64,
        last_seq: u64,
    ) {
        let me = ctx.me();
        // Status traffic is churn evidence for exactly this predicate's
        // tree: drop its cached probe cost, keep the rest.
        self.sched.cache.invalidate(&pred_key);
        self.ensure_state(me, &pred);
        let st = self.states.get_mut(&pred_key).expect("just ensured");
        st.note_child_status(
            from,
            ChildInfo {
                prune,
                update_set,
                np,
            },
        );
        st.account_seq(last_seq);
        let tree = Self::tree_key_for(&st.pred);
        let children = self.dir.children_of(tree, me);
        let sat = st.pred.eval(&self.store);
        st.refresh(me, sat, &children);
        self.sync_status(ctx, &pred_key);
        self.touch(&pred_key, ctx.now());
        self.maybe_gc(ctx.now());
        // Status traffic is the install-repair trigger for standing
        // subscriptions on this tree: a branch that just un-pruned
        // (a node joined the group down there) gets the install, a
        // branch that pruned is released.
        self.subs_on_status(ctx, &pred_key);
    }

    /// A probe answer: satisfies *every* front waiting on that key — one
    /// probe round-trip can unblock several overlapping queries — and
    /// lands in the probe cache only when its freshness is provable:
    /// the reply must echo the qid of the *latest* probe send (a slow
    /// reply to a probe superseded by a re-send may predate churn) and
    /// no epoch bump may have happened since that send. A superseded
    /// reply still delivers its cost to waiters (costs only steer cover
    /// choice) but leaves the `ProbeWait` in place, so the authoritative
    /// reply behind it can still be cached when it arrives. A reply with
    /// no `ProbeWait` at all (everyone timed out and forgot the key) is
    /// dropped: its send epoch is unknown.
    fn handle_size_reply(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        qid: QueryId,
        pred_key: PredKey,
        cost: u64,
    ) {
        let tracer = self.tracer.clone();
        let me = ctx.me().0;
        let now_us = ctx.now().as_micros();
        let Some(wait) = self.sched.waiters.get_mut(&pred_key) else {
            return;
        };
        let fronts = std::mem::take(&mut wait.fronts);
        if qid == wait.probe_qid {
            let epoch_ok = wait.epoch == self.sched.cache.epoch();
            self.sched.waiters.remove(&pred_key);
            if epoch_ok {
                self.sched.cache.insert(pred_key.clone(), cost, ctx.now());
            }
        }
        let mut ready = Vec::new();
        for fid in fronts {
            let Some(front) = self.fronts.get_mut(&fid) else {
                continue; // front finished (e.g. via its overall deadline)
            };
            if !matches!(front.phase, FrontPhase::Probing) {
                continue; // already dispatched on probe timeout
            }
            if !front.probes_pending.remove(&pred_key) {
                continue;
            }
            front.costs.insert(pred_key.clone(), cost);
            // The probe span was minted at send; record it now that the
            // round-trip is known (its queue-wait).
            if let (Some(tr), Some(t), Some(sid)) = (
                tracer.as_ref(),
                front.trace,
                front.probe_spans.remove(&pred_key),
            ) {
                if tr.enabled() && t.sampled() {
                    let issued = front.issued_at.as_micros();
                    tr.record(SpanRecord {
                        trace_id: t.trace_id,
                        span_id: sid,
                        parent_span_id: t.span_id,
                        node: me,
                        phase: Phase::Probe,
                        peer: NO_PEER,
                        start_us: issued,
                        queue_us: now_us.saturating_sub(issued),
                        service_us: 0,
                        bytes: 0,
                        detail: format!("{pred_key}={cost}"),
                    });
                }
            }
            if front.probes_pending.is_empty() {
                ready.push(fid);
            }
        }
        for fid in ready {
            self.dispatch_front(ctx, fid);
        }
    }

    // ----- continuous queries (subscription plane) ----------------------

    /// Installs a standing query at this node's front-end: the plan is
    /// built once (cover chosen from cached probe costs — no probe
    /// round-trip; a stale cost only affects efficiency, never
    /// correctness), `Subscribe` is routed along every pinned tree, and
    /// from then on the result is maintained by incremental deltas.
    /// Returns a watch handle for [`MoaraNode::take_sub_updates`].
    pub fn subscribe(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        query: Query,
        policy: DeliveryPolicy,
        lease: SimDuration,
    ) -> u64 {
        // Floors against degenerate standing clocks: a zero (or
        // micro-scale) period or lease would re-arm its maintenance
        // timer in a tight loop.
        let lease = lease.max(SimDuration::from_millis(10));
        let policy = match policy {
            DeliveryPolicy::Periodic(p) => {
                DeliveryPolicy::Periodic(p.max(SimDuration::from_millis(10)))
            }
            other => other,
        };
        let wid = self.next_watch;
        self.next_watch += 1;
        let sid = SubId {
            origin: ctx.me(),
            n: self.next_sub,
        };
        self.next_sub += 1;
        let now = ctx.now();

        let plan = if self.cfg.mode == Mode::Global {
            None
        } else {
            query
                .predicate
                .to_cnf()
                .ok()
                .map(|cnf| CoverPlan::build(&cnf))
        };
        let n2 = (self.dir.ring_size() as u64).saturating_mul(2);
        let cover = match &plan {
            None => Cover::All,
            Some(plan) => {
                if self.cfg.use_size_probes {
                    let cache = &self.sched.cache;
                    plan.choose(|atom| cache.lookup(&atom.key(), now).unwrap_or(n2))
                } else {
                    plan.choose(|_| 1)
                }
            }
        };
        let roots: Vec<(PredKey, Id)> = match &cover {
            Cover::Empty => Vec::new(),
            Cover::All => {
                let attr = query
                    .attr
                    .as_ref()
                    .map(|a| a.as_str().to_owned())
                    .unwrap_or_else(|| GLOBAL_PRED.to_owned());
                vec![(GLOBAL_PRED.to_owned(), Id::of_attribute(&attr))]
            }
            Cover::Groups(groups) => groups
                .iter()
                .map(|g| (g.key(), Self::tree_key_for(g)))
                .collect(),
        };
        let mut cover_keys: Vec<String> = roots.iter().map(|(k, _)| k.clone()).collect();
        cover_keys.sort();
        let spec = SubSpec {
            id: sid,
            query,
            policy,
            lease,
            owner: ctx.me(),
            cover: cover_keys,
        };
        let mut watch = WatchState::new(spec.clone(), roots.clone());
        if roots.is_empty() {
            // Structurally unsatisfiable: the (empty) result is standing
            // truth with no communication at all.
            watch.force_initial(now);
            self.watches.insert(wid, watch);
            self.watch_of.insert(sid, wid);
            self.dirty_watches.insert(wid);
            return wid;
        }
        self.watches.insert(wid, watch);
        self.watch_of.insert(sid, wid);
        ctx.count("sub_subscribes");

        let outbound: Vec<(Id, MoaraMsg)> = roots
            .iter()
            .map(|(k, tree)| {
                (
                    *tree,
                    MoaraMsg::Subscribe {
                        spec: spec.clone(),
                        pred_key: k.clone(),
                        tree: *tree,
                        seq: 0,
                    },
                )
            })
            .collect();
        self.route_many(ctx, outbound);

        // Renewal at half the lease keeps state alive everywhere with a
        // margin for one lost renewal; both standing clocks are
        // maintenance timers — they must not gate quiescence.
        let half = SimDuration::from_micros((lease.as_micros() / 2).max(1));
        let tag = self.alloc_timer(TimerEvent::WatchRenew(wid));
        ctx.set_maintenance_timer(half, tag);
        if let DeliveryPolicy::Periodic(period) = policy {
            let tag = self.alloc_timer(TimerEvent::WatchTick(wid));
            ctx.set_maintenance_timer(period, tag);
        }
        let init_to = self.cfg.front_timeout.unwrap_or(SimDuration::from_secs(60));
        let tag = self.alloc_timer(TimerEvent::WatchInit(wid));
        let t = ctx.set_timer(init_to, tag);
        self.watch_init_timers.insert(wid, (t, tag));
        wid
    }

    /// Tears a subscription down: `SubCancel` travels every pinned tree
    /// and removes per-node state eagerly (lease expiry would get there
    /// anyway, this is just prompt).
    pub fn unsubscribe(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, watch_id: u64) {
        let Some(watch) = self.watches.remove(&watch_id) else {
            return;
        };
        self.watch_of.remove(&watch.spec.id);
        self.dirty_watches.remove(&watch_id);
        if let Some(t) = self.watch_init_timers.remove(&watch_id) {
            self.drop_timer(ctx, t);
        }
        let outbound: Vec<(Id, MoaraMsg)> = watch
            .roots
            .iter()
            .map(|(k, tree)| {
                (
                    *tree,
                    MoaraMsg::SubCancel {
                        sid: watch.spec.id,
                        pred_key: k.clone(),
                    },
                )
            })
            .collect();
        self.route_many(ctx, outbound);
    }

    /// Drains the client-visible updates of one watch.
    pub fn take_sub_updates(&mut self, watch_id: u64) -> Vec<SubUpdate> {
        self.watches
            .get_mut(&watch_id)
            .map(WatchState::take_updates)
            .unwrap_or_default()
    }

    /// Drains the set of watch handles that queued updates since the
    /// last drain. Hosts with many standing watches (the gateway result
    /// cache) poll [`MoaraNode::take_sub_updates`] for exactly these
    /// instead of scanning every watch every tick — idle cost is O(1).
    /// The set is a hint, not a transfer: updates stay queued on their
    /// watch until that watch is drained, so hosts that poll specific
    /// watches directly (ctrl/SSE streams) can ignore it.
    pub fn take_dirty_watches(&mut self) -> Vec<u64> {
        self.dirty_watches.drain().collect()
    }

    /// The current merged result of a watch (None for unknown handles).
    pub fn watch_result(&self, watch_id: u64) -> Option<AggResult> {
        self.watches.get(&watch_id).map(WatchState::current)
    }

    /// Updates ever emitted by a watch (per-subscription stats).
    pub fn watch_updates_emitted(&self, watch_id: u64) -> u64 {
        self.watches.get(&watch_id).map_or(0, |w| w.updates_emitted)
    }

    /// Number of watches this front-end currently maintains.
    pub fn active_watches(&self) -> usize {
        self.watches.len()
    }

    /// Number of per-tree subscription entries this node currently hosts
    /// (tests: lease-expiry GC must drive this to zero).
    pub fn sub_entry_count(&self) -> usize {
        self.subs.len()
    }

    /// This node's contribution to one tree of a subscription's pinned
    /// cover: its value if it satisfies the composite predicate AND this
    /// tree is the first cover group it belongs to (standing duplicate
    /// suppression for overlapping groups), else the null contribution.
    fn sub_contribution(&self, me: NodeId, spec: &SubSpec, pred_key: &str) -> AggState {
        if !spec.query.predicate.eval(&self.store) {
            return AggState::Null;
        }
        let owning = spec.cover.iter().find(|k| {
            k.as_str() == GLOBAL_PRED
                || find_atom(&spec.query, k).is_some_and(|a| a.eval(&self.store))
        });
        if owning.map(String::as_str) != Some(pred_key) {
            return AggState::Null;
        }
        self.local_contribution(me, &spec.query)
    }

    /// Whom to forward a subscription install to: this node's *tree
    /// children* — all of them.
    ///
    /// Deliberately broader than a query's `query_targets`, twice over.
    /// No SQP bypass: forwarding to a child's updateSet members directly
    /// wins latency for one-shot queries, but a standing fold needs
    /// *stable per-hop sources* — bypass sets churn with every
    /// membership wobble, and re-homing summaries mid-stream is exactly
    /// how double-counts happen. And no PRUNE filtering: a pruned branch
    /// holds no members *today*, but the node that joins the group
    /// tomorrow must already hold the subscription so its first
    /// `on_local_change` can push the delta — relying on the NO-PRUNE
    /// status to re-install would silently lose joins whenever that
    /// status is lost (partitions drop frames without telling anyone).
    /// The standing state this costs is bounded by the lease, and the
    /// steady-state traffic (renewals at half-lease) stays far below
    /// per-period polling.
    ///
    /// When `seq` is given (install path), the install is accounted as a
    /// query for the Section 4 adaptation machinery, so a standing query
    /// warms and prunes the tree exactly like a one-shot query would —
    /// one-shot queries running next to the subscription start from a
    /// converged tree.
    fn sub_targets(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        atom: Option<SimplePredicate>,
        pred_key: &str,
        tree: Id,
        seq: Option<u64>,
    ) -> Vec<NodeId> {
        let me = ctx.me();
        let children = self.dir.children_of(tree, me);
        if pred_key == GLOBAL_PRED {
            return children;
        }
        if let Some(atom) = &atom {
            self.ensure_state(me, atom);
        }
        if let (Some(seq), Some(st)) = (seq, self.states.get_mut(pred_key)) {
            st.on_query(me, seq);
            let sat = st.pred.eval(&self.store);
            st.refresh(me, sat, &children);
            self.sync_status(ctx, pred_key);
        }
        children
    }

    /// Delivers (or locally applies) the replacement delta of one entry,
    /// suppressed when its subtree aggregate has not moved.
    fn push_sub_delta(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, key: &(SubId, PredKey)) {
        let me = ctx.me();
        let Some(entry) = self.subs.get_mut(key) else {
            return;
        };
        if !entry.announced {
            return;
        }
        let Some((seq, state)) = entry.take_push() else {
            ctx.count("sub_suppressed");
            return;
        };
        let to = entry.push_to;
        // Causal context for this push: the delta being folded right now
        // (implicit propagation), else a fresh sampled root in the
        // delta-push trace-id namespace — a local change starting a wave.
        let parent = match self.delta_ctx {
            Some(t) => Some(t),
            None => {
                let fresh = self
                    .tracer
                    .as_ref()
                    .is_some_and(|t| t.enabled() && t.sample_root());
                if fresh {
                    let n = self.next_delta_trace;
                    self.next_delta_trace += 1;
                    Some(TraceCtx::root(
                        TRACE_NS_SUBDELTA | (u64::from(me.0) << 32) | (n & 0xffff_ffff),
                    ))
                } else {
                    None
                }
            }
        };
        if to == me {
            // This node is both the tree root and the subscriber.
            let prev = std::mem::replace(&mut self.delta_ctx, parent);
            self.deliver_to_watch(ctx, key.0, key.1.clone(), seq, state);
            self.delta_ctx = prev;
        } else {
            let t = self.trace_span(
                parent,
                me,
                ctx.now(),
                Phase::SubDelta,
                to.0,
                0,
                0,
                0,
                key.1.clone(),
            );
            ctx.send(
                to,
                MoaraMsg::SubDelta {
                    sid: key.0,
                    pred_key: key.1.clone(),
                    seq,
                    state,
                    trace: t,
                },
            );
            ctx.count("sub_deltas");
        }
    }

    /// Announces an entry upward once its initial sync is complete (all
    /// pinned children reported, or the init timeout cleared them).
    fn maybe_announce(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, key: &(SubId, PredKey)) {
        let ready = self
            .subs
            .get(key)
            .is_some_and(|e| !e.announced && e.pending_initial.is_empty());
        if !ready {
            return;
        }
        if let Some(t) = self.sub_init_timers.remove(key) {
            self.drop_timer(ctx, t);
        }
        self.subs.get_mut(key).expect("checked").announced = true;
        self.push_sub_delta(ctx, key);
    }

    /// A root's delta reaching the subscribing front-end.
    fn deliver_to_watch(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        sid: SubId,
        pred_key: PredKey,
        seq: u64,
        state: AggState,
    ) {
        let Some(&wid) = self.watch_of.get(&sid) else {
            ctx.count("sub_unknown_delta");
            return;
        };
        // Terminal span of a delta wave: the update reached its watch.
        let dctx = self.delta_ctx;
        self.trace_span(
            dctx,
            ctx.me(),
            ctx.now(),
            Phase::SubDelta,
            NO_PEER,
            0,
            0,
            0,
            format!("deliver {pred_key}"),
        );
        let Some(watch) = self.watches.get_mut(&wid) else {
            return;
        };
        if watch.note_root(&pred_key, seq, state).is_none() {
            return; // stale frame
        }
        watch.maybe_emit(ctx.now());
        if !watch.updates.is_empty() {
            self.dirty_watches.insert(wid);
        }
        if watch.initial_done() {
            if let Some(t) = self.watch_init_timers.remove(&wid) {
                self.drop_timer(ctx, t);
            }
        }
    }

    /// Install (or idempotent re-install) of a subscription at this node.
    /// `from` is the installing hop (None when routed here as tree root,
    /// in which case deltas go straight to the subscriber).
    fn handle_subscribe(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: Option<NodeId>,
        spec: SubSpec,
        pred_key: PredKey,
        tree: Id,
        seq: u64,
    ) {
        let me = ctx.me();
        let now = ctx.now();
        let push_to = from.unwrap_or(spec.owner);
        let key = (spec.id, pred_key.clone());
        let atom = find_atom(&spec.query, &pred_key);
        let targets = self.sub_targets(ctx, atom, &pred_key, tree, Some(seq));
        let is_new = !self.subs.contains_key(&key);
        if is_new {
            let mut entry = SubEntry::new(spec.clone(), pred_key.clone(), tree, push_to, now);
            entry.set_local(self.sub_contribution(me, &spec, &pred_key));
            self.subs.insert(key.clone(), entry);
            ctx.count("sub_installs");
            let tag = self.alloc_timer(TimerEvent::SubLease(spec.id, pred_key.clone()));
            ctx.set_maintenance_timer(spec.lease, tag);
        } else {
            let entry = self.subs.get_mut(&key).expect("checked");
            entry.renew(now);
            entry.push_to = push_to;
            // Whether this is a new parent adopting us or our old parent
            // re-pinning after churn, it may know nothing of our state:
            // the next push must carry the full replacement aggregate.
            entry.last_pushed = None;
            ctx.count("sub_reinstalls");
        }
        let entry = self.subs.get_mut(&key).expect("just inserted");
        let known: HashSet<NodeId> = entry
            .child_sources()
            .into_iter()
            .chain(entry.pending_initial.iter().copied())
            .collect();
        let missing: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|t| !known.contains(t))
            .collect();
        for c in &missing {
            if is_new {
                entry.pending_initial.insert(*c);
            }
            // Fresh install downstream restarts its delta sequence.
            entry.last_seen.insert(*c, 0);
        }
        for c in &missing {
            ctx.send(
                *c,
                MoaraMsg::Subscribe {
                    spec: spec.clone(),
                    pred_key: pred_key.clone(),
                    tree,
                    seq,
                },
            );
        }
        if is_new {
            let entry = self.subs.get(&key).expect("exists");
            if entry.pending_initial.is_empty() {
                self.maybe_announce(ctx, &key);
            } else if let Some(d) = self.cfg.child_timeout {
                let tag = self.alloc_timer(TimerEvent::SubInit(key.0, key.1.clone()));
                let t = ctx.set_timer(d, tag);
                self.sub_init_timers.insert(key.clone(), (t, tag));
            }
        } else if self.subs.get(&key).is_some_and(|e| e.announced) {
            // Re-announce the current subtree aggregate to the installer.
            self.push_sub_delta(ctx, &key);
        }
    }

    fn handle_sub_delta(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: NodeId,
        sid: SubId,
        pred_key: PredKey,
        seq: u64,
        state: AggState,
    ) {
        let key = (sid, pred_key.clone());
        let known_child = self
            .subs
            .get(&key)
            .is_some_and(|e| e.last_seen.contains_key(&from) || e.pending_initial.contains(&from));
        if known_child {
            let entry = self.subs.get_mut(&key).expect("checked");
            match entry.note_child(from, seq, state) {
                None => {} // stale frame
                Some(changed) => {
                    if !entry.announced {
                        self.maybe_announce(ctx, &key);
                    } else if changed {
                        self.push_sub_delta(ctx, &key);
                    } else {
                        ctx.count("sub_suppressed");
                    }
                }
            }
            return;
        }
        if sid.origin == ctx.me() {
            // Only the *current root* of one of the watch's pinned trees
            // may speak for that tree. Without this check, a re-homed
            // ex-child whose push target still points here (its delta
            // raced the reconcile that dropped it) would overwrite the
            // root's partial with one subtree's aggregate — and the
            // suppression logic would never correct it.
            let is_root = self
                .watch_of
                .get(&sid)
                .and_then(|wid| self.watches.get(wid))
                .and_then(|w| w.roots.iter().find(|(k, _)| *k == pred_key))
                .is_some_and(|(_, tree)| self.dir.owner_node(*tree) == from);
            if is_root {
                self.deliver_to_watch(ctx, sid, pred_key, seq, state);
                return;
            }
        }
        // A sender we no longer track (re-homed by churn, or our state
        // expired): ignore — leases and the next repair wave converge it.
        ctx.count("sub_unknown_delta");
    }

    fn handle_sub_renew(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: Option<NodeId>,
        sid: SubId,
        pred_key: PredKey,
        lease_us: u64,
        last_seen_seq: u64,
    ) {
        let key = (sid, pred_key.clone());
        let now = ctx.now();
        if !self.subs.contains_key(&key) {
            // We lost the state this renewal assumed (our lease lapsed
            // during a partition): bounce a SubCancel to whoever renewed
            // us — the parent hop, or the subscriber itself when the
            // renewal arrived routed (we are the tree root). A cancel
            // arriving from a child source means "re-install me"; one
            // arriving at the origin's watch triggers a full re-pin —
            // either way the gap closes without a new message type.
            let back = from.unwrap_or(sid.origin);
            if back != ctx.me() {
                ctx.send(back, MoaraMsg::SubCancel { sid, pred_key });
            }
            return;
        }
        let entry = self.subs.get_mut(&key).expect("checked");
        entry.spec.lease = SimDuration::from_micros(lease_us);
        entry.renew(now);
        ctx.count("sub_renews");
        // Anti-entropy: the renewing parent echoes the highest delta
        // sequence it saw from us; if ours is ahead, a replacement state
        // was lost on the wire (partition, drops) — re-push it.
        if entry.announced && last_seen_seq < entry.next_seq {
            entry.last_pushed = None;
            self.push_sub_delta(ctx, &key);
        }
        let entry = self.subs.get(&key).expect("exists");
        let downstream: Vec<(NodeId, u64)> = entry
            .child_sources()
            .into_iter()
            .chain(entry.pending_initial.iter().copied())
            .map(|c| (c, entry.last_seen.get(&c).copied().unwrap_or(0)))
            .collect();
        for (c, seen) in downstream {
            ctx.send(
                c,
                MoaraMsg::SubRenew {
                    sid,
                    pred_key: pred_key.clone(),
                    lease_us,
                    last_seen_seq: seen,
                },
            );
        }
    }

    fn handle_sub_cancel(
        &mut self,
        ctx: &mut dyn NetCtx<MoaraMsg>,
        from: Option<NodeId>,
        sid: SubId,
        pred_key: PredKey,
    ) {
        let key = (sid, pred_key.clone());
        // A cancel reaching the subscription's own origin is a repair
        // signal, never a teardown: some hop upstream (typically an
        // expired tree root answering our renewal) lost its state. The
        // watch re-pins its trees with a full install.
        if sid.origin == ctx.me() {
            if let Some(&wid) = self.watch_of.get(&sid) {
                self.repin_watch(ctx, wid);
                return;
            }
        }
        let Some(entry) = self.subs.get_mut(&key) else {
            return;
        };
        let from_child = from.is_some_and(|f| {
            entry.last_seen.contains_key(&f) || entry.pending_initial.contains(&f)
        });
        if from_child {
            // The child lost its state (lease lapse in a partition) and
            // is asking to be re-installed.
            let f = from.expect("checked");
            let changed = entry.drop_child(f);
            entry.last_seen.insert(f, 0);
            let msg = MoaraMsg::Subscribe {
                spec: entry.spec.clone(),
                pred_key: pred_key.clone(),
                tree: entry.tree,
                seq: 0,
            };
            ctx.send(f, msg);
            ctx.count("sub_reinstall_requests");
            if changed {
                self.push_sub_delta(ctx, &key);
            }
            return;
        }
        // Teardown from above (front-end cancel, routed or direct).
        let entry = self.subs.remove(&key).expect("checked");
        if let Some(t) = self.sub_init_timers.remove(&key) {
            self.drop_timer(ctx, t);
        }
        ctx.count("sub_cancels");
        for c in entry
            .child_sources()
            .into_iter()
            .chain(entry.pending_initial.iter().copied())
        {
            ctx.send(
                c,
                MoaraMsg::SubCancel {
                    sid,
                    pred_key: pred_key.clone(),
                },
            );
        }
    }

    /// Re-sends the full install along every pinned tree of a watch —
    /// the front-end's churn repair (new tree roots learn the
    /// subscription; surviving ones treat it as a renewal).
    fn repin_watch(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, wid: u64) {
        let Some(watch) = self.watches.get_mut(&wid) else {
            return;
        };
        let spec = watch.spec.clone();
        let roots = watch.roots.clone();
        for (k, _) in &roots {
            // A repaired root may restart its delta sequence.
            watch.reset_root_seq(k);
        }
        let outbound: Vec<(Id, MoaraMsg)> = roots
            .iter()
            .map(|(k, tree)| {
                (
                    *tree,
                    MoaraMsg::Subscribe {
                        spec: spec.clone(),
                        pred_key: k.clone(),
                        tree: *tree,
                        seq: 0,
                    },
                )
            })
            .collect();
        ctx.count("sub_repins");
        self.route_many(ctx, outbound);
    }

    /// Subscription upkeep after a local attribute change: recompute the
    /// local contribution of every hosted entry and push the deltas the
    /// change caused. This is the heart of the plane — group churn turns
    /// into O(changed paths) traffic instead of a per-poll re-query.
    fn subs_on_local_change(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>) {
        let me = ctx.me();
        let keys: Vec<(SubId, PredKey)> = self.subs.keys().cloned().collect();
        for key in keys {
            let contrib = {
                let entry = self.subs.get(&key).expect("exists");
                self.sub_contribution(me, &entry.spec, &key.1)
            };
            let entry = self.subs.get_mut(&key).expect("exists");
            if entry.set_local(contrib) && entry.announced {
                self.push_sub_delta(ctx, &key);
            }
        }
    }

    /// Subscription upkeep when a status update revealed group change
    /// under `pred_key`: the query targets may have moved — install to
    /// new ones, release vanished ones.
    fn subs_on_status(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, pred_key: &str) {
        let keys: Vec<(SubId, PredKey)> = self
            .subs
            .keys()
            .filter(|(_, k)| k == pred_key)
            .cloned()
            .collect();
        for key in keys {
            self.repair_entry_targets(ctx, &key);
        }
    }

    /// Diffs one entry's folded sources against the tree's current
    /// install targets: missing targets get a (re-)install, stale
    /// sources (ex-children after a reconfiguration) are dropped
    /// *silently* — the ex-child was re-homed and its state now belongs
    /// to a new parent; a cancel from us could tear down a healthy
    /// branch mid-adoption. Keeping its summary would double-count the
    /// moment the new parent's fold reports the same nodes.
    fn repair_entry_targets(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, key: &(SubId, PredKey)) {
        let (atom, tree) = {
            let entry = self.subs.get(key).expect("exists");
            (find_atom(&entry.spec.query, &key.1), entry.tree)
        };
        let targets = self.sub_targets(ctx, atom, &key.1, tree, None);
        let tset: HashSet<NodeId> = targets.iter().copied().collect();
        let entry = self.subs.get_mut(key).expect("exists");
        let known: Vec<NodeId> = entry
            .child_sources()
            .into_iter()
            .chain(entry.pending_initial.iter().copied())
            .chain(entry.last_seen.keys().copied())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        let mut changed = false;
        for s in &known {
            if !tset.contains(s) {
                changed |= entry.drop_child(*s);
            }
        }
        let known: HashSet<NodeId> = known.into_iter().filter(|s| tset.contains(s)).collect();
        let missing: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|t| !known.contains(t))
            .collect();
        for c in &missing {
            if !entry.announced {
                entry.pending_initial.insert(*c);
            }
            entry.last_seen.insert(*c, 0);
        }
        let spec = entry.spec.clone();
        for c in &missing {
            ctx.send(
                *c,
                MoaraMsg::Subscribe {
                    spec: spec.clone(),
                    pred_key: key.1.clone(),
                    tree,
                    seq: 0,
                },
            );
        }
        if self.subs.get(key).is_some_and(|e| e.announced) {
            if changed {
                self.push_sub_delta(ctx, key);
            }
        } else {
            // The diff may have dropped the last straggler this entry's
            // initial sync was waiting on.
            self.maybe_announce(ctx, key);
        }
    }

    /// Subscription repair after an overlay reconfiguration: re-home
    /// roles (a node promoted to tree root adopts the subscriber as its
    /// push target; a demoted ex-root drops its stale entry), re-diff
    /// targets everywhere, and re-pin every owned watch.
    fn subs_on_reconcile(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>) {
        let me = ctx.me();
        let keys: Vec<(SubId, PredKey)> = self.subs.keys().cloned().collect();
        for key in keys {
            let (tree, owner, push_to) = {
                let e = self.subs.get(&key).expect("exists");
                (e.tree, e.spec.owner, e.push_to)
            };
            let parent = self.dir.parent_of(tree, me);
            match parent {
                None => {
                    // We are (now) the root: deltas go to the subscriber.
                    let entry = self.subs.get_mut(&key).expect("exists");
                    if entry.push_to != owner {
                        entry.push_to = owner;
                        entry.last_pushed = None;
                    }
                }
                Some(_) if push_to == owner && me != owner => {
                    // Demoted ex-root: the subscriber now talks to the
                    // new root; our copy is stale topology. Drop it —
                    // the new install wave re-pins our subtree.
                    self.subs.remove(&key);
                    if let Some(t) = self.sub_init_timers.remove(&key) {
                        self.drop_timer(ctx, t);
                    }
                    ctx.count("sub_demotions");
                    continue;
                }
                Some(_) => {}
            }
            self.repair_entry_targets(ctx, &key);
        }
        // The origin repairs its pinned trees top-down: new roots learn
        // the subscription, surviving roots treat it as a renewal.
        let wids: Vec<u64> = self.watches.keys().copied().collect();
        for wid in wids {
            self.repin_watch(ctx, wid);
        }
    }
}

/// Finds the simple predicate with key `pred_key` inside the query's
/// composite predicate (sub-queries name their group by key).
fn find_atom(query: &Query, pred_key: &str) -> Option<SimplePredicate> {
    query
        .predicate
        .atoms()
        .into_iter()
        .find(|a| a.key() == pred_key)
        .cloned()
}

impl NetProtocol for MoaraNode {
    type Msg = MoaraMsg;

    fn on_message(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, from: NodeId, msg: MoaraMsg) {
        match msg {
            MoaraMsg::Route { key, inner } => self.route(ctx, key, *inner),
            MoaraMsg::QueryDown {
                qid,
                seq,
                pred_key,
                tree,
                query,
                reply_to,
                trace,
            } => self.handle_query_down(ctx, qid, seq, pred_key, tree, query, reply_to, trace),
            MoaraMsg::QueryReply {
                qid,
                pred_key,
                state,
                np,
                complete,
                trace: _,
            } => self.handle_query_reply(ctx, from, qid, pred_key, state, np, complete),
            MoaraMsg::Status {
                pred_key,
                pred,
                prune,
                update_set,
                np,
                last_seq,
            } => self.handle_status(ctx, from, pred_key, pred, prune, update_set, np, last_seq),
            MoaraMsg::SizeProbe {
                qid,
                pred_key,
                reply_to,
                trace,
            } => {
                // Only roots receive probes (via Route), but handle a
                // stray direct probe gracefully.
                self.answer_size_probe(ctx, qid, pred_key, reply_to, trace);
            }
            MoaraMsg::SizeReply {
                qid,
                pred_key,
                cost,
                trace: _,
            } => {
                self.handle_size_reply(ctx, qid, pred_key, cost);
            }
            MoaraMsg::Batch { items } => {
                // Unpack: each item behaves as if it had arrived alone.
                // Route items are collected and re-forwarded together so
                // they re-coalesce for their next shared hop.
                let mut routed: Vec<(Id, MoaraMsg)> = Vec::new();
                for item in items {
                    match item {
                        MoaraMsg::Route { key, inner } => routed.push((key, *inner)),
                        other => self.on_message(ctx, from, other),
                    }
                }
                self.route_many(ctx, routed);
            }
            MoaraMsg::Subscribe {
                spec,
                pred_key,
                tree,
                seq,
            } => self.handle_subscribe(ctx, Some(from), spec, pred_key, tree, seq),
            MoaraMsg::SubDelta {
                sid,
                pred_key,
                seq,
                state,
                trace,
            } => {
                // Implicit causal slot: any push (or watch delivery) this
                // delta triggers while it is being folded chains to it.
                self.delta_ctx = trace;
                self.handle_sub_delta(ctx, from, sid, pred_key, seq, state);
                self.delta_ctx = None;
            }
            MoaraMsg::SubRenew {
                sid,
                pred_key,
                lease_us,
                last_seen_seq,
            } => self.handle_sub_renew(ctx, Some(from), sid, pred_key, lease_us, last_seen_seq),
            MoaraMsg::SubCancel { sid, pred_key } => {
                self.handle_sub_cancel(ctx, Some(from), sid, pred_key);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<MoaraMsg>, tag: TimerTag) {
        match self.timers.remove(&tag) {
            Some(TimerEvent::Session(qid, pred_key)) => {
                let skey = (qid, pred_key);
                if let Some(sess) = self.sessions.get_mut(&skey) {
                    if !sess.pending.is_empty() {
                        sess.complete = false;
                    }
                    sess.timer = None;
                    self.finalize_session(ctx, &skey);
                }
            }
            Some(TimerEvent::Probe(front_id)) => {
                let probing = self
                    .fronts
                    .get(&front_id)
                    .is_some_and(|f| matches!(f.phase, FrontPhase::Probing));
                if probing {
                    // This timer just fired; forget the handle so the
                    // dispatch path doesn't "cancel" it (the simulator's
                    // cancelled set would keep the id forever).
                    self.fronts.get_mut(&front_id).expect("probing").timer = None;
                    // Withdraw this front's probe interests: keys whose
                    // probe now has no waiters are forgotten so the next
                    // query re-probes instead of coalescing onto a probe
                    // that may be lost.
                    self.sched.forget_front(front_id);
                    // Missing costs fall back to worst case in dispatch.
                    self.dispatch_front(ctx, front_id);
                }
            }
            Some(TimerEvent::Front(front_id)) => {
                if let Some(front) = self.fronts.get_mut(&front_id) {
                    front.complete = false;
                    front.sub_pending.clear();
                    front.timer = None; // just fired; nothing to cancel
                    self.finish_front(ctx, front_id);
                }
            }
            Some(TimerEvent::SubLease(sid, pred_key)) => {
                let key = (sid, pred_key);
                let now = ctx.now();
                match self.subs.get(&key) {
                    Some(entry) if entry.expired(now) => {
                        self.subs.remove(&key);
                        if let Some(t) = self.sub_init_timers.remove(&key) {
                            self.drop_timer(ctx, t);
                        }
                        ctx.count("sub_expired");
                    }
                    Some(entry) => {
                        // Renewed since armed: sleep until the deadline.
                        let left = entry.deadline.duration_since(now);
                        let tag = self.alloc_timer(TimerEvent::SubLease(key.0, key.1.clone()));
                        ctx.set_maintenance_timer(left, tag);
                    }
                    None => {}
                }
            }
            Some(TimerEvent::SubInit(sid, pred_key)) => {
                let key = (sid, pred_key);
                self.sub_init_timers.remove(&key);
                if let Some(entry) = self.subs.get_mut(&key) {
                    if !entry.announced {
                        // Announce with what arrived; the stragglers'
                        // deltas merge in as they land.
                        entry.pending_initial.clear();
                        self.maybe_announce(ctx, &key);
                    }
                }
            }
            Some(TimerEvent::WatchRenew(wid)) => {
                // Renewals are deliberately lightweight (SubRenew, not a
                // full re-install): topology churn already re-pins via
                // reconcile, and the piggybacked last-seen sequences give
                // renewal its anti-entropy teeth.
                if let Some(watch) = self.watches.get(&wid) {
                    let lease = watch.spec.lease;
                    let sid = watch.spec.id;
                    let renews: Vec<(Id, MoaraMsg)> = watch
                        .roots
                        .iter()
                        .map(|(k, tree)| {
                            (
                                *tree,
                                MoaraMsg::SubRenew {
                                    sid,
                                    pred_key: k.clone(),
                                    lease_us: lease.as_micros(),
                                    last_seen_seq: watch.last_seen.get(k).copied().unwrap_or(0),
                                },
                            )
                        })
                        .collect();
                    self.route_many(ctx, renews);
                    let half = SimDuration::from_micros((lease.as_micros() / 2).max(1));
                    let tag = self.alloc_timer(TimerEvent::WatchRenew(wid));
                    ctx.set_maintenance_timer(half, tag);
                }
            }
            Some(TimerEvent::WatchTick(wid)) => {
                if let Some(watch) = self.watches.get_mut(&wid) {
                    if watch.last_result.is_some() {
                        watch.emit_snapshot(ctx.now());
                    }
                    if !watch.updates.is_empty() {
                        self.dirty_watches.insert(wid);
                    }
                    if let DeliveryPolicy::Periodic(period) = watch.spec.policy {
                        let tag = self.alloc_timer(TimerEvent::WatchTick(wid));
                        ctx.set_maintenance_timer(period, tag);
                    }
                }
            }
            Some(TimerEvent::WatchInit(wid)) => {
                self.watch_init_timers.remove(&wid);
                if let Some(watch) = self.watches.get_mut(&wid) {
                    watch.force_initial(ctx.now());
                    if !watch.updates.is_empty() {
                        self.dirty_watches.insert(wid);
                    }
                }
            }
            None => {}
        }
    }
}

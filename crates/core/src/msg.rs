//! Moara's wire messages.

use moara_aggregation::AggState;
use moara_dht::Id;
use moara_query::Query;
use moara_simnet::{Message, NodeId};

/// Identifies one end-to-end query issued by a front-end: (origin node,
/// per-origin counter). Used for duplicate answer suppression when a node
/// sits in several trees of the same cover (paper Section 6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId {
    /// The front-end node that issued the query.
    pub origin: NodeId,
    /// Its per-origin sequence number.
    pub n: u64,
}

/// Canonical key of a simple predicate ("CPU-Util<50"), or `*` for the
/// global (whole-system) tree, which keeps no pruning state.
pub type PredKey = String;

/// The predicate key designating the global tree.
pub const GLOBAL_PRED: &str = "*";

/// A wire message of the Moara protocol.
#[derive(Clone, Debug)]
pub enum MoaraMsg {
    /// Overlay routing envelope: forwarded hop-by-hop toward the owner of
    /// `key`, which then handles `inner`. This is how sub-queries and size
    /// probes reach tree roots.
    Route {
        /// Routing destination key (hashed group attribute).
        key: Id,
        /// The payload delivered at the root.
        inner: Box<MoaraMsg>,
    },
    /// A query traveling down an aggregation tree (or across the separate
    /// query plane).
    QueryDown {
        /// End-to-end query id (for duplicate suppression).
        qid: QueryId,
        /// Root-assigned per-tree sequence number (0 until root assigns).
        seq: u64,
        /// Which tree this sub-query runs on.
        pred_key: PredKey,
        /// The tree's routing key.
        tree: Id,
        /// The full query (nodes evaluate the *entire* composite
        /// predicate, per Section 7.2).
        query: Query,
        /// Where the receiver should send its aggregated reply.
        reply_to: NodeId,
    },
    /// A (partial) aggregate flowing back up.
    QueryReply {
        /// Matching query id.
        qid: QueryId,
        /// Matching tree.
        pred_key: PredKey,
        /// Merged partial aggregate of the replier's region.
        state: AggState,
        /// The replier's current NO-PRUNE subtree count (lazy cost info,
        /// piggybacked per Section 6.3).
        np: u64,
        /// False if some branch timed out or failed below the replier.
        complete: bool,
    },
    /// PRUNE / NO-PRUNE status update to a tree parent (Sections 4 and 5).
    Status {
        /// Which predicate tree this concerns.
        pred_key: PredKey,
        /// The predicate definition (a new parent may not know it yet).
        pred: moara_query::SimplePredicate,
        /// True = PRUNE (empty `update_set`), false = NO-PRUNE.
        prune: bool,
        /// The sender's updateSet (separate query plane, Section 5).
        update_set: Vec<NodeId>,
        /// The sender's NO-PRUNE subtree count (lazy cost aggregation).
        np: u64,
        /// The sender's last-seen query sequence number (lets bypassed
        /// ancestors account missed queries, Section 5).
        last_seq: u64,
    },
    /// Front-end request for a tree's current query-cost estimate.
    SizeProbe {
        /// Predicate tree being probed.
        pred_key: PredKey,
        /// Who to answer.
        reply_to: NodeId,
    },
    /// Root's answer to a [`MoaraMsg::SizeProbe`].
    SizeReply {
        /// Probed predicate tree.
        pred_key: PredKey,
        /// Estimated messages to query this tree once (`2 × np`).
        cost: u64,
    },
}

impl Message for MoaraMsg {
    fn size_bytes(&self) -> usize {
        const HDR: usize = 28; // ids, type tag, transport framing
        match self {
            MoaraMsg::Route { inner, .. } => 12 + inner.size_bytes(),
            MoaraMsg::QueryDown { pred_key, query, .. } => {
                HDR + pred_key.len() + 24 + query.to_string().len()
            }
            MoaraMsg::QueryReply { pred_key, state, .. } => {
                HDR + pred_key.len() + state.wire_size() + 9
            }
            MoaraMsg::Status {
                pred_key,
                update_set,
                ..
            } => HDR + 2 * pred_key.len() + update_set.len() * 6 + 17,
            MoaraMsg::SizeProbe { pred_key, .. } => HDR + pred_key.len(),
            MoaraMsg::SizeReply { pred_key, .. } => HDR + pred_key.len() + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_aggregation::AggKind;
    use moara_query::Predicate;

    #[test]
    fn sizes_scale_with_payload() {
        let q = Query::new(None, AggKind::Count, Predicate::All);
        let down = MoaraMsg::QueryDown {
            qid: QueryId {
                origin: NodeId(0),
                n: 1,
            },
            seq: 0,
            pred_key: "A=true".into(),
            tree: Id(0),
            query: q,
            reply_to: NodeId(0),
        };
        let routed = MoaraMsg::Route {
            key: Id(1),
            inner: Box::new(down.clone()),
        };
        assert!(routed.size_bytes() > down.size_bytes());

        let small = MoaraMsg::Status {
            pred_key: "A=true".into(),
            pred: moara_query::SimplePredicate::new("A", moara_query::CmpOp::Eq, true),
            prune: true,
            update_set: vec![],
            np: 0,
            last_seq: 0,
        };
        let big = MoaraMsg::Status {
            pred_key: "A=true".into(),
            pred: moara_query::SimplePredicate::new("A", moara_query::CmpOp::Eq, true),
            prune: false,
            update_set: (0..10).map(NodeId).collect(),
            np: 10,
            last_seq: 0,
        };
        assert!(big.size_bytes() > small.size_bytes());
    }
}

//! Moara's wire messages.

use moara_aggregation::AggState;
use moara_dht::Id;
use moara_query::Query;
use moara_simnet::{Message, NodeId};
use moara_subscribe::{SubId, SubSpec};
use moara_trace::TraceCtx;
use moara_wire::{Wire, WireError};

/// Identifies one end-to-end query issued by a front-end: (origin node,
/// per-origin counter). Used for duplicate answer suppression when a node
/// sits in several trees of the same cover (paper Section 6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId {
    /// The front-end node that issued the query.
    pub origin: NodeId,
    /// Its per-origin sequence number.
    pub n: u64,
}

/// Canonical key of a simple predicate ("CPU-Util<50"), or `*` for the
/// global (whole-system) tree, which keeps no pruning state.
pub type PredKey = String;

/// The predicate key designating the global tree.
pub const GLOBAL_PRED: &str = "*";

/// A wire message of the Moara protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum MoaraMsg {
    /// Overlay routing envelope: forwarded hop-by-hop toward the owner of
    /// `key`, which then handles `inner`. This is how sub-queries and size
    /// probes reach tree roots.
    Route {
        /// Routing destination key (hashed group attribute).
        key: Id,
        /// The payload delivered at the root.
        inner: Box<MoaraMsg>,
    },
    /// A query traveling down an aggregation tree (or across the separate
    /// query plane).
    QueryDown {
        /// End-to-end query id (for duplicate suppression).
        qid: QueryId,
        /// Root-assigned per-tree sequence number (0 until root assigns).
        seq: u64,
        /// Which tree this sub-query runs on.
        pred_key: PredKey,
        /// The tree's routing key.
        tree: Id,
        /// The full query (nodes evaluate the *entire* composite
        /// predicate, per Section 7.2).
        query: Query,
        /// Where the receiver should send its aggregated reply.
        reply_to: NodeId,
        /// Tracing context: the sender-side span that forwarded this
        /// sub-query (absent when the query is unsampled).
        trace: Option<TraceCtx>,
    },
    /// A (partial) aggregate flowing back up.
    QueryReply {
        /// Matching query id.
        qid: QueryId,
        /// Matching tree.
        pred_key: PredKey,
        /// Merged partial aggregate of the replier's region.
        state: AggState,
        /// The replier's current NO-PRUNE subtree count (lazy cost info,
        /// piggybacked per Section 6.3).
        np: u64,
        /// False if some branch timed out or failed below the replier.
        complete: bool,
        /// Tracing context: the replier's fold span.
        trace: Option<TraceCtx>,
    },
    /// PRUNE / NO-PRUNE status update to a tree parent (Sections 4 and 5).
    Status {
        /// Which predicate tree this concerns.
        pred_key: PredKey,
        /// The predicate definition (a new parent may not know it yet).
        pred: moara_query::SimplePredicate,
        /// True = PRUNE (empty `update_set`), false = NO-PRUNE.
        prune: bool,
        /// The sender's updateSet (separate query plane, Section 5).
        update_set: Vec<NodeId>,
        /// The sender's NO-PRUNE subtree count (lazy cost aggregation).
        np: u64,
        /// The sender's last-seen query sequence number (lets bypassed
        /// ancestors account missed queries, Section 5).
        last_seq: u64,
    },
    /// Front-end request for a tree's current query-cost estimate.
    SizeProbe {
        /// The query on whose behalf the probe was issued (per-query
        /// message accounting; a cached/coalesced reply may end up
        /// serving other queries too).
        qid: QueryId,
        /// Predicate tree being probed.
        pred_key: PredKey,
        /// Who to answer.
        reply_to: NodeId,
        /// Tracing context: the front-end's probe span.
        trace: Option<TraceCtx>,
    },
    /// Root's answer to a [`MoaraMsg::SizeProbe`].
    SizeReply {
        /// Echo of the probe's query id.
        qid: QueryId,
        /// Probed predicate tree.
        pred_key: PredKey,
        /// Estimated messages to query this tree once (`2 × np`).
        cost: u64,
        /// Tracing context: the root's probe-answer span.
        trace: Option<TraceCtx>,
    },
    /// Several messages coalesced into one frame because they leave the
    /// same node toward the same next hop (the scheduler's batched
    /// fan-out: sub-queries and probes of one composite query often share
    /// overlay path prefixes). Each item is processed as if it had
    /// arrived alone; `Route` items are re-grouped — and re-batched — at
    /// every hop.
    Batch {
        /// The coalesced messages, in send order.
        items: Vec<MoaraMsg>,
    },
    /// Installs (or idempotently re-installs) a standing subscription on
    /// one tree of its pinned cover. Travels `Route`d from the front-end
    /// to the tree root, then down the tree like a query; every hop pins
    /// a `SubEntry`, re-homes its delta push target to the sender, and
    /// forwards the install to its own targets. Re-sent on renewal after
    /// churn and during repair — receivers treat it as an upsert.
    Subscribe {
        /// The full install payload (query, policy, lease, cover).
        spec: SubSpec,
        /// Which tree of the cover this install is for.
        pred_key: PredKey,
        /// The tree's routing key.
        tree: Id,
        /// Root-assigned per-tree sequence number (0 until stamped).
        /// Installs count as queries for the Section 4 adaptation
        /// machinery, so the tree prunes around the standing query and
        /// later installs/renewals touch only the group.
        seq: u64,
    },
    /// A replacement delta: the sender's subtree now aggregates to
    /// `state` on this subscription's tree. Flows one hop upward (or
    /// root → front-end); sent only when the sender's merge changed.
    SubDelta {
        /// The subscription.
        sid: SubId,
        /// Which tree of the cover.
        pred_key: PredKey,
        /// Per-sender monotone sequence number (stale frames drop).
        seq: u64,
        /// The sender's new subtree partial aggregate.
        state: AggState,
        /// Tracing context: the sender's push span (a fresh trace at the
        /// delta's origin, continued hop by hop toward the front-end).
        trace: Option<TraceCtx>,
    },
    /// Lease renewal, traveling the same path as the install. Carries the
    /// forwarding hop's highest-seen delta sequence for the receiver, so
    /// a child whose deltas were lost (partition, drops) re-pushes its
    /// current state — renewal doubles as anti-entropy.
    SubRenew {
        /// The subscription.
        sid: SubId,
        /// Which tree of the cover.
        pred_key: PredKey,
        /// New lease duration in microseconds.
        lease_us: u64,
        /// The sender's highest-seen delta sequence from the receiver
        /// (0 from the front-end toward the root's parent-less hop).
        last_seen_seq: u64,
    },
    /// Tears a subscription down along a tree (explicit unsubscribe), or
    /// — when sent *upward* by a node that received traffic for a
    /// subscription it no longer knows — asks the parent to re-install.
    SubCancel {
        /// The subscription.
        sid: SubId,
        /// Which tree of the cover.
        pred_key: PredKey,
    },
}

impl MoaraMsg {
    /// The end-to-end query this message belongs to, if any. `Status` is
    /// maintenance traffic and belongs to none; a batch has a query only
    /// when every item agrees on it.
    pub fn query_id(&self) -> Option<QueryId> {
        match self {
            MoaraMsg::Route { inner, .. } => inner.query_id(),
            MoaraMsg::QueryDown { qid, .. }
            | MoaraMsg::QueryReply { qid, .. }
            | MoaraMsg::SizeProbe { qid, .. }
            | MoaraMsg::SizeReply { qid, .. } => Some(*qid),
            // Subscription traffic is standing state, not an in-flight
            // query; like Status it is maintenance for accounting.
            MoaraMsg::Status { .. }
            | MoaraMsg::Subscribe { .. }
            | MoaraMsg::SubDelta { .. }
            | MoaraMsg::SubRenew { .. }
            | MoaraMsg::SubCancel { .. } => None,
            MoaraMsg::Batch { items } => {
                let mut tags = items.iter().map(MoaraMsg::query_id);
                let first = tags.next()??;
                tags.all(|t| t == Some(first)).then_some(first)
            }
        }
    }
}

impl QueryId {
    /// Packs the id into the opaque `u64` used for per-query message
    /// accounting (origin in the high 32 bits, the per-origin counter's
    /// low 32 bits below — unique until one origin issues 2³² queries).
    pub fn tag(&self) -> u64 {
        (u64::from(self.origin.0) << 32) | (self.n & 0xffff_ffff)
    }
}

impl Wire for QueryId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.n.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(QueryId {
            origin: Wire::decode(buf)?,
            n: Wire::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        12
    }
}

/// Deepest `Route`-in-`Route` nesting accepted by the decoder. Overlay
/// routes are at most O(log n) hops, so legitimate nesting is single
/// digits; the cap turns a crafted deeply-nested frame (which would
/// otherwise recurse the decoder into a stack overflow) into a normal
/// [`WireError`].
pub const MAX_ROUTE_DEPTH: usize = 64;

/// Depth-tracking decode: frames arrive from untrusted peer sockets, so
/// recursion through `Route` must be bounded.
fn decode_at(buf: &mut &[u8], depth: usize) -> Result<MoaraMsg, WireError> {
    Ok(match u8::decode(buf)? {
        0 => {
            if depth >= MAX_ROUTE_DEPTH {
                return Err(WireError::Invalid("Route nesting too deep"));
            }
            MoaraMsg::Route {
                key: Wire::decode(buf)?,
                inner: Box::new(decode_at(buf, depth + 1)?),
            }
        }
        1 => MoaraMsg::QueryDown {
            qid: Wire::decode(buf)?,
            seq: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            tree: Wire::decode(buf)?,
            query: Wire::decode(buf)?,
            reply_to: Wire::decode(buf)?,
            trace: Wire::decode(buf)?,
        },
        2 => MoaraMsg::QueryReply {
            qid: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            state: Wire::decode(buf)?,
            np: Wire::decode(buf)?,
            complete: Wire::decode(buf)?,
            trace: Wire::decode(buf)?,
        },
        3 => MoaraMsg::Status {
            pred_key: Wire::decode(buf)?,
            pred: Wire::decode(buf)?,
            prune: Wire::decode(buf)?,
            update_set: Wire::decode(buf)?,
            np: Wire::decode(buf)?,
            last_seq: Wire::decode(buf)?,
        },
        4 => MoaraMsg::SizeProbe {
            qid: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            reply_to: Wire::decode(buf)?,
            trace: Wire::decode(buf)?,
        },
        5 => MoaraMsg::SizeReply {
            qid: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            cost: Wire::decode(buf)?,
            trace: Wire::decode(buf)?,
        },
        6 => {
            // Batches share the Route depth budget: the engine never
            // nests them, so a deeply nested crafted frame is invalid.
            if depth >= MAX_ROUTE_DEPTH {
                return Err(WireError::Invalid("Batch nesting too deep"));
            }
            let n = u32::decode(buf)? as usize;
            // Cap the pre-allocation: `n` is attacker-controlled.
            let mut items = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                items.push(decode_at(buf, depth + 1)?);
            }
            MoaraMsg::Batch { items }
        }
        7 => MoaraMsg::Subscribe {
            spec: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            tree: Wire::decode(buf)?,
            seq: Wire::decode(buf)?,
        },
        8 => MoaraMsg::SubDelta {
            sid: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            seq: Wire::decode(buf)?,
            state: Wire::decode(buf)?,
            trace: Wire::decode(buf)?,
        },
        9 => MoaraMsg::SubRenew {
            sid: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
            lease_us: Wire::decode(buf)?,
            last_seen_seq: Wire::decode(buf)?,
        },
        10 => MoaraMsg::SubCancel {
            sid: Wire::decode(buf)?,
            pred_key: Wire::decode(buf)?,
        },
        _ => return Err(WireError::Invalid("MoaraMsg tag")),
    })
}

impl Wire for MoaraMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MoaraMsg::Route { key, inner } => {
                out.push(0);
                key.encode(out);
                inner.encode(out);
            }
            MoaraMsg::QueryDown {
                qid,
                seq,
                pred_key,
                tree,
                query,
                reply_to,
                trace,
            } => {
                out.push(1);
                qid.encode(out);
                seq.encode(out);
                pred_key.encode(out);
                tree.encode(out);
                query.encode(out);
                reply_to.encode(out);
                trace.encode(out);
            }
            MoaraMsg::QueryReply {
                qid,
                pred_key,
                state,
                np,
                complete,
                trace,
            } => {
                out.push(2);
                qid.encode(out);
                pred_key.encode(out);
                state.encode(out);
                np.encode(out);
                complete.encode(out);
                trace.encode(out);
            }
            MoaraMsg::Status {
                pred_key,
                pred,
                prune,
                update_set,
                np,
                last_seq,
            } => {
                out.push(3);
                pred_key.encode(out);
                pred.encode(out);
                prune.encode(out);
                update_set.encode(out);
                np.encode(out);
                last_seq.encode(out);
            }
            MoaraMsg::SizeProbe {
                qid,
                pred_key,
                reply_to,
                trace,
            } => {
                out.push(4);
                qid.encode(out);
                pred_key.encode(out);
                reply_to.encode(out);
                trace.encode(out);
            }
            MoaraMsg::SizeReply {
                qid,
                pred_key,
                cost,
                trace,
            } => {
                out.push(5);
                qid.encode(out);
                pred_key.encode(out);
                cost.encode(out);
                trace.encode(out);
            }
            MoaraMsg::Batch { items } => {
                out.push(6);
                (items.len() as u32).encode(out);
                for item in items {
                    item.encode(out);
                }
            }
            MoaraMsg::Subscribe {
                spec,
                pred_key,
                tree,
                seq,
            } => {
                out.push(7);
                spec.encode(out);
                pred_key.encode(out);
                tree.encode(out);
                seq.encode(out);
            }
            MoaraMsg::SubDelta {
                sid,
                pred_key,
                seq,
                state,
                trace,
            } => {
                out.push(8);
                sid.encode(out);
                pred_key.encode(out);
                seq.encode(out);
                state.encode(out);
                trace.encode(out);
            }
            MoaraMsg::SubRenew {
                sid,
                pred_key,
                lease_us,
                last_seen_seq,
            } => {
                out.push(9);
                sid.encode(out);
                pred_key.encode(out);
                lease_us.encode(out);
                last_seen_seq.encode(out);
            }
            MoaraMsg::SubCancel { sid, pred_key } => {
                out.push(10);
                sid.encode(out);
                pred_key.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        decode_at(buf, 0)
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            MoaraMsg::Route { key, inner } => key.encoded_len() + inner.encoded_len(),
            MoaraMsg::QueryDown {
                qid,
                seq,
                pred_key,
                tree,
                query,
                reply_to,
                trace,
            } => {
                qid.encoded_len()
                    + seq.encoded_len()
                    + pred_key.encoded_len()
                    + tree.encoded_len()
                    + query.encoded_len()
                    + reply_to.encoded_len()
                    + trace.encoded_len()
            }
            MoaraMsg::QueryReply {
                qid,
                pred_key,
                state,
                np,
                complete,
                trace,
            } => {
                qid.encoded_len()
                    + pred_key.encoded_len()
                    + state.encoded_len()
                    + np.encoded_len()
                    + complete.encoded_len()
                    + trace.encoded_len()
            }
            MoaraMsg::Status {
                pred_key,
                pred,
                prune,
                update_set,
                np,
                last_seq,
            } => {
                pred_key.encoded_len()
                    + pred.encoded_len()
                    + prune.encoded_len()
                    + update_set.encoded_len()
                    + np.encoded_len()
                    + last_seq.encoded_len()
            }
            MoaraMsg::SizeProbe {
                qid,
                pred_key,
                reply_to,
                trace,
            } => {
                qid.encoded_len()
                    + pred_key.encoded_len()
                    + reply_to.encoded_len()
                    + trace.encoded_len()
            }
            MoaraMsg::SizeReply {
                qid,
                pred_key,
                cost,
                trace,
            } => {
                qid.encoded_len()
                    + pred_key.encoded_len()
                    + cost.encoded_len()
                    + trace.encoded_len()
            }
            MoaraMsg::Batch { items } => 4 + items.iter().map(Wire::encoded_len).sum::<usize>(),
            MoaraMsg::Subscribe {
                spec,
                pred_key,
                tree,
                ..
            } => spec.encoded_len() + pred_key.encoded_len() + tree.encoded_len() + 8,
            MoaraMsg::SubDelta {
                sid,
                pred_key,
                seq,
                state,
                trace,
            } => {
                sid.encoded_len()
                    + pred_key.encoded_len()
                    + seq.encoded_len()
                    + state.encoded_len()
                    + trace.encoded_len()
            }
            MoaraMsg::SubRenew { sid, pred_key, .. } => {
                sid.encoded_len() + pred_key.encoded_len() + 16
            }
            MoaraMsg::SubCancel { sid, pred_key } => sid.encoded_len() + pred_key.encoded_len(),
        }
    }
}

impl Message for MoaraMsg {
    /// Exact framed size on the TCP transport: length prefix, sender id,
    /// encoded payload. Earlier revisions estimated sizes per variant
    /// (and under-counted `Route`, which added 12 bytes and skipped the
    /// header entirely); tying the figure to the codec keeps the
    /// simulator's bandwidth numbers equal to what `TcpTransport`
    /// actually puts on the socket, byte for byte.
    fn size_bytes(&self) -> usize {
        moara_wire::peer_framed_len(self)
    }

    fn query_tag(&self) -> Option<u64> {
        self.query_id().map(|q| q.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_aggregation::AggKind;
    use moara_query::Predicate;

    #[test]
    fn sizes_scale_with_payload() {
        let q = Query::new(None, AggKind::Count, Predicate::All);
        let down = MoaraMsg::QueryDown {
            qid: QueryId {
                origin: NodeId(0),
                n: 1,
            },
            seq: 0,
            pred_key: "A=true".into(),
            tree: Id(0),
            query: q,
            reply_to: NodeId(0),
            trace: None,
        };
        let routed = MoaraMsg::Route {
            key: Id(1),
            inner: Box::new(down.clone()),
        };
        assert!(routed.size_bytes() > down.size_bytes());

        let small = MoaraMsg::Status {
            pred_key: "A=true".into(),
            pred: moara_query::SimplePredicate::new("A", moara_query::CmpOp::Eq, true),
            prune: true,
            update_set: vec![],
            np: 0,
            last_seq: 0,
        };
        let big = MoaraMsg::Status {
            pred_key: "A=true".into(),
            pred: moara_query::SimplePredicate::new("A", moara_query::CmpOp::Eq, true),
            prune: false,
            update_set: (0..10).map(NodeId).collect(),
            np: 10,
            last_seq: 0,
        };
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn size_bytes_is_the_exact_framed_wire_size() {
        let probe_qid = QueryId {
            origin: NodeId(3),
            n: 9,
        };
        let msg = MoaraMsg::Route {
            key: Id(7),
            inner: Box::new(MoaraMsg::SizeProbe {
                qid: probe_qid,
                pred_key: "CPU-Util<50".into(),
                reply_to: NodeId(3),
                trace: None,
            }),
        };
        let payload = msg.to_bytes();
        assert_eq!(
            msg.size_bytes(),
            payload.len() + moara_wire::FRAME_HDR + moara_wire::SENDER_HDR
        );
        // Route framing overhead over its payload: tag (1) + key (8), plus
        // the frame header the inner message no longer pays twice.
        let inner = MoaraMsg::SizeProbe {
            qid: probe_qid,
            pred_key: "CPU-Util<50".into(),
            reply_to: NodeId(3),
            trace: None,
        };
        assert_eq!(msg.encoded_len(), 1 + 8 + inner.encoded_len());
    }

    #[test]
    fn batch_roundtrips_and_tags_uniform_queries_only() {
        let qid = QueryId {
            origin: NodeId(2),
            n: 5,
        };
        let other = QueryId {
            origin: NodeId(2),
            n: 6,
        };
        let probe = |q: QueryId, key: &str| MoaraMsg::Route {
            key: Id(1),
            inner: Box::new(MoaraMsg::SizeProbe {
                qid: q,
                pred_key: key.into(),
                reply_to: NodeId(2),
                trace: None,
            }),
        };
        let uniform = MoaraMsg::Batch {
            items: vec![probe(qid, "A=1"), probe(qid, "B=1")],
        };
        assert_eq!(MoaraMsg::from_bytes(&uniform.to_bytes()).unwrap(), uniform);
        assert_eq!(uniform.query_id(), Some(qid));
        assert_eq!(uniform.query_tag(), Some(qid.tag()));

        // A batch carrying two queries' messages is one wire message and
        // belongs to neither for per-query accounting.
        let mixed = MoaraMsg::Batch {
            items: vec![probe(qid, "A=1"), probe(other, "B=1")],
        };
        assert_eq!(MoaraMsg::from_bytes(&mixed.to_bytes()).unwrap(), mixed);
        assert_eq!(mixed.query_id(), None);

        // Status is maintenance traffic, never query-attributed.
        let status = MoaraMsg::Status {
            pred_key: "A=true".into(),
            pred: moara_query::SimplePredicate::new("A", moara_query::CmpOp::Eq, true),
            prune: true,
            update_set: vec![],
            np: 0,
            last_seq: 0,
        };
        assert_eq!(status.query_id(), None);

        // An empty batch is legal on the wire and unattributed.
        let empty = MoaraMsg::Batch { items: vec![] };
        assert_eq!(MoaraMsg::from_bytes(&empty.to_bytes()).unwrap(), empty);
        assert_eq!(empty.query_id(), None);
    }

    #[test]
    fn traced_variants_roundtrip_and_survive_truncation() {
        let qid = QueryId {
            origin: NodeId(1),
            n: 4,
        };
        let ctx = TraceCtx {
            trace_id: qid.tag(),
            span_id: 0x2_0000_0001,
            parent_span_id: 0x1_0000_0000,
            flags: moara_trace::FLAG_SAMPLED,
        };
        let q = Query::new(None, AggKind::Count, Predicate::All);
        let traced: Vec<MoaraMsg> = vec![
            MoaraMsg::QueryDown {
                qid,
                seq: 3,
                pred_key: "A=true".into(),
                tree: Id(9),
                query: q,
                reply_to: NodeId(1),
                trace: Some(ctx),
            },
            MoaraMsg::QueryReply {
                qid,
                pred_key: "A=true".into(),
                state: AggState::Count(2),
                np: 1,
                complete: true,
                trace: Some(ctx),
            },
            MoaraMsg::SizeProbe {
                qid,
                pred_key: "A=true".into(),
                reply_to: NodeId(1),
                trace: Some(ctx),
            },
            MoaraMsg::SizeReply {
                qid,
                pred_key: "A=true".into(),
                cost: 8,
                trace: Some(ctx),
            },
            MoaraMsg::SubDelta {
                sid: SubId {
                    origin: NodeId(1),
                    n: 2,
                },
                pred_key: "A=true".into(),
                seq: 5,
                state: AggState::Count(1),
                trace: Some(ctx),
            },
        ];
        for msg in traced {
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), msg.encoded_len(), "{msg:?}");
            assert_eq!(MoaraMsg::from_bytes(&bytes).unwrap(), msg);
            // Every truncated prefix errors instead of panicking (frames
            // arrive from untrusted sockets).
            for cut in 0..bytes.len() {
                assert!(MoaraMsg::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
            }
            // A present context costs exactly its 25 bytes over absent.
            let untraced = match MoaraMsg::from_bytes(&bytes).unwrap() {
                MoaraMsg::QueryDown {
                    trace: _,
                    qid,
                    seq,
                    pred_key,
                    tree,
                    query,
                    reply_to,
                } => MoaraMsg::QueryDown {
                    trace: None,
                    qid,
                    seq,
                    pred_key,
                    tree,
                    query,
                    reply_to,
                },
                MoaraMsg::QueryReply {
                    trace: _,
                    qid,
                    pred_key,
                    state,
                    np,
                    complete,
                } => MoaraMsg::QueryReply {
                    trace: None,
                    qid,
                    pred_key,
                    state,
                    np,
                    complete,
                },
                MoaraMsg::SizeProbe {
                    trace: _,
                    qid,
                    pred_key,
                    reply_to,
                } => MoaraMsg::SizeProbe {
                    trace: None,
                    qid,
                    pred_key,
                    reply_to,
                },
                MoaraMsg::SizeReply {
                    trace: _,
                    qid,
                    pred_key,
                    cost,
                } => MoaraMsg::SizeReply {
                    trace: None,
                    qid,
                    pred_key,
                    cost,
                },
                MoaraMsg::SubDelta {
                    trace: _,
                    sid,
                    pred_key,
                    seq,
                    state,
                } => MoaraMsg::SubDelta {
                    trace: None,
                    sid,
                    pred_key,
                    seq,
                    state,
                },
                other => other,
            };
            assert_eq!(
                msg.encoded_len(),
                untraced.encoded_len() + ctx.encoded_len()
            );
        }
        // A bad option tag on the trace field is rejected.
        let probe = MoaraMsg::SizeProbe {
            qid,
            pred_key: "A".into(),
            reply_to: NodeId(1),
            trace: None,
        };
        let mut bytes = probe.to_bytes();
        *bytes.last_mut().unwrap() = 9; // option tag must be 0 or 1
        assert_eq!(
            MoaraMsg::from_bytes(&bytes),
            Err(WireError::Invalid("option tag"))
        );
    }

    #[test]
    fn deeply_nested_batch_is_rejected_not_a_stack_overflow() {
        let mut evil = Vec::new();
        for _ in 0..(MAX_ROUTE_DEPTH + 10) {
            evil.push(6u8); // Batch tag
            evil.extend_from_slice(&1u32.to_le_bytes()); // one item
        }
        assert_eq!(
            MoaraMsg::from_bytes(&evil),
            Err(WireError::Invalid("Batch nesting too deep"))
        );
    }

    #[test]
    fn query_id_tag_packs_origin_and_counter() {
        let q = QueryId {
            origin: NodeId(7),
            n: 0x1_0000_0042, // high bits beyond 32 are masked off
        };
        assert_eq!(q.tag(), (7u64 << 32) | 0x42);
    }

    #[test]
    fn deeply_nested_route_is_rejected_not_a_stack_overflow() {
        // Legitimate nesting decodes fine.
        let mut ok = MoaraMsg::SizeReply {
            qid: QueryId {
                origin: NodeId(0),
                n: 0,
            },
            pred_key: "A=1".into(),
            cost: 1,
            trace: None,
        };
        for i in 0..10 {
            ok = MoaraMsg::Route {
                key: Id(i),
                inner: Box::new(ok),
            };
        }
        assert_eq!(MoaraMsg::from_bytes(&ok.to_bytes()).unwrap(), ok);

        // A crafted frame of endless Route tags must error, not recurse
        // the decoder off the stack (frames come from untrusted sockets).
        let mut evil = Vec::new();
        for i in 0..(MAX_ROUTE_DEPTH as u64 + 10) {
            evil.push(0u8); // Route tag
            evil.extend_from_slice(&i.to_le_bytes()); // key
        }
        assert_eq!(
            MoaraMsg::from_bytes(&evil),
            Err(WireError::Invalid("Route nesting too deep"))
        );
    }
}

//! Property tests for the adaptation state machine (`PredState` in
//! `state.rs`): arbitrary interleavings of query / change / child-status
//! events never panic or break the Section 4 invariants, and the
//! UPDATE / NO-UPDATE mode always equals what a *shadow model* computes
//! by freshly recomputing the `2·qn` vs `c` rate comparison over the
//! sliding window after every event batch.
//!
//! The shadow model is deliberately transparent: it keeps the full event
//! history and re-counts the window from scratch each time (window length
//! chosen by its *current* mode, ties keep the mode — Procedure 2
//! verbatim), so any drift in the implementation's incremental
//! bookkeeping (event capping, gap accounting, qs/qn classification
//! plumbing) shows up as a mode mismatch.

use moara_core::{ChildInfo, PredState};
use moara_query::{CmpOp, SimplePredicate};
use moara_simnet::NodeId;
use proptest::prelude::*;

/// The three adaptation events of the paper's sliding window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    Qn,
    Qs,
    Change,
}

/// Reference implementation of Procedure 2 over an unbounded event log.
struct Model {
    events: Vec<Ev>,
    mode: bool, // true = UPDATE
    k_update: usize,
    k_no_update: usize,
}

impl Model {
    /// Appends one operation's events, then runs exactly one transition
    /// (mirroring how every `PredState` entry point transitions once).
    fn apply(&mut self, evs: &[Ev]) {
        if evs.is_empty() {
            return;
        }
        self.events.extend_from_slice(evs);
        let k = if self.mode {
            self.k_update
        } else {
            self.k_no_update
        };
        let (mut qn, mut c) = (0u64, 0u64);
        for ev in self.events.iter().rev().take(k) {
            match ev {
                Ev::Qn => qn += 1,
                Ev::Qs => {}
                Ev::Change => c += 1,
            }
        }
        if 2 * qn < c {
            self.mode = false;
        } else if 2 * qn > c {
            self.mode = true;
        }
    }
}

/// One random stimulus for the state machine.
#[derive(Clone, Debug)]
enum Op {
    /// A query arrives, `jump` sequence numbers ahead of contiguous.
    Query { jump: u64 },
    /// Local satisfaction re-evaluated (group churn at this node).
    Refresh { sat: bool },
    /// A child reports status, then satisfaction is re-derived.
    ChildStatus {
        child: u32,
        prune: bool,
        bypass: bool,
        np: u64,
        sat: bool,
    },
    /// A child's status piggybacks a sequence number we never saw.
    AccountSeq { jump: u64 },
    /// The node computes (and records) what to tell its parent.
    StatusToSend,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4).prop_map(|jump| Op::Query { jump }),
        any::<bool>().prop_map(|sat| Op::Refresh { sat }),
        (
            1u32..3,
            any::<bool>(),
            any::<bool>(),
            0u64..5,
            any::<bool>()
        )
            .prop_map(|(child, prune, bypass, np, sat)| Op::ChildStatus {
                child,
                prune,
                bypass,
                np,
                sat,
            }),
        (0u64..6).prop_map(|jump| Op::AccountSeq { jump }),
        Just(Op::StatusToSend),
    ]
}

fn me() -> NodeId {
    NodeId(0)
}

/// Drives `PredState` and the shadow model with the same operations,
/// checking mode equality and the Section 4 invariants after every step.
fn drive(ops: &[Op], k_update: usize, k_no_update: usize, threshold: usize) {
    let children = [NodeId(1), NodeId(2)];
    let mut s = PredState::new(
        SimplePredicate::new("A", CmpOp::Eq, true),
        k_update,
        k_no_update,
        threshold,
        false,
    );
    let mut model = Model {
        events: Vec::new(),
        mode: false,
        k_update: k_update.max(1),
        k_no_update: k_no_update.max(1),
    };
    let cap = model.k_update.max(model.k_no_update) as u64;
    // `sat` re-derived from first principles: local satisfaction, or a
    // child that must keep receiving queries (default or NO-PRUNE).
    // Meaningful only right after a refresh ran with these inputs.
    let derived_sat = |s: &PredState, local: bool| {
        local
            || children.iter().any(|c| {
                s.children
                    .get(c)
                    .is_none_or(|info| !info.prune && !info.update_set.is_empty())
            })
    };
    for op in ops {
        match op.clone() {
            Op::Query { jump } => {
                let seq = s.last_seen_seq + 1 + jump;
                let gap = if seq > s.last_seen_seq + 1 {
                    (seq - s.last_seen_seq - 1).min(cap)
                } else {
                    0
                };
                let qs = s.cur_update_set.contains(&me());
                s.on_query(me(), seq);
                let mut evs = vec![Ev::Qn; gap as usize];
                evs.push(if qs { Ev::Qs } else { Ev::Qn });
                model.apply(&evs);
            }
            Op::Refresh { sat } => {
                let before = s.cur_update_set.clone();
                s.refresh(me(), sat, &children);
                if s.cur_update_set != before {
                    model.apply(&[Ev::Change]);
                }
                assert_eq!(s.sat, derived_sat(&s, sat), "sat diverged after {op:?}");
            }
            Op::ChildStatus {
                child,
                prune,
                bypass,
                np,
                sat,
            } => {
                // Wire-consistent reports only: NO-PRUNE ⇔ non-empty set.
                let update_set = if prune {
                    vec![]
                } else if bypass {
                    vec![NodeId(7)] // a bypassed descendant
                } else {
                    vec![NodeId(child)]
                };
                s.note_child_status(
                    NodeId(child),
                    ChildInfo {
                        prune,
                        update_set,
                        np,
                    },
                );
                let before = s.cur_update_set.clone();
                s.refresh(me(), sat, &children);
                if s.cur_update_set != before {
                    model.apply(&[Ev::Change]);
                }
                assert_eq!(s.sat, derived_sat(&s, sat), "sat diverged after {op:?}");
            }
            Op::AccountSeq { jump } => {
                let seq = s.last_seen_seq + jump; // jump 0 = stale no-op
                let gap = if seq > s.last_seen_seq {
                    (seq - s.last_seen_seq).min(cap)
                } else {
                    0
                };
                s.account_seq(seq);
                model.apply(&vec![Ev::Qn; gap as usize]);
            }
            Op::StatusToSend => {
                let _ = s.status_to_send(me());
            }
        }
        s.check_invariants();
        assert_eq!(
            s.update, model.mode,
            "mode diverged from the freshly recomputed window \
             (ops so far ending with {op:?}, window events {:?})",
            model.events
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mode_always_matches_recomputed_rate_comparison(
        ops in proptest::collection::vec(arb_op(), 1..80),
        k_update in 1usize..4,
        k_no_update in 1usize..5,
        threshold in 1usize..4,
    ) {
        drive(&ops, k_update, k_no_update, threshold);
    }

    #[test]
    fn forced_update_never_leaves_update_under_any_interleaving(
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let children = [NodeId(1), NodeId(2)];
        let mut s = PredState::new(
            SimplePredicate::new("A", CmpOp::Eq, true),
            1,
            3,
            2,
            true, // Always-Update baseline
        );
        for op in &ops {
            match op.clone() {
                Op::Query { jump } => s.on_query(me(), s.last_seen_seq + 1 + jump),
                Op::Refresh { sat } => s.refresh(me(), sat, &children),
                Op::ChildStatus { child, prune, bypass, np, sat } => {
                    let update_set = if prune {
                        vec![]
                    } else if bypass {
                        vec![NodeId(7)]
                    } else {
                        vec![NodeId(child)]
                    };
                    s.note_child_status(NodeId(child), ChildInfo { prune, update_set, np });
                    s.refresh(me(), sat, &children);
                }
                Op::AccountSeq { jump } => s.account_seq(s.last_seen_seq + jump),
                Op::StatusToSend => {
                    let _ = s.status_to_send(me());
                }
            }
            s.check_invariants();
            prop_assert!(s.update, "always-update left UPDATE after {op:?}");
        }
    }
}

//! # moara-transport
//!
//! The pluggable transport subsystem: *how Moara messages move between
//! nodes*, abstracted so the protocol engine neither knows nor cares
//! whether it runs inside the deterministic `moara-simnet` simulator or
//! over real TCP sockets.
//!
//! Three layers:
//!
//! 1. **The I/O seam** — [`NetCtx`] is the capability handle protocol
//!    logic acts through (send a message, arm/cancel a timer, read the
//!    clock), and [`NetProtocol`] is the state-machine interface a hosted
//!    node implements against it. `moara_simnet::Context` implements
//!    [`NetCtx`], so simulator hosting is zero-cost; `moara-core`'s
//!    `MoaraNode` is written purely against these traits.
//! 2. **The host abstraction** — [`Transport`] is what deployment
//!    harnesses (e.g. `moara-core`'s `Cluster`) drive: add nodes, inject
//!    stimuli with a live [`NetCtx`], pump the event loop, read
//!    statistics, fail/recover nodes.
//! 3. **Backends** — [`SimTransport`] adapts the discrete-event
//!    [`moara_simnet::Simulator`] (virtual time, seeded latency models,
//!    perfect determinism), and [`TcpTransport`] runs the same protocol
//!    over real sockets (length-prefixed [`moara_wire`] frames, per-peer
//!    pooled connections with reconnect, a real-time timer wheel), plus a
//!    deterministic seedable loopback mode for tests. The `moarad` daemon
//!    (`moara-daemon` crate) hosts one node per process on
//!    [`TcpTransport`] and stitches processes into a cluster.

use moara_simnet::{Message, NodeId, SimDuration, SimTime, Stats, TimerId, TimerTag};

pub mod sim;
pub mod tcp;

pub use sim::SimTransport;
pub use tcp::{ReservedListener, TcpConfig, TcpTransport};

/// The capability handle protocol logic acts through: everything a node
/// may do to the outside world from inside a callback.
///
/// Implemented by `moara_simnet::Context` (virtual time, simulated
/// delivery) and by the TCP backend's context (sockets, real time). Kept
/// object-safe so protocol code can take `&mut dyn NetCtx<M>` and stay
/// monomorphization-free.
pub trait NetCtx<M> {
    /// The current time (virtual under simulation, real elapsed time under
    /// TCP — both microseconds since the transport epoch).
    fn now(&self) -> SimTime;

    /// The id of the node this callback runs on.
    fn me(&self) -> NodeId;

    /// Sends `msg` to `to`. Delivery is asynchronous and unordered across
    /// peers; messages to failed nodes are silently dropped (and counted).
    fn send(&mut self, to: NodeId, msg: M);

    /// Arms a one-shot timer firing on this node after `delay`.
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId;

    /// Arms a one-shot *maintenance* timer: fires like any other during
    /// normal running, but does not gate the transport's quiescence.
    /// For standing periodic work (lease clocks, subscription renewals)
    /// that re-arms itself forever — a quiescence drain must neither
    /// wait for it nor fire it. Defaults to a plain timer for backends
    /// without the distinction.
    fn set_maintenance_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.set_timer(delay, tag)
    }

    /// Cancels a pending timer (no-op if already fired).
    fn cancel_timer(&mut self, id: TimerId);

    /// Increments a named experiment counter.
    fn count(&mut self, name: &'static str);
}

impl<M: Message> NetCtx<M> for moara_simnet::Context<'_, M> {
    fn now(&self) -> SimTime {
        moara_simnet::Context::now(self)
    }
    fn me(&self) -> NodeId {
        moara_simnet::Context::me(self)
    }
    fn send(&mut self, to: NodeId, msg: M) {
        moara_simnet::Context::send(self, to, msg);
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        moara_simnet::Context::set_timer(self, delay, tag)
    }
    fn set_maintenance_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        moara_simnet::Context::set_maintenance_timer(self, delay, tag)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        moara_simnet::Context::cancel_timer(self, id);
    }
    fn count(&mut self, name: &'static str) {
        moara_simnet::Context::count(self, name);
    }
}

/// A transport-agnostic message-passing state machine: the node-side
/// interface every backend hosts.
///
/// The mirror of `moara_simnet::Protocol`, with the concrete simulator
/// `Context` replaced by the [`NetCtx`] seam.
pub trait NetProtocol {
    /// The protocol's wire message type.
    type Msg: Message;

    /// Called once when the node is added to a transport.
    fn on_start(&mut self, _ctx: &mut dyn NetCtx<Self::Msg>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut dyn NetCtx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer armed via [`NetCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut dyn NetCtx<Self::Msg>, tag: TimerTag);
}

/// Adapter giving any [`NetProtocol`] a `moara_simnet::Protocol` impl, so
/// the simulator can host it unchanged. (A blanket impl would violate the
/// orphan rule — `Protocol` belongs to `moara-simnet` — so hosting wraps
/// nodes in this newtype; [`SimTransport`] hides the wrapping.)
#[derive(Debug)]
pub struct SimHosted<P>(pub P);

impl<P: NetProtocol> moara_simnet::Protocol for SimHosted<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut moara_simnet::Context<'_, Self::Msg>) {
        self.0.on_start(ctx);
    }
    fn on_message(
        &mut self,
        ctx: &mut moara_simnet::Context<'_, Self::Msg>,
        from: NodeId,
        msg: Self::Msg,
    ) {
        self.0.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut moara_simnet::Context<'_, Self::Msg>, tag: TimerTag) {
        self.0.on_timer(ctx, tag);
    }
}

/// A deployment host: owns protocol nodes and moves their messages.
///
/// `Cluster` (in `moara-core`) is generic over this trait; picking
/// [`SimTransport`] gives the paper's deterministic experiments, picking
/// [`TcpTransport`] gives the same protocol over real sockets.
pub trait Transport<P: NetProtocol> {
    /// Adds a node, invokes its [`NetProtocol::on_start`], returns its id.
    fn add_node(&mut self, node: P) -> NodeId;

    /// Number of nodes ever added (including failed ones).
    fn len(&self) -> usize;

    /// True if no nodes were added.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable access to a node's state (assertions/inspection).
    fn node(&self, id: NodeId) -> &P;

    /// Mutable access without a context; prefer [`Transport::with_node`]
    /// when the mutation needs to send messages.
    fn node_mut(&mut self, id: NodeId) -> &mut P;

    /// Runs `f` against node `id` with a live [`NetCtx`] — how drivers
    /// inject external stimuli (queries, attribute changes).
    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn NetCtx<P::Msg>) -> R,
    ) -> R
    where
        Self: Sized;

    /// The current time on this transport's clock.
    fn now(&self) -> SimTime;

    /// Advances (or waits) `d`, processing events that come due.
    fn run_for(&mut self, d: SimDuration);

    /// Processes events until the system goes idle: no queued deliveries,
    /// no in-flight frames, no pending timers. Returns the time reached.
    fn run_to_quiescence(&mut self) -> SimTime;

    /// Message/byte accounting.
    fn stats(&self) -> &Stats;

    /// Mutable accounting access (e.g. reset between experiment phases).
    fn stats_mut(&mut self) -> &mut Stats;

    /// Marks a node failed: its pending work is discarded and future
    /// messages to it are dropped.
    fn fail_node(&mut self, id: NodeId);

    /// Brings a failed node back (in-memory state retained).
    fn recover_node(&mut self, id: NodeId);

    /// Whether the node is currently alive.
    fn is_alive(&self, id: NodeId) -> bool;

    /// Drains the log of (sender, dead-destination) pairs accumulated
    /// since the last call — the engine's failure-notification stand-in.
    fn take_undeliverable(&mut self) -> Vec<(NodeId, NodeId)>;
}

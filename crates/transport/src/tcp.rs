//! The TCP backend: hosts [`NetProtocol`] nodes over real sockets.
//!
//! Wire format: every message travels as one `moara-wire` frame whose
//! payload is `sender NodeId (u32 LE)` followed by the message encoding.
//! Each hosted node binds its own listener on `127.0.0.1` (port 0 by
//! default); outbound connections are pooled per destination and
//! re-established with jittered backoff when a write fails.
//!
//! Threading model: one acceptor thread per hosted node and one reader
//! thread per inbound connection push raw frames into an MPSC inbox; *all*
//! protocol work — decoding, dispatch, timer firing, sending — happens on
//! the single thread driving [`TcpTransport::pump`] (usually via the
//! [`Transport`] trait's `run_*` methods). Protocol state therefore needs
//! no locks and no `Send` bound, exactly like the simulator.
//!
//! Time: [`NetCtx::now`] reports real elapsed microseconds since the
//! transport was created, so `SimTime`/`SimDuration` bookkeeping in
//! protocol code (timeouts, latencies) carries over unchanged.
//!
//! Trust model: the peer plane carries **no authentication** — the
//! sender id in each frame is self-declared, and anything that can reach
//! a listener can speak the protocol. Codec-level hardening (frame and
//! nesting caps) stops crashes, not spoofing; deploy listeners on
//! loopback or a trusted network until an authenticated transport lands.
//!
//! Loopback mode: [`TcpConfig::loopback`] skips sockets entirely and
//! delivers through an in-process FIFO — single-threaded, deterministic
//! delivery order, seedable — for tests that want TCP-path code without
//! socket nondeterminism. The seed also drives reconnect jitter in socket
//! mode.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::io::Write;
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use moara_simnet::{Message, NodeId, SimDuration, SimTime, Stats, TimerId, TimerTag};
use moara_wire::{read_frame, write_frame, Wire, FRAME_HDR, SENDER_HDR};

use crate::{NetCtx, NetProtocol, Transport};

/// Tuning knobs for [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Seed for reconnect jitter (and any future randomized choices);
    /// fixes the transport's random stream for reproducible tests.
    pub seed: u64,
    /// Deliver through an in-process deterministic FIFO instead of
    /// sockets (see module docs).
    pub loopback_only: bool,
    /// Interface the per-node listeners bind on.
    pub bind_ip: std::net::IpAddr,
    /// Connection attempts per message before counting it dropped.
    pub connect_retries: u32,
    /// Base backoff between reconnect attempts (jittered up to 2×).
    pub retry_backoff: Duration,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// After every reconnect attempt to a peer fails, further sends to it
    /// are dropped immediately for this long instead of re-blocking the
    /// event loop (a crashed peer would otherwise stall every message).
    pub suspect_cooldown: Duration,
    /// How long the system must stay idle before
    /// `run_to_quiescence` declares it quiescent.
    pub idle_grace: Duration,
    /// Hard wall-clock cap on one `run_to_quiescence` call (a safety net
    /// against lost frames; generous because protocol timeouts are real
    /// seconds here).
    pub quiesce_cap: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            seed: 0,
            loopback_only: false,
            bind_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            connect_retries: 5,
            retry_backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_millis(500),
            suspect_cooldown: Duration::from_secs(1),
            idle_grace: Duration::from_millis(40),
            quiesce_cap: Duration::from_secs(60),
        }
    }
}

impl TcpConfig {
    /// Socket-backed config with a fixed seed.
    pub fn seeded(seed: u64) -> TcpConfig {
        TcpConfig {
            seed,
            ..TcpConfig::default()
        }
    }

    /// Deterministic in-process loopback config (no sockets).
    pub fn loopback(seed: u64) -> TcpConfig {
        TcpConfig {
            seed,
            loopback_only: true,
            ..TcpConfig::default()
        }
    }
}

/// A raw frame handed from reader threads to the event loop.
struct Inbound {
    to: u32,
    from: u32,
    bytes: Vec<u8>,
}

/// Everything the event loop owns besides the nodes themselves, so a node
/// and its [`NetCtx`] can be borrowed simultaneously.
struct TcpCore<M> {
    cfg: TcpConfig,
    epoch: Instant,
    /// Where every known node (local or remote) listens.
    peers: HashMap<u32, SocketAddr>,
    /// Locally hosted node ids (the ones whose frames count as in-flight).
    locals: HashSet<u32>,
    /// Pooled outbound connections, by destination.
    pool: HashMap<u32, TcpStream>,
    alive: HashMap<u32, bool>,
    stats: Stats,
    undeliverable: Vec<(NodeId, NodeId)>,
    rng: StdRng,
    /// (due micros, timer seq, node, tag) — min-heap by due time.
    timers: BinaryHeap<Reverse<(u64, u64, u32, TimerTag)>>,
    cancelled: HashSet<u64>,
    /// Seqs still in the heap; guards `cancelled` against growing on
    /// cancellations of already-fired timers.
    live_timers: HashSet<u64>,
    /// Timers that do not gate quiescence (lease clocks, renewal ticks):
    /// they fire at their deadline like any other, but
    /// `run_to_quiescence` does not wait them out.
    maintenance_timers: HashSet<u64>,
    next_timer: u64,
    /// Peers whose last reconnect cycle failed entirely: drop sends to
    /// them until the deadline instead of blocking the event loop again.
    /// The counter is the consecutive-failure streak; the cooldown doubles
    /// with it (capped), so a long-dead peer costs one *single-attempt*
    /// probe per backed-off interval instead of a full retry cycle per
    /// second.
    suspect_until: HashMap<u32, (Instant, u32)>,
    /// Loopback-mode delivery queue (strict FIFO).
    local_queue: VecDeque<Inbound>,
    /// Frames sent to local nodes but not yet dispatched (socket mode).
    /// Only the event-loop thread touches it; reader threads never do.
    inflight: i64,
    _msg: PhantomData<fn() -> M>,
}

impl<M: Message + Wire> TcpCore<M> {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn now(&self) -> SimTime {
        SimTime(self.now_us())
    }

    fn is_alive(&self, id: u32) -> bool {
        self.alive.get(&id).copied().unwrap_or(false)
    }

    /// Sends one message, pooling and reconnecting as needed.
    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        let mut payload = Vec::with_capacity(SENDER_HDR + msg.encoded_len());
        Wire::encode(&from.0, &mut payload);
        msg.encode(&mut payload);
        let framed = payload.len() + FRAME_HDR;
        self.stats.record_send(from, framed);
        if let Some(tag) = msg.query_tag() {
            self.stats.record_query_msg(tag);
        }
        if !self.is_alive(to.0) {
            self.stats.record_drop();
            self.undeliverable.push((from, to));
            return;
        }
        if self.cfg.loopback_only {
            // Payload already encodes (from, msg); keep the bytes so the
            // loopback path exercises the same codec as sockets.
            self.local_queue.push_back(Inbound {
                to: to.0,
                from: from.0,
                bytes: payload.split_off(SENDER_HDR),
            });
            return;
        }
        let local_dest = self.locals.contains(&to.0);
        if local_dest {
            self.inflight += 1;
        }
        if !self.write_with_retry(to.0, &payload) {
            if local_dest {
                self.inflight -= 1;
            }
            self.stats.record_drop();
            self.undeliverable.push((from, to));
        }
    }

    /// Writes one frame to `to`, reconnecting with jittered backoff on
    /// failure. Returns false when every attempt failed.
    fn write_with_retry(&mut self, to: u32, payload: &[u8]) -> bool {
        let Some(addr) = self.peers.get(&to).copied() else {
            return false;
        };
        let streak = match self.suspect_until.get(&to) {
            Some((until, _)) if Instant::now() < *until => {
                return false; // still in the post-failure cooldown
            }
            Some((_, streak)) => *streak,
            None => 0,
        };
        // A fresh peer gets the full retry cycle; a peer that just came
        // off cooldown gets one quick probe so the event loop never
        // re-pays the whole backoff ladder for a long-dead member.
        let retries = if streak == 0 {
            self.cfg.connect_retries
        } else {
            0
        };
        for attempt in 0..=retries {
            if attempt > 0 {
                let base = self.cfg.retry_backoff.as_micros() as u64 * attempt as u64;
                let jitter = self.rng.gen_range(0..=base.max(1));
                std::thread::sleep(Duration::from_micros(base + jitter));
            }
            let mut conn = match self.pool.remove(&to) {
                Some(c) => c,
                None => match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
                    Ok(c) => {
                        let _ = c.set_nodelay(true);
                        // Fresh outbound connections are worth counting:
                        // steady state reuses the pool, so `tcp_connects`
                        // growth means peers restarting or sockets dying.
                        // Re-establishment after a failed write/attempt is
                        // the sharper signal (`tcp_reconnects`).
                        self.stats.bump("tcp_connects", 1);
                        if attempt > 0 || streak > 0 {
                            self.stats.bump("tcp_reconnects", 1);
                        }
                        c
                    }
                    Err(_) => continue,
                },
            };
            if write_frame(&mut conn, payload)
                .and_then(|()| conn.flush())
                .is_ok()
            {
                self.pool.insert(to, conn);
                self.suspect_until.remove(&to);
                return true;
            }
            // Connection went stale (peer restarted, socket torn down):
            // drop it and retry with a fresh one.
        }
        // Every attempt failed: stop blocking the event loop on this peer
        // until the cooldown passes (sends meanwhile drop immediately).
        // Exponential backoff, capped at 32× the base cooldown.
        let cooldown = self.cfg.suspect_cooldown * 2u32.saturating_pow(streak.min(5));
        self.suspect_until
            .insert(to, (Instant::now() + cooldown, streak.saturating_add(1)));
        false
    }

    fn set_timer(&mut self, me: NodeId, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.arm_timer(me, delay, tag, false)
    }

    fn arm_timer(
        &mut self,
        me: NodeId,
        delay: SimDuration,
        tag: TimerTag,
        maintenance: bool,
    ) -> TimerId {
        let seq = self.next_timer;
        self.next_timer += 1;
        let due = self.now_us().saturating_add(delay.as_micros());
        self.timers.push(Reverse((due, seq, me.0, tag)));
        self.live_timers.insert(seq);
        if maintenance {
            self.maintenance_timers.insert(seq);
        }
        TimerId::from_raw(seq)
    }

    /// Micros until the next (uncancelled) timer, if any.
    fn next_timer_in(&mut self) -> Option<u64> {
        while let Some(Reverse((due, seq, _, _))) = self.timers.peek().copied() {
            if self.cancelled.remove(&seq) {
                self.live_timers.remove(&seq);
                self.maintenance_timers.remove(&seq);
                self.timers.pop();
                continue;
            }
            return Some(due.saturating_sub(self.now_us()));
        }
        None
    }

    /// Micros until the next *foreground* (non-maintenance) timer — the
    /// quiescence condition. Scans the heap; timer counts are tiny.
    fn next_fg_timer_in(&self) -> Option<u64> {
        let now = self.now_us();
        self.timers
            .iter()
            .filter(|Reverse((_, seq, _, _))| {
                !self.cancelled.contains(seq) && !self.maintenance_timers.contains(seq)
            })
            .map(|Reverse((due, _, _, _))| due.saturating_sub(now))
            .min()
    }
}

/// The node-facing capability handle for the TCP backend.
struct TcpCtx<'a, M> {
    core: &'a mut TcpCore<M>,
    me: NodeId,
}

impl<M: Message + Wire> NetCtx<M> for TcpCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.core.now()
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn send(&mut self, to: NodeId, msg: M) {
        self.core.send(self.me, to, msg);
    }
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.core.set_timer(self.me, delay, tag)
    }
    fn set_maintenance_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        self.core.arm_timer(self.me, delay, tag, true)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        // Cancelling an already-fired timer must not grow the set forever.
        if self.core.live_timers.contains(&id.raw()) {
            self.core.cancelled.insert(id.raw());
        }
    }
    fn count(&mut self, name: &'static str) {
        self.core.stats.bump(name, 1);
    }
}

/// A bound-but-unattached listener (see `TcpTransport::reserve_listener`).
pub struct ReservedListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl ReservedListener {
    /// The address the listener is bound on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Hosts [`NetProtocol`] nodes over TCP (or deterministic loopback).
///
/// Supports two deployment shapes:
///
/// * **in-process cluster** — [`Transport::add_node`] assigns sequential
///   ids and binds one listener per node; messages between nodes cross
///   real loopback sockets. `Cluster::builder().build_tcp()` in
///   `moara-core` uses this.
/// * **one node per process** — the `moarad` daemon adds its single node
///   with [`TcpTransport::add_node_with_id`] and points at the rest of the
///   cluster with [`TcpTransport::register_peer`].
pub struct TcpTransport<P: NetProtocol> {
    nodes: HashMap<u32, Option<P>>,
    core: TcpCore<P::Msg>,
    inbox_rx: Receiver<Inbound>,
    inbox_tx: Sender<Inbound>,
    stop: Arc<AtomicBool>,
    next_id: u32,
}

impl<P: NetProtocol> TcpTransport<P>
where
    P::Msg: Wire,
{
    /// Creates an empty transport.
    pub fn new(cfg: TcpConfig) -> TcpTransport<P> {
        let (inbox_tx, inbox_rx) = std::sync::mpsc::channel();
        TcpTransport {
            nodes: HashMap::new(),
            core: TcpCore {
                rng: StdRng::seed_from_u64(cfg.seed),
                cfg,
                epoch: Instant::now(),
                peers: HashMap::new(),
                locals: HashSet::new(),
                pool: HashMap::new(),
                alive: HashMap::new(),
                stats: Stats::default(),
                undeliverable: Vec::new(),
                timers: BinaryHeap::new(),
                cancelled: HashSet::new(),
                live_timers: HashSet::new(),
                maintenance_timers: HashSet::new(),
                next_timer: 0,
                suspect_until: HashMap::new(),
                local_queue: VecDeque::new(),
                inflight: 0,
                _msg: PhantomData,
            },
            inbox_rx,
            inbox_tx,
            stop: Arc::new(AtomicBool::new(false)),
            next_id: 0,
        }
    }

    /// Shorthand for a socket-backed transport with a fixed seed.
    pub fn seeded(seed: u64) -> TcpTransport<P> {
        TcpTransport::new(TcpConfig::seeded(seed))
    }

    /// Binds a listener *before* the node's id is known — a joining
    /// daemon must advertise its transport address in its join request,
    /// and only learns its id from the seed's answer. Connections queue in
    /// the kernel until [`TcpTransport::add_node_with_listener`] attaches
    /// the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn reserve_listener(&self) -> std::io::Result<ReservedListener> {
        let listener = TcpListener::bind((self.core.cfg.bind_ip, 0))?;
        let addr = listener.local_addr()?;
        Ok(ReservedListener { listener, addr })
    }

    /// Hosts `node` under an explicit id on a pre-bound listener (see
    /// [`TcpTransport::reserve_listener`]).
    ///
    /// # Panics
    ///
    /// Panics if the id is already hosted here.
    pub fn add_node_with_listener(
        &mut self,
        id: NodeId,
        node: P,
        reserved: ReservedListener,
    ) -> SocketAddr {
        assert!(
            !self.nodes.contains_key(&id.0),
            "node {id} already hosted on this transport"
        );
        let addr = reserved.addr;
        self.spawn_acceptor(id.0, reserved.listener);
        self.core.peers.insert(id.0, addr);
        self.core.locals.insert(id.0);
        self.core.alive.insert(id.0, true);
        self.core.stats.ensure_node(id);
        self.nodes.insert(id.0, Some(node));
        self.next_id = self.next_id.max(id.0 + 1);
        self.with_node_inner(id, |n, ctx| n.on_start(ctx));
        addr
    }

    /// Hosts `node` under an explicit id (daemon deployments, where the
    /// cluster — not this process — assigns ids). Binds a listener unless
    /// in loopback mode. Returns the listen address, if any.
    ///
    /// # Panics
    ///
    /// Panics if the id is already hosted here or the listener cannot
    /// bind.
    pub fn add_node_with_id(&mut self, id: NodeId, node: P) -> Option<SocketAddr> {
        assert!(
            !self.nodes.contains_key(&id.0),
            "node {id} already hosted on this transport"
        );
        if self.core.cfg.loopback_only {
            self.core.locals.insert(id.0);
            self.core.alive.insert(id.0, true);
            self.core.stats.ensure_node(id);
            self.nodes.insert(id.0, Some(node));
            self.next_id = self.next_id.max(id.0 + 1);
            self.with_node_inner(id, |n, ctx| n.on_start(ctx));
            None
        } else {
            let reserved = self.reserve_listener().expect("bind listener on loopback");
            Some(self.add_node_with_listener(id, node, reserved))
        }
    }

    /// Registers where a *remote* node (hosted by another process)
    /// listens, so local sends can reach it.
    pub fn register_peer(&mut self, id: NodeId, addr: SocketAddr) {
        let prev = self.core.peers.insert(id.0, addr);
        self.core.alive.entry(id.0).or_insert(true);
        // A stale pooled connection may point at a dead predecessor.
        self.core.pool.remove(&id.0);
        if prev != Some(addr) {
            // A *new* address is a fresh start: drop any send-failure
            // cooldown accrued against the old one, or a rejoined peer
            // (same id, new port) would stay unreachable for up to the
            // full exponential backoff.
            self.core.suspect_until.remove(&id.0);
        }
    }

    /// Forgets a peer (it left the cluster).
    pub fn unregister_peer(&mut self, id: NodeId) {
        self.core.peers.remove(&id.0);
        self.core.pool.remove(&id.0);
        self.core.alive.remove(&id.0);
    }

    /// The listen address of a locally hosted node (None in loopback
    /// mode or for unknown ids).
    pub fn local_addr(&self, id: NodeId) -> Option<SocketAddr> {
        if self.core.locals.contains(&id.0) {
            self.core.peers.get(&id.0).copied()
        } else {
            None
        }
    }

    /// All known peers and their addresses.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, SocketAddr)> + '_ {
        self.core.peers.iter().map(|(&id, &a)| (NodeId(id), a))
    }

    fn spawn_acceptor(&mut self, my_id: u32, listener: TcpListener) {
        let tx = self.inbox_tx.clone();
        let stop = Arc::clone(&self.stop);
        std::thread::Builder::new()
            .name(format!("moara-accept-{my_id}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let _ = stream.set_nodelay(true);
                    let tx = tx.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::Builder::new()
                        .name(format!("moara-read-{my_id}"))
                        .spawn(move || reader_loop(stream, my_id, tx, stop))
                        .expect("spawn reader thread");
                }
            })
            .expect("spawn acceptor thread");
    }

    /// Fires due timers and delivers queued/incoming frames. Blocks up to
    /// `max_wait` when nothing is immediately ready (bounded by the next
    /// timer deadline). Returns true if any event was processed.
    pub fn pump(&mut self, max_wait: Duration) -> bool {
        let mut did = false;
        did |= self.fire_due_timers();
        while let Some(ib) = self.core.local_queue.pop_front() {
            self.deliver(ib);
            did = true;
        }
        while let Ok(ib) = self.inbox_rx.try_recv() {
            self.deliver(ib);
            did = true;
        }
        if !did && !max_wait.is_zero() {
            let wait = match self.core.next_timer_in() {
                Some(us) => max_wait.min(Duration::from_micros(us)),
                None => max_wait,
            };
            match self.inbox_rx.recv_timeout(wait) {
                Ok(ib) => {
                    self.deliver(ib);
                    did = true;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
            }
            did |= self.fire_due_timers();
        }
        did
    }

    fn fire_due_timers(&mut self) -> bool {
        let mut did = false;
        while let Some(Reverse((due, seq, node, tag))) = self.core.timers.peek().copied() {
            if self.core.cancelled.remove(&seq) {
                self.core.live_timers.remove(&seq);
                self.core.maintenance_timers.remove(&seq);
                self.core.timers.pop();
                continue;
            }
            if due > self.core.now_us() {
                break;
            }
            self.core.timers.pop();
            self.core.live_timers.remove(&seq);
            self.core.maintenance_timers.remove(&seq);
            if self.core.is_alive(node) && self.nodes.contains_key(&node) {
                self.with_node_inner(NodeId(node), |n, ctx| n.on_timer(ctx, tag));
            }
            did = true;
        }
        did
    }

    fn deliver(&mut self, ib: Inbound) {
        // Frames from our own nodes stop being "in flight" the moment the
        // event loop takes them, whatever happens next.
        if self.core.locals.contains(&ib.from) && !self.core.cfg.loopback_only {
            self.core.inflight -= 1;
        }
        if !self.core.is_alive(ib.to) || !self.nodes.contains_key(&ib.to) {
            self.core.stats.record_drop();
            return;
        }
        let msg = match <P::Msg as Wire>::from_bytes(&ib.bytes) {
            Ok(m) => m,
            Err(_) => {
                self.core.stats.bump("wire_decode_errors", 1);
                return;
            }
        };
        self.core
            .stats
            .record_recv(NodeId(ib.to), ib.bytes.len() + SENDER_HDR + FRAME_HDR);
        let from = NodeId(ib.from);
        self.with_node_inner(NodeId(ib.to), |n, ctx| n.on_message(ctx, from, msg));
    }

    fn with_node_inner<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn NetCtx<P::Msg>) -> R,
    ) -> R {
        let slot = self
            .nodes
            .get_mut(&id.0)
            .unwrap_or_else(|| panic!("node {id} is not hosted on this transport"));
        let mut node = slot.take().expect("re-entrant with_node");
        let mut ctx = TcpCtx {
            core: &mut self.core,
            me: id,
        };
        let r = f(&mut node, &mut ctx);
        self.nodes.insert(id.0, Some(node));
        r
    }

    /// Frames sent to local nodes that the event loop has not yet
    /// dispatched (socket mode; loopback mode uses its queue length).
    pub fn in_flight(&self) -> i64 {
        if self.core.cfg.loopback_only {
            self.core.local_queue.len() as i64
        } else {
            self.core.inflight
        }
    }

    /// Whether any timers are pending.
    pub fn timers_pending(&mut self) -> bool {
        self.core.next_timer_in().is_some()
    }
}

fn reader_loop(mut stream: TcpStream, my_id: u32, tx: Sender<Inbound>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match read_frame(&mut stream) {
            Ok(Some(payload)) => {
                if payload.len() < SENDER_HDR {
                    continue; // runt frame: no sender id
                }
                let from =
                    u32::from_le_bytes(payload[..SENDER_HDR].try_into().expect("sized header"));
                if tx
                    .send(Inbound {
                        to: my_id,
                        from,
                        bytes: payload[SENDER_HDR..].to_vec(),
                    })
                    .is_err()
                {
                    break; // transport dropped
                }
            }
            Ok(None) | Err(_) => break, // peer closed or stream corrupt
        }
    }
}

impl<P: NetProtocol> Drop for TcpTransport<P> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake each acceptor blocked in accept() so it observes the flag.
        for (&id, &addr) in &self.core.peers {
            if self.core.locals.contains(&id) {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(50));
            }
        }
        self.core.pool.clear(); // closes outbound sockets; readers unwind
    }
}

impl<P: NetProtocol> Transport<P> for TcpTransport<P>
where
    P::Msg: Wire,
{
    fn add_node(&mut self, node: P) -> NodeId {
        let id = NodeId(self.next_id);
        self.add_node_with_id(id, node);
        id
    }

    fn len(&self) -> usize {
        // Hosted-node count, not the id watermark: with explicit sparse
        // ids (daemon deployments) the two differ.
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &P {
        self.nodes[&id.0].as_ref().expect("node is mid-dispatch")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut P {
        self.nodes
            .get_mut(&id.0)
            .expect("node hosted here")
            .as_mut()
            .expect("node is mid-dispatch")
    }

    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn NetCtx<P::Msg>) -> R,
    ) -> R {
        self.with_node_inner(id, f)
    }

    fn now(&self) -> SimTime {
        self.core.now()
    }

    fn run_for(&mut self, d: SimDuration) {
        let deadline = Instant::now() + Duration::from_micros(d.as_micros());
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            self.pump(left.min(Duration::from_millis(10)));
        }
    }

    /// Real-time quiescence: drains events until nothing is in flight, no
    /// timers are pending, and the system has been idle for
    /// [`TcpConfig::idle_grace`]. Pending timers are *waited out* (they
    /// fire at their real deadline), matching the simulator's semantics at
    /// wall-clock speed — so configure short protocol timeouts in tests
    /// that exercise failures.
    fn run_to_quiescence(&mut self) -> SimTime {
        let cap = Instant::now() + self.core.cfg.quiesce_cap;
        let mut idle_since: Option<Instant> = None;
        while Instant::now() < cap {
            let did = self.pump(Duration::from_millis(5));
            if did {
                idle_since = None;
                continue;
            }
            if self.in_flight() > 0 {
                idle_since = None;
                continue;
            }
            if let Some(us) = self.core.next_fg_timer_in() {
                // Idle but a foreground timer is due later: wait for it
                // (pump blocks until then, bounded to keep checking the
                // cap). Maintenance timers — standing lease/renewal
                // clocks that re-arm forever — are not waited out.
                self.pump(Duration::from_micros(us).min(Duration::from_millis(50)));
                continue;
            }
            let now = Instant::now();
            let since = *idle_since.get_or_insert(now);
            if now.duration_since(since) >= self.core.cfg.idle_grace {
                break;
            }
        }
        self.core.now()
    }

    fn stats(&self) -> &Stats {
        &self.core.stats
    }

    fn stats_mut(&mut self) -> &mut Stats {
        &mut self.core.stats
    }

    fn fail_node(&mut self, id: NodeId) {
        self.core.alive.insert(id.0, false);
        self.core.pool.remove(&id.0);
    }

    fn recover_node(&mut self, id: NodeId) {
        self.core.alive.insert(id.0, true);
        self.core.suspect_until.remove(&id.0);
    }

    fn is_alive(&self, id: NodeId) -> bool {
        self.core.is_alive(id.0)
    }

    fn take_undeliverable(&mut self) -> Vec<(NodeId, NodeId)> {
        std::mem::take(&mut self.core.undeliverable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo protocol over the seam (same as the sim adapter's tests, so
    /// both backends are exercised by one protocol definition).
    #[derive(Debug, Default)]
    struct Echo {
        got: Vec<(NodeId, u32)>,
        timer_fired: u32,
    }

    impl NetProtocol for Echo {
        type Msg = u32;
        fn on_message(&mut self, ctx: &mut dyn NetCtx<u32>, from: NodeId, msg: u32) {
            self.got.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn NetCtx<u32>, _tag: TimerTag) {
            self.timer_fired += 1;
        }
    }

    #[test]
    fn ping_pong_over_real_sockets() {
        let mut t: TcpTransport<Echo> = TcpTransport::seeded(1);
        let a = t.add_node(Echo::default());
        let b = t.add_node(Echo::default());
        assert!(t.local_addr(a).is_some());
        assert_ne!(t.local_addr(a), t.local_addr(b));
        t.with_node(a, |_n, ctx| ctx.send(b, 3));
        t.run_to_quiescence();
        assert_eq!(t.node(b).got, vec![(a, 3), (a, 1)]);
        assert_eq!(t.node(a).got, vec![(b, 2), (b, 0)]);
        assert_eq!(t.stats().total_messages(), 4);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn loopback_mode_is_deterministic_and_socket_free() {
        let run = || {
            let mut t: TcpTransport<Echo> = TcpTransport::new(TcpConfig::loopback(7));
            let a = t.add_node(Echo::default());
            let b = t.add_node(Echo::default());
            assert!(t.local_addr(a).is_none(), "loopback binds no sockets");
            t.with_node(a, |_n, ctx| ctx.send(b, 5));
            t.run_to_quiescence();
            (t.node(a).got.clone(), t.node(b).got.clone())
        };
        assert_eq!(run(), run());
        let (a_got, b_got) = run();
        assert_eq!(b_got.len(), 3);
        assert_eq!(a_got.len(), 3);
    }

    #[test]
    fn timers_fire_and_cancel_on_real_clock() {
        let mut t: TcpTransport<Echo> = TcpTransport::new(TcpConfig::loopback(3));
        let a = t.add_node(Echo::default());
        let cancelled = t.with_node(a, |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            let c = ctx.set_timer(SimDuration::from_millis(6), 2);
            ctx.set_timer(SimDuration::from_millis(7), 3);
            c
        });
        t.with_node(a, |_n, ctx| ctx.cancel_timer(cancelled));
        t.run_to_quiescence();
        assert_eq!(t.node(a).timer_fired, 2);
        assert!(!t.timers_pending());
    }

    #[test]
    fn failed_node_drops_messages_and_logs_undeliverable() {
        let mut t: TcpTransport<Echo> = TcpTransport::seeded(4);
        let a = t.add_node(Echo::default());
        let b = t.add_node(Echo::default());
        t.fail_node(b);
        t.with_node(a, |_n, ctx| ctx.send(b, 5));
        t.run_to_quiescence();
        assert!(t.node(b).got.is_empty());
        assert_eq!(t.stats().dropped(), 1);
        assert_eq!(t.take_undeliverable(), vec![(a, b)]);
        t.recover_node(b);
        t.with_node(a, |_n, ctx| ctx.send(b, 0));
        t.run_to_quiescence();
        assert_eq!(t.node(b).got.len(), 1);
    }

    #[test]
    fn unknown_peer_counts_as_drop() {
        let mut t: TcpTransport<Echo> = TcpTransport::seeded(5);
        let a = t.add_node(Echo::default());
        let ghost = NodeId(99);
        t.core.alive.insert(ghost.0, true); // known-alive but no address
        t.with_node(a, |_n, ctx| ctx.send(ghost, 1));
        t.run_to_quiescence();
        assert_eq!(t.stats().dropped(), 1);
        assert_eq!(t.take_undeliverable(), vec![(a, ghost)]);
    }

    #[test]
    fn unreachable_peer_goes_suspect_and_stops_stalling_sends() {
        let mut t: TcpTransport<Echo> = TcpTransport::seeded(8);
        let a = t.add_node(Echo::default());
        // A peer that is "alive" but listens nowhere: connects are refused.
        let ghost = NodeId(50);
        t.register_peer(ghost, "127.0.0.1:1".parse().unwrap());
        let first = Instant::now();
        t.with_node(a, |_n, ctx| ctx.send(ghost, 1));
        let first_elapsed = first.elapsed();
        // Within the cooldown, further sends drop without re-running the
        // reconnect/backoff cycle on the event loop.
        let second = Instant::now();
        t.with_node(a, |_n, ctx| ctx.send(ghost, 2));
        let second_elapsed = second.elapsed();
        assert_eq!(t.stats().dropped(), 2);
        assert_eq!(
            t.take_undeliverable(),
            vec![(a, ghost), (a, ghost)],
            "both sends recorded undeliverable"
        );
        assert!(
            second_elapsed < Duration::from_millis(20).max(first_elapsed / 4),
            "suspect peer must not stall the loop again: first {first_elapsed:?}, second {second_elapsed:?}"
        );
    }

    #[test]
    fn burst_of_messages_all_arrive() {
        let mut t: TcpTransport<Echo> = TcpTransport::seeded(6);
        let a = t.add_node(Echo::default());
        let b = t.add_node(Echo::default());
        for _ in 0..200 {
            t.with_node(a, |_n, ctx| ctx.send(b, 0));
        }
        t.run_to_quiescence();
        assert_eq!(t.node(b).got.len(), 200);
        assert_eq!(t.in_flight(), 0);
    }
}

//! The simulator backend: adapts `moara_simnet::Simulator` to the
//! [`Transport`] host trait, so everything written against the trait runs
//! under deterministic discrete-event simulation unchanged.

use moara_simnet::{FaultPlan, LatencyModel, NodeId, SimDuration, SimTime, Simulator, Stats};

use crate::{NetCtx, NetProtocol, SimHosted, Transport};

/// Hosts [`NetProtocol`] nodes on the discrete-event simulator.
///
/// A thin adapter: nodes are wrapped in [`SimHosted`] (which carries the
/// `moara_simnet::Protocol` impl) and every host operation delegates to
/// the [`Simulator`]. Virtual time, latency models, and seeded randomness
/// behave exactly as when driving the simulator directly.
pub struct SimTransport<P: NetProtocol> {
    sim: Simulator<SimHosted<P>>,
}

impl<P: NetProtocol> SimTransport<P> {
    /// Creates an empty simulated transport with the given latency model
    /// and RNG seed.
    pub fn new(latency: impl LatencyModel + 'static, seed: u64) -> SimTransport<P> {
        SimTransport {
            sim: Simulator::new(latency, seed),
        }
    }

    /// The wrapped simulator, for sim-only operations (e.g. event budgets).
    pub fn simulator(&mut self) -> &mut Simulator<SimHosted<P>> {
        &mut self.sim
    }

    /// Processes all events with `time <= until`, then advances the clock
    /// to `until` even if idle (sim-specific: real transports cannot jump).
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until);
    }

    /// Number of queued events (pending deliveries + timers).
    pub fn pending_events(&self) -> usize {
        self.sim.pending_events()
    }

    /// The simulator's scriptable network-fault plan (per-link drop
    /// probabilities, partitions) — the fault-injection surface for churn
    /// and netsplit scenarios. Sim-specific: real transports get their
    /// faults from the real network.
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        self.sim.faults_mut()
    }

    /// Read access to the fault plan.
    pub fn faults(&self) -> &FaultPlan {
        self.sim.faults()
    }
}

impl<P: NetProtocol> Transport<P> for SimTransport<P> {
    fn add_node(&mut self, node: P) -> NodeId {
        self.sim.add_node(SimHosted(node))
    }

    fn len(&self) -> usize {
        self.sim.len()
    }

    fn node(&self, id: NodeId) -> &P {
        &self.sim.node(id).0
    }

    fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.sim.node_mut(id).0
    }

    fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut dyn NetCtx<P::Msg>) -> R,
    ) -> R {
        self.sim.with_node(id, |hosted, ctx| f(&mut hosted.0, ctx))
    }

    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    fn run_to_quiescence(&mut self) -> SimTime {
        self.sim.run_to_quiescence()
    }

    fn stats(&self) -> &Stats {
        self.sim.stats()
    }

    fn stats_mut(&mut self) -> &mut Stats {
        self.sim.stats_mut()
    }

    fn fail_node(&mut self, id: NodeId) {
        self.sim.fail_node(id);
    }

    fn recover_node(&mut self, id: NodeId) {
        self.sim.recover_node(id);
    }

    fn is_alive(&self, id: NodeId) -> bool {
        self.sim.is_alive(id)
    }

    fn take_undeliverable(&mut self) -> Vec<(NodeId, NodeId)> {
        self.sim.take_undeliverable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moara_simnet::latency::Constant;
    use moara_simnet::TimerTag;

    /// Ping-pong protocol written purely against the NetCtx seam.
    #[derive(Debug, Default)]
    struct Echo {
        got: Vec<(NodeId, u32)>,
        timer_fired: u32,
    }

    impl NetProtocol for Echo {
        type Msg = u32;
        fn on_message(&mut self, ctx: &mut dyn NetCtx<u32>, from: NodeId, msg: u32) {
            self.got.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn NetCtx<u32>, _tag: TimerTag) {
            self.timer_fired += 1;
        }
    }

    #[test]
    fn hosts_netprotocol_on_the_simulator() {
        let mut t: SimTransport<Echo> = SimTransport::new(Constant::from_millis(10), 1);
        let a = t.add_node(Echo::default());
        let b = t.add_node(Echo::default());
        t.with_node(a, |_n, ctx| ctx.send(b, 3));
        let end = t.run_to_quiescence();
        assert_eq!(t.stats().total_messages(), 4);
        assert_eq!(end, SimDuration::from_millis(40).as_time());
        assert_eq!(t.node(b).got, vec![(a, 3), (a, 1)]);
        assert_eq!(t.node(a).got, vec![(b, 2), (b, 0)]);
    }

    #[test]
    fn timers_and_failures_flow_through_the_trait() {
        let mut t: SimTransport<Echo> = SimTransport::new(Constant::from_millis(1), 2);
        let a = t.add_node(Echo::default());
        let b = t.add_node(Echo::default());
        let cancelled = t.with_node(a, |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            ctx.set_timer(SimDuration::from_millis(6), 2)
        });
        t.with_node(a, |_n, ctx| ctx.cancel_timer(cancelled));
        t.fail_node(b);
        t.with_node(a, |_n, ctx| ctx.send(b, 9));
        t.run_to_quiescence();
        assert_eq!(t.node(a).timer_fired, 1);
        assert!(t.node(b).got.is_empty());
        assert!(!t.is_alive(b));
        assert_eq!(t.take_undeliverable(), vec![(a, b)]);
        t.recover_node(b);
        assert!(t.is_alive(b));
    }
}
